//! Shared helpers for the workspace-level integration tests: a seeded
//! deterministic case generator (the workspace builds offline, so no
//! external property-testing crate is used) and random-network builders.
//!
//! Each test binary compiles its own copy, so helpers unused by one
//! binary are expected.
#![allow(dead_code)]

use accpar::prelude::*;

/// Seeded xorshift64 stream — the deterministic replacement for a
/// property-testing crate's case generator.
pub struct Gen(pub u64);

impl Gen {
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A value in `lo..hi`; returns `lo` when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    /// A float in `[0, 1]`.
    pub fn unit(&mut self) -> f64 {
        (self.next() % 1_000_001) as f64 / 1e6
    }

    pub fn vec(&mut self, lo: usize, hi: usize, len_lo: usize, len_hi: usize) -> Vec<usize> {
        let len = self.range(len_lo, len_hi);
        (0..len).map(|_| self.range(lo, hi)).collect()
    }

    /// One element of `choices`.
    pub fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        choices[self.range(0, choices.len())]
    }
}

/// A random chain of MLP layers.
pub fn mlp(batch: usize, dims: &[usize]) -> Network {
    let mut b = NetworkBuilder::new("mlp", FeatureShape::fc(batch, dims[0]));
    for (i, pair) in dims.windows(2).enumerate() {
        b = b.linear(format!("fc{i}"), pair[0], pair[1]);
    }
    b.build().expect("valid MLP")
}

/// A random repeated-block network: one randomized encoder block
/// repeated `N ∈ 1..=32` times — the worst case (for an uncollapsed
/// planner) and best case (for the isomorphism collapse) of the
/// structures the zoo's transformers exhibit. Returns the repeat count
/// alongside the network so tests can scale assertions by depth.
pub fn random_repeated_blocks(g: &mut Gen) -> (Network, usize) {
    let blocks = g.range(1, 33);
    (random_encoder(g, blocks), blocks)
}

/// A random transformer encoder chain of `blocks` pre-norm blocks with
/// randomized head count, model width, sequence length, and batch.
pub fn random_encoder(g: &mut Gen, blocks: usize) -> Network {
    let heads = g.pick(&[1, 2, 4, 8]);
    let d_head = g.pick(&[4, 8, 16]);
    let d_model = g.pick(&[16, 32, 64]);
    let seq = g.range(4, 33);
    let batch = g.range(1, 9);
    let mut b = NetworkBuilder::new("enc", FeatureShape::seq(batch, seq, d_model));
    for i in 0..blocks {
        b = b
            .layer_norm(format!("blk{i}.ln"))
            .multi_head_attention(format!("blk{i}.attn"), heads, d_model, d_head)
            .linear(format!("blk{i}.up"), d_model, 2 * d_model)
            .relu(format!("blk{i}.act"))
            .linear(format!("blk{i}.down"), 2 * d_model, d_model);
    }
    b.build().expect("valid encoder chain")
}
