//! Serialization round-trips: plans, networks and reports survive JSON,
//! so harness outputs can be archived and replayed.

use accpar::partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, PlanTree, Ratio};
use accpar::prelude::*;
use accpar::sim::SimReport;

#[test]
fn network_round_trips_through_json() {
    let net = zoo::lenet(64).unwrap();
    let json = serde_json::to_string(&net).unwrap();
    let back: Network = serde_json::from_str(&json).unwrap();
    assert_eq!(net, back);
    assert_eq!(back.stats().params, net.stats().params);
}

#[test]
fn plan_tree_round_trips_through_json() {
    let level = NetworkPlan::new(vec![
        LayerPlan::new(PartitionType::TypeI, Ratio::new(0.3).unwrap()),
        LayerPlan::new(PartitionType::TypeIII, Ratio::EQUAL),
    ]);
    let tree = PlanTree::branch(
        level.clone(),
        PlanTree::leaf(level.clone()),
        PlanTree::leaf(level),
    );
    let json = serde_json::to_string(&tree).unwrap();
    let back: PlanTree = serde_json::from_str(&json).unwrap();
    assert_eq!(tree, back);
}

#[test]
fn searched_plan_round_trips() {
    let net = zoo::alexnet(64).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let planned = Planner::new(&net, &array)
        .with_levels(2)
        .plan(Strategy::AccPar)
        .unwrap();
    let json = serde_json::to_string(planned.plan()).unwrap();
    let back: PlanTree = serde_json::from_str(&json).unwrap();
    assert_eq!(planned.plan(), &back);

    // A deserialized plan still simulates to the same time.
    let view = net.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let sim = Simulator::new(SimConfig::cost_model_aligned());
    let report = sim.simulate(&view, &back, &tree).unwrap();
    assert!((report.total_secs - planned.modeled_cost()).abs() < 1e-12);
}

#[test]
fn sim_report_round_trips() {
    let net = zoo::lenet(64).unwrap();
    let view = net.train_view().unwrap();
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let plan = HierPlan::new(vec![NetworkPlan::uniform(
        view.weighted_len(),
        LayerPlan::data_parallel(),
    )])
    .to_tree();
    let report = Simulator::default().simulate(&view, &plan, &tree).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn hardware_round_trips() {
    let array = AcceleratorArray::heterogeneous_tpu(3, 5);
    let json = serde_json::to_string(&array).unwrap();
    let back: AcceleratorArray = serde_json::from_str(&json).unwrap();
    assert_eq!(array, back);
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let tree_json = serde_json::to_string(&tree).unwrap();
    let tree_back: GroupTree = serde_json::from_str(&tree_json).unwrap();
    assert_eq!(tree, tree_back);
}
