//! Every zoo network must plan cleanly under every strategy, and the
//! resulting plans must be structurally valid.

use accpar::partition::PartitionType;
use accpar::prelude::*;

#[test]
fn every_network_plans_under_every_strategy() {
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for name in zoo::EVALUATION_NAMES {
        let net = zoo::by_name(name, 32).expect("zoo network");
        let view = net.train_view().expect("weighted layers");
        let planner = Planner::builder(&net, &array).levels(2).build().unwrap();
        for strategy in Strategy::ALL {
            let planned = planner.plan(strategy).unwrap_or_else(|e| {
                panic!("{name} under {strategy}: {e}");
            });
            assert_eq!(planned.plan().depth(), 2, "{name} {strategy}");
            assert_eq!(
                planned.plan().plan().len(),
                view.weighted_len(),
                "{name} {strategy}"
            );
            assert!(planned.modeled_cost() > 0.0, "{name} {strategy}");
            // Every ratio is a valid probability.
            let plan = planned.plan().plan();
            for entry in plan.layers() {
                let a = entry.ratio.value();
                assert!((0.0..=1.0).contains(&a), "{name} {strategy}: {a}");
            }
        }
    }
}

/// Golden-plan snapshots for the transformer zoo: the exact partition
/// type sequence and modeled cost AccPar finds for BERT-base and
/// GPT-2-small on a two-level heterogeneous v2/v3 array. Any cost-model
/// or search change that moves these plans must be deliberate: regenerate
/// by printing `type_string()`/`modeled_cost()` under this exact config.
///
/// The structure is readable: the embedding and the o/ffn projections sit
/// in Type-II/III (model parallel — their weights dominate), while q/k/v
/// ride Type-I or II depending on the level's bandwidth balance.
#[test]
fn transformer_golden_plans() {
    const BERT_COST: f64 = 1.144_648_726_777_905_8e-1;
    const GPT2_COST: f64 = 1.144_648_907_212_191_5e-1;
    const L0: &str =
        "3III232333232333232333232333232333232333232333232333232333232333232333232";
    const L1A: &str =
        "I222IIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII";
    const L1B: &str =
        "3222232333232333232333232333232333232333232333232333232333232333232333232";

    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for (name, golden_cost) in [("bert_base", BERT_COST), ("gpt2_small", GPT2_COST)] {
        let net = zoo::by_name(name, 8).unwrap();
        let planned = Planner::builder(&net, &array)
            .levels(2)
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        assert_eq!(planned.plan().plan().type_string(), L0, "{name} level 0");
        let (a, b) = planned.plan().children().expect("two levels");
        assert_eq!(a.plan().type_string(), L1A, "{name} level 1a");
        assert_eq!(b.plan().type_string(), L1B, "{name} level 1b");
        let cost = planned.modeled_cost();
        assert!(
            (cost - golden_cost).abs() <= 1e-9 * golden_cost,
            "{name}: cost {cost:.17e} vs golden {golden_cost:.17e}"
        );
    }
}

/// Golden-plan snapshots for the synthetic deep stacks and GPT-2 XL.
/// Their chains are periodic — one encoder block's 6-layer type pattern
/// repeated per block, with only the chain-opening layers special — so
/// the goldens are written as `prefix + block × repeats` instead of
/// 300-character literals. Any search or cost-model change that moves
/// them must be deliberate; regenerate by printing `type_string()` and
/// `modeled_cost()` under this exact config.
#[test]
fn deep_stack_golden_plans() {
    fn periodic(prefix: &str, block: &str, repeats: usize) -> String {
        let mut s = String::from(prefix);
        for _ in 0..repeats {
            s.push_str(block);
        }
        s
    }
    // (name, cost, level 0, level 1a, level 1b)
    let goldens = [
        (
            "deep48",
            4.554_918_873_380_588_4e-1,
            periodic("III232", "333232", 47),
            periodic("222", "I", 285),
            periodic("III232", "333232", 47),
        ),
        (
            "deep96",
            9.109_837_746_760_895e-1,
            periodic("III232", "333232", 95),
            periodic("222", "I", 573),
            periodic("III232", "333232", 95),
        ),
        (
            "gpt2_xl",
            9.586_460_244_450_378e-1,
            periodic("2", "333232", 48),
            periodic("", "I", 289),
            periodic("3222232", "333232", 47),
        ),
    ];
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for (name, golden_cost, l0, l1a, l1b) in goldens {
        let net = zoo::by_name(name, 8).unwrap();
        let planned = Planner::builder(&net, &array)
            .levels(2)
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        assert_eq!(planned.plan().plan().type_string(), l0, "{name} level 0");
        let (a, b) = planned.plan().children().expect("two levels");
        assert_eq!(a.plan().type_string(), l1a, "{name} level 1a");
        assert_eq!(b.plan().type_string(), l1b, "{name} level 1b");
        let cost = planned.modeled_cost();
        assert!(
            (cost - golden_cost).abs() <= 1e-9 * golden_cost,
            "{name}: cost {cost:.17e} vs golden {golden_cost:.17e}"
        );
    }
}

#[test]
fn baseline_type_constraints() {
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for name in ["lenet", "alexnet", "resnet18"] {
        let net = zoo::by_name(name, 32).expect("zoo network");
        let planner = Planner::builder(&net, &array).levels(2).build().unwrap();

        // DP: Type-I only, balanced everywhere.
        let dp = planner.plan(Strategy::DataParallel).unwrap();
        assert_eq!(dp.plan().count(PartitionType::TypeII), 0, "{name}");
        assert_eq!(dp.plan().count(PartitionType::TypeIII), 0, "{name}");

        // OWT and HyPar: never Type-III, always balanced.
        for strategy in [Strategy::Owt, Strategy::HyPar] {
            let planned = planner.plan(strategy).unwrap();
            assert_eq!(
                planned.plan().count(PartitionType::TypeIII),
                0,
                "{name} {strategy}"
            );
            for entry in planned.plan().plan().layers() {
                assert!(entry.ratio.is_balanced(), "{name} {strategy}");
            }
        }
    }
}

#[test]
fn owt_assigns_types_by_layer_kind() {
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let net = zoo::vgg11(16).unwrap();
    let view = net.train_view().unwrap();
    let planned = Planner::builder(&net, &array)
        .levels(1).build().unwrap()
        .plan(Strategy::Owt)
        .unwrap();
    let mut layers: Vec<_> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    for (layer, entry) in layers.iter().zip(planned.plan().plan().layers()) {
        let expected = if layer.kind().is_conv() {
            PartitionType::TypeI
        } else {
            PartitionType::TypeII
        };
        assert_eq!(entry.ptype, expected, "{}", layer.name());
    }
}

#[test]
fn batch_size_scales_step_time_superlinearly_never_sublinearly() {
    // Doubling the batch at fixed hardware must not make a step faster.
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for name in ["lenet", "alexnet"] {
        let small = zoo::by_name(name, 64).unwrap();
        let large = zoo::by_name(name, 128).unwrap();
        let cost = |net: &Network| {
            Planner::builder(net, &array)
                .levels(2).build().unwrap()
                .plan(Strategy::AccPar)
                .unwrap()
                .modeled_cost()
        };
        assert!(cost(&large) >= cost(&small), "{name}");
    }
}

#[test]
fn deeper_networks_cost_more_under_dp() {
    let array = AcceleratorArray::homogeneous_tpu_v3(4);
    let cost = |name: &str| {
        let net = zoo::by_name(name, 64).unwrap();
        Planner::builder(&net, &array).build().unwrap()
            .plan(Strategy::DataParallel)
            .unwrap()
            .modeled_cost()
    };
    assert!(cost("vgg13") > cost("vgg11"));
    assert!(cost("vgg16") > cost("vgg13"));
    assert!(cost("vgg19") > cost("vgg16"));
    assert!(cost("resnet34") > cost("resnet18"));
    assert!(cost("resnet50") > cost("resnet34"));
}
