//! Soak battery for the live-replanning supervisor: long seeded health
//! timelines replayed over several zoo models, asserting the tentpole
//! invariants end to end —
//!
//! * **terminal convergence**: after hundreds of events the settled
//!   serving plan is bit-identical to running the never-worse replanner
//!   once against the terminal fault set with a fresh cache;
//! * **never worse**: at every replanned decision the adopted step time
//!   is no worse than limping along on the stale plan;
//! * **never plan-less**: no event sequence that leaves servable
//!   hardware ends with the supervisor shed or panicking, including
//!   fail/recover bursts racing inside one debounce window;
//! * **determinism**: the same seed and schedule produce an identical
//!   decision log, replan count and final plan across runs and thread
//!   counts;
//! * **revocability**: `recover(degrade(model)) == model` bit-exactly,
//!   through the fault model, the degraded group tree, and the
//!   supervisor's serving plan.

use accpar::prelude::*;

/// Replays `n_events` seeded events over `network` and checks terminal
/// bit-identity against a direct replan, never-worse per decision, and
/// report sanity. Returns the report for further checks.
fn soak(network: &str, batch: usize, seed: u64, n_events: usize) -> SuperviseReport {
    let net = zoo::by_name(network, batch).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let config = SuperviseConfig {
        threads: Some(1),
        ..SuperviseConfig::default()
    };
    let mut sup = Supervisor::new(&net, &array, Some(2), config).expect("supervisor builds");
    let schedule = HealthSchedule::random(seed, sup.leaf_count(), sup.cut_count(), n_events)
        .expect("schedule builds");
    let report = sup.run(&schedule).expect("soak run");

    // The random schedule never drops below two healthy leaves, so the
    // supervisor must end the timeline serving something.
    assert!(sup.plan().is_some(), "{network} ended the soak plan-less");

    // Terminal convergence: one never-worse replan against the folded
    // terminal fault set, from the same healthy baseline but a fresh
    // cache, must reproduce the settled plan bit for bit.
    let terminal = schedule.fold_all(FaultModel::new()).expect("terminal fold");
    let view = net.train_view().expect("train view");
    let tree = GroupTree::bisect(&array, 2).expect("bisect");
    let direct = replan(
        &view,
        &array,
        &tree,
        sup.healthy_plan(),
        &terminal,
        &ReplanConfig {
            sensitivity: false,
            threads: Some(1),
            ..ReplanConfig::default()
        },
    )
    .expect("direct replan");
    assert_eq!(
        sup.plan(),
        Some(&direct.plan),
        "{network}: settled plan diverged from the direct terminal replan"
    );

    // Never worse, at every rung: wherever the supervisor measured the
    // stale plan, the plan it chose to serve is at least as fast.
    for d in &report.decisions {
        if let (Some(serving), Some(stale)) = (d.serving_secs, d.stale_secs) {
            assert!(
                serving <= stale,
                "{network}: a decision served {serving} s when the stale plan ran at {stale} s"
            );
        }
    }
    assert!((0.0..=1.0).contains(&report.availability));
    assert_eq!(report.events, n_events);
    report
}

#[test]
fn soak_two_hundred_events_over_three_zoo_models() {
    for (network, seed) in [("lenet", 101), ("alexnet", 202), ("vgg16", 303)] {
        let report = soak(network, 64, seed, 200);
        // 200 events must debounce into fewer decisions, and holds plus
        // debouncing must keep searches below one per event.
        assert!(report.decisions.len() <= report.events);
        assert!(report.replans <= report.decisions.len());
    }
}

#[test]
fn soak_replays_are_bit_identical() {
    let a = soak("alexnet", 64, 77, 120);
    let b = soak("alexnet", 64, 77, 120);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.replans, b.replans);
    assert_eq!(a.availability.to_bits(), b.availability.to_bits());
}

#[test]
fn soak_is_deterministic_across_thread_counts() {
    let net = zoo::alexnet(64).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let run = |threads: usize| {
        let config = SuperviseConfig {
            threads: Some(threads),
            ..SuperviseConfig::default()
        };
        let mut sup = Supervisor::new(&net, &array, Some(2), config).expect("supervisor builds");
        let schedule = HealthSchedule::random(13, sup.leaf_count(), sup.cut_count(), 100)
            .expect("schedule builds");
        let report = sup.run(&schedule).expect("soak run");
        (report.decisions.clone(), report.replans, sup.plan().cloned())
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.0, parallel.0, "decision logs diverged across thread counts");
    assert_eq!(serial.1, parallel.1, "replan counts diverged across thread counts");
    assert_eq!(serial.2, parallel.2, "final plans diverged across thread counts");
}

#[test]
fn fail_recover_bursts_race_inside_the_debounce_window() {
    let net = zoo::lenet(64).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let config = SuperviseConfig {
        threads: Some(1),
        ..SuperviseConfig::default()
    };
    let mut sup = Supervisor::new(&net, &array, Some(2), config).expect("supervisor builds");
    let healthy = sup.healthy_plan().clone();

    // Forty bursts, each packed inside one debounce window: a board
    // fails, another degrades, and the failed board recovers before the
    // supervisor ever gets to decide — the recover-during-replan race.
    // Every burst folds to "leaf b mildly degraded", so set semantics
    // must keep the supervisor serving throughout.
    let mut schedule = HealthSchedule::new();
    for burst in 0..40u32 {
        let t = f64::from(burst);
        let a = (burst as usize) % 4;
        let b = (burst as usize + 1) % 4;
        schedule = schedule
            .push(t, HealthEventKind::Fail { leaf: a })
            .unwrap()
            .push(t + 0.001, HealthEventKind::Degrade { leaf: b, factor: 0.9 })
            .unwrap()
            .push(t + 0.002, HealthEventKind::Recover { leaf: a })
            .unwrap()
            .push(t + 0.003, HealthEventKind::Recover { leaf: b })
            .unwrap();
    }
    let report = sup.run(&schedule).expect("burst run");
    // No burst sheds, and the terminal fault set is empty, so the
    // settled plan is the healthy baseline again — bit for bit.
    assert!(report.decisions.iter().all(|d| d.action != SuperviseAction::Shed));
    assert_eq!(sup.plan(), Some(&healthy));
    assert!(sup.faults().is_empty());
    assert!((report.availability - 1.0).abs() < 1e-12);
}

#[test]
fn recover_of_degrade_is_identity_through_model_and_tree() {
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let tree = GroupTree::bisect(&array, 2).expect("bisect");

    // Fold degrade/fail/jitter events and their inverses through the
    // health timeline; the result must be the empty model, and the
    // degraded tree it induces must be bit-identical to the original.
    let forward = [
        HealthEventKind::Degrade { leaf: 1, factor: 0.6 },
        HealthEventKind::BandwidthJitter { cut: 0, factor: 0.5 },
        HealthEventKind::Fail { leaf: 2 },
    ];
    let inverse = [
        HealthEventKind::Recover { leaf: 1 },
        HealthEventKind::BandwidthJitter { cut: 0, factor: 1.0 },
        HealthEventKind::Recover { leaf: 2 },
    ];
    let mut model = FaultModel::new();
    for kind in forward.iter().chain(inverse.iter()) {
        model = kind.fold_into(model).expect("fold");
    }
    assert_eq!(model, FaultModel::new());
    assert_eq!(tree.degraded(&model).expect("degraded tree"), tree);
}
