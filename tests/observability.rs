//! End-to-end observability through the facade: span nesting, metric
//! values for a full VGG-16 plan, and proof that instrumentation never
//! changes what the planner decides.

use accpar::prelude::*;
use std::sync::Arc;

/// Plans VGG-16 on the heterogeneous evaluation array with a
/// [`Collector`] attached, returning both.
fn traced_vgg16() -> (Arc<Collector>, Planner<'static>, PlannedNetwork) {
    // Leak the inputs so the planner can be returned alongside the
    // collector; the test process is short-lived.
    let array: &'static _ = Box::leak(Box::new(AcceleratorArray::heterogeneous_tpu(4, 4)));
    let network: &'static _ = Box::leak(Box::new(zoo::vgg16(64).expect("vgg16 builds")));
    let collector = Arc::new(Collector::new());
    let planner = Planner::builder(network, array)
        .subscriber(Arc::clone(&collector))
        .build()
        .expect("vgg16 configures cleanly");
    let planned = planner.plan(Strategy::AccPar).expect("vgg16 plans");
    (collector, planner, planned)
}

#[test]
fn vgg16_trace_nests_level_spans_under_the_plan_span() {
    let (collector, _planner, planned) = traced_vgg16();

    let plan_span = collector.span_named("plan").expect("a `plan` span");
    assert_eq!(plan_span.parent, None, "`plan` is the root span");
    let levels: Vec<_> = collector
        .spans()
        .into_iter()
        .filter(|s| s.name == "plan.level")
        .collect();
    // 4 + 4 boards bisect to a depth-3 tree: 7 group nodes, each
    // searched once (the memo may answer, but the span still opens).
    assert_eq!(levels.len(), 7, "one `plan.level` span per tree node");
    for level in &levels {
        assert!(
            collector.nested_under(level.id, plan_span.id),
            "span {} not nested under `plan`",
            level.id
        );
    }

    // Every span that opened also closed.
    let ended = collector.ended_span_ids();
    for span in collector.spans() {
        assert!(ended.contains(&span.id), "span {} never ended", span.id);
    }

    // One decision event per (plan-tree node, weighted layer), each
    // naming a valid partition type.
    let decisions = collector.events_named("plan.decision");
    assert_eq!(decisions.len(), 7 * planned.plan().plan().len());
    for d in &decisions {
        assert_eq!(d.span, Some(plan_span.id));
        let ptype = d
            .fields
            .iter()
            .find(|(k, _)| *k == "ptype")
            .expect("decision has a ptype field");
        let rendered = format!("{:?}", ptype.1);
        assert!(
            rendered.contains("Type-I"),
            "unexpected partition type {rendered}"
        );
    }

    // The memo reports its totals once per plan.
    assert_eq!(collector.events_named("plan.cache_stats").len(), 1);
    assert_eq!(
        collector.events_named("plan.level_done").len(),
        levels.len(),
        "each level search reports an outcome"
    );
}

#[test]
fn vgg16_metrics_count_cache_and_simulator_activity() {
    let (collector, planner, _planned) = traced_vgg16();
    planner.obs().emit_metrics();
    let snap = collector.last_metrics().expect("a metrics snapshot");

    assert_eq!(snap.counter("planner.plans"), 1);
    // VGG-16 repeats conv shapes, so the shared cost cache must both
    // miss (first sight) and hit (repeats).
    assert!(snap.counter("cost.cache.misses") > 0, "no cache misses");
    assert!(snap.counter("cost.cache.hits") > 0, "no cache hits");
    // All three partition types were costed during the full search.
    for t in ["cost.evals.type_i", "cost.evals.type_ii", "cost.evals.type_iii"] {
        assert!(snap.counter(t) > 0, "no `{t}` evaluations");
    }
    // Planning evaluates the winning plan on the BSP simulator.
    assert!(snap.counter("sim.steps") > 0, "simulator never stepped");
    let hit_rate = snap
        .gauge("planner.cache.hit_rate")
        .expect("hit-rate gauge set");
    assert!((0.0..=1.0).contains(&hit_rate), "hit rate {hit_rate}");
}

#[test]
fn tracing_never_changes_the_plan() {
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for name in ["alexnet", "vgg11", "resnet18"] {
        let net = zoo::by_name(name, 32).expect("zoo network");
        let collector = Arc::new(Collector::new());
        let traced = Planner::builder(&net, &array)
            .levels(2)
            .subscriber(Arc::clone(&collector))
            .build()
            .expect("traced planner builds")
            .plan(Strategy::AccPar)
            .expect("traced plan");
        let plain = Planner::builder(&net, &array)
            .levels(2)
            .build()
            .expect("plain planner builds")
            .plan(Strategy::AccPar)
            .expect("plain plan");
        assert_eq!(traced.plan(), plain.plan(), "{name}: plans diverge");
        assert_eq!(
            traced.modeled_cost().to_bits(),
            plain.modeled_cost().to_bits(),
            "{name}: modeled costs diverge"
        );
        assert!(
            !collector.events_named("plan.decision").is_empty(),
            "{name}: tracing was silently off"
        );
    }
}
