//! Adversarial collision sweep over the isomorphism class key: layers
//! that are *near*-isomorphic — equal in every field but one — must
//! land in distinct equivalence classes, because one differing field is
//! enough to change a cost-table row. Each test isolates one component
//! of the key (head count, sequence length, layer width, attention
//! stage, first-layer rule, fan-in context, shard scales, and the
//! fault-degraded pair environment) and asserts no false merge, with a
//! control layer proving the rest of the key stayed put.
//!
//! Cross-network comparisons go through
//! [`accpar::core::level_class_keys`] — the value-complete per-layer
//! key the collapsed search shares rows under. Within-view structure
//! uses [`accpar::dnn::iso::IsoClasses`] directly.

use accpar::core::{level_class_keys, SearchConfig};
use accpar::dnn::iso::IsoClasses;
use accpar::hw::GroupCaps;
use accpar::prelude::*;

mod common;

/// A generous, obviously-healthy pair environment.
fn test_env() -> PairEnv {
    PairEnv::symmetric(
        GroupCaps {
            flops: 100e12,
            mem_bw: 600e9,
            net_bw: 50e9,
            hbm_bytes: 16e9,
        },
        50e9,
    )
}

/// `level_class_keys` for a network under the default model/config.
fn keys_of(network: &Network, env: &PairEnv) -> Vec<u64> {
    let view = network.train_view().expect("train view");
    level_class_keys(
        &view,
        &CostModel::new(CostConfig::default()),
        &SearchConfig::accpar(),
        env,
        None,
    )
}

/// An attention network with a lead projection (so no attention layer
/// sits at index 0 and trips the first-layer rule) and a tail control
/// layer.
fn attn_net(heads: usize, d_model: usize, d_head: usize, seq: usize) -> Network {
    NetworkBuilder::new("attn", FeatureShape::seq(4, seq, d_model))
        .linear("lead", d_model, d_model)
        .multi_head_attention("attn", heads, d_model, d_head)
        .linear("tail", d_model, d_model)
        .build()
        .expect("valid attention net")
}

/// Head count is a meta-dimension of its own: `4×16` and `8×8` heads
/// produce bitwise-equal projection shapes, yet every attention layer
/// must re-key. The head-free lead layer is the control: its key is
/// untouched.
#[test]
fn head_count_alone_splits_the_class() {
    let env = test_env();
    let a = keys_of(&attn_net(4, 64, 16, 32), &env);
    let b = keys_of(&attn_net(8, 64, 8, 32), &env);
    assert_eq!(a.len(), b.len());
    // Weighted order: lead, q, k, v, o, tail.
    assert_eq!(a[0], b[0], "head-free lead layer must keep its key");
    assert_eq!(a[5], b[5], "head-free tail layer must keep its key");
    for (i, what) in [(1, "q"), (2, "k"), (3, "v"), (4, "o")] {
        assert_ne!(a[i], b[i], "{what}: head count alone must split the class");
    }
}

/// Sequence length enters every resolved feature map (and the o
/// projection's attention stage): all keys move between `S=32` and
/// `S=64`, none merge falsely.
#[test]
fn sequence_length_alone_splits_every_class() {
    let env = test_env();
    let a = keys_of(&attn_net(4, 64, 16, 32), &env);
    let b = keys_of(&attn_net(4, 64, 16, 64), &env);
    assert!(
        a.iter().zip(&b).all(|(x, y)| x != y),
        "a longer sequence reshapes every fmap — no key may survive"
    );
}

/// One width change re-keys exactly the layers whose tensors it
/// touches: `fc1`'s output dim is `fc2`'s input dim, so both move, and
/// the upstream `fc0` stays.
#[test]
fn layer_width_alone_splits_the_touched_classes() {
    let env = test_env();
    let a = keys_of(&common::mlp(8, &[32, 48, 64, 64]), &env);
    let b = keys_of(&common::mlp(8, &[32, 48, 96, 64]), &env);
    assert_eq!(a[0], b[0], "untouched upstream layer must keep its key");
    assert_ne!(a[1], b[1], "producer of the widened tensor must re-key");
    assert_ne!(a[2], b[2], "consumer of the widened tensor must re-key");
}

/// The attention stage rides on the `o` projection: with
/// `d_model = heads·d_head` the `q` and `o` projections have identical
/// shapes, head counts and kinds, and still must not merge — `o`
/// carries the score/softmax/context stage `q` does not.
#[test]
fn attention_stage_alone_splits_q_from_o() {
    let view = attn_net(4, 64, 16, 32).train_view().expect("train view");
    let iso = IsoClasses::of(&view);
    // Weighted order: lead(0), q(1), k(2), v(3), o(4), tail(5).
    assert_eq!(
        iso.layer_class(2),
        iso.layer_class(3),
        "k and v are isomorphic and must merge"
    );
    assert_ne!(
        iso.layer_class(1),
        iso.layer_class(4),
        "o carries the attention stage and must not merge with q"
    );
    // The lead projection matches q's shapes but carries no head
    // meta-dimension: distinct class as well.
    assert_ne!(
        iso.layer_class(0),
        iso.layer_class(1),
        "a head-free projection must not merge with an attention one"
    );
}

/// The first-layer position rule: layer 0 never merges with a repeat of
/// itself (its backward phase can be skipped; its fan-in is the input).
#[test]
fn first_layer_never_merges_with_its_repeat() {
    let view = common::mlp(8, &[64, 64, 64])
        .train_view()
        .expect("train view");
    let iso = IsoClasses::of(&view);
    assert_ne!(
        iso.layer_class(0),
        iso.layer_class(1),
        "identical geometry, but layer 0 is positionally special"
    );
}

/// Fan-in refinement: in a chain of four identical layers, the second
/// is fed by the (special) first and stays distinct, while the third
/// and fourth — both fed by a plain repeat — merge. Classes converge
/// from the second repeat on, exactly like a repeated encoder block.
#[test]
fn fan_in_context_refines_but_converges() {
    let view = common::mlp(8, &[64, 64, 64, 64, 64])
        .train_view()
        .expect("train view");
    let iso = IsoClasses::of(&view);
    let classes: Vec<usize> = (0..4).map(|l| iso.layer_class(l)).collect();
    assert_eq!(
        classes,
        vec![0, 1, 2, 2],
        "expected first/second/converged-tail partition"
    );
}

/// Shard scales refine the search-time key: shrinking one layer's shard
/// re-keys that layer and only that layer.
#[test]
fn shard_scales_split_exactly_the_scaled_layer() {
    let network = common::mlp(8, &[64, 64, 64, 64]);
    let view = network.train_view().expect("train view");
    let env = test_env();
    let model = CostModel::new(CostConfig::default());
    let config = SearchConfig::accpar();
    let full = level_class_keys(&view, &model, &config, &env, None);
    let mut scales = vec![accpar::partition::ShardScales::full(); view.weighted_len()];
    scales[1] = scales[1].shrink(PartitionType::TypeI, 0.5);
    let shrunk = level_class_keys(&view, &model, &config, &env, Some(&scales));
    assert_eq!(full[0], shrunk[0]);
    assert_ne!(full[1], shrunk[1], "the shrunken shard must re-key");
    assert_eq!(full[2], shrunk[2]);
}

/// A fault-degraded device changes the pair environment, and the
/// environment is part of every key: all classes of the level split
/// against their healthy selves (no stale row sharing), while an
/// equally-healthy environment leaves every key bit-identical.
#[test]
fn degraded_environment_splits_every_class() {
    let network = common::mlp(8, &[64, 64, 64]);
    let healthy = test_env();
    let mut faulted = healthy;
    faulted.caps_a.flops *= 0.5; // one slow device in the A group
    let baseline = keys_of(&network, &healthy);
    assert_eq!(
        baseline,
        keys_of(&network, &healthy),
        "keys are deterministic"
    );
    let degraded = keys_of(&network, &faulted);
    assert!(
        baseline.iter().zip(&degraded).all(|(a, b)| a != b),
        "a degraded environment must re-key every class of the level"
    );
}
