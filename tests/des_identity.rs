//! Golden bit-identity battery for the overhauled DES engine.
//!
//! The arena-based engine (flat dependency pool + synthetic join
//! barriers) must reproduce the pre-overhaul naive expansion — kept in
//! the tree as `simulate_des_naive` — *bitwise*: `total_secs`, both
//! busy vectors and the scheduled-task count, across the zoo (CNNs and
//! transformers), with and without faults, for every partition type in
//! the plan. `f64::max` over a fixed value set is exact, so routing
//! fan-ins through zero-duration barriers must not move any finish time
//! by even one ulp; these tests pin that argument to the real networks.

mod common;

use accpar::partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, PlanTree, Ratio};
use accpar::prelude::*;
use accpar::sim::{simulate_des, simulate_des_in, simulate_des_naive, DesArena, SimConfig};
use common::Gen;

/// All-Type-I data parallelism at every level.
fn dp_plan(n: usize, levels: usize) -> PlanTree {
    HierPlan::new(vec![
        NetworkPlan::uniform(n, LayerPlan::data_parallel());
        levels
    ])
    .to_tree()
}

/// A deterministic mixed-type plan: layer `l` at level `v` uses type
/// `(l + v) mod 3`, exercising psum exchanges in every phase.
fn striped_plan(n: usize, levels: usize) -> PlanTree {
    HierPlan::new(
        (0..levels)
            .map(|v| {
                (0..n)
                    .map(|l| {
                        LayerPlan::new(PartitionType::ALL[(l + v) % 3], Ratio::EQUAL)
                    })
                    .collect::<NetworkPlan>()
            })
            .collect(),
    )
    .to_tree()
}

fn assert_bit_identical(
    label: &str,
    config: &SimConfig,
    view: &accpar::dnn::TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    faults: Option<&FaultModel>,
) {
    let fast = simulate_des(config, view, plan, tree, faults).unwrap();
    let naive = simulate_des_naive(config, view, plan, tree, faults).unwrap();
    assert_eq!(fast, naive, "{label}: full report mismatch");
    assert_eq!(
        fast.total_secs.to_bits(),
        naive.total_secs.to_bits(),
        "{label}: total_secs differs bitwise"
    );
    for (i, (a, b)) in fast
        .leaf_busy_secs
        .iter()
        .zip(&naive.leaf_busy_secs)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: leaf busy[{i}]");
    }
    for (i, (a, b)) in fast
        .link_busy_secs
        .iter()
        .zip(&naive.link_busy_secs)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: link busy[{i}]");
    }
}

#[test]
fn zoo_cnns_match_naive_goldens() {
    let config = SimConfig::default();
    let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 3).unwrap();
    let nets: Vec<(&str, Network)> = vec![
        ("alexnet", zoo::alexnet(8).unwrap()),
        ("resnet18", zoo::resnet18(8).unwrap()),
        ("vgg11", zoo::vgg11(4).unwrap()),
    ];
    for (name, net) in &nets {
        let view = net.train_view().unwrap();
        let n = view.weighted_len();
        for (plan_name, plan) in [("dp", dp_plan(n, 3)), ("striped", striped_plan(n, 3))] {
            assert_bit_identical(
                &format!("{name}/{plan_name}"),
                &config,
                &view,
                &plan,
                &tree,
                None,
            );
        }
    }
}

#[test]
fn zoo_transformers_match_naive_goldens() {
    let config = SimConfig::default();
    let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 3).unwrap();
    let nets: Vec<(&str, Network)> = vec![
        ("bert_base", zoo::bert_base(2, 16).unwrap()),
        ("gpt2_small", zoo::gpt2_small(2, 16).unwrap()),
        ("vit_b16", zoo::vit_b16(2).unwrap()),
    ];
    for (name, net) in &nets {
        let view = net.train_view().unwrap();
        let n = view.weighted_len();
        for (plan_name, plan) in [("dp", dp_plan(n, 3)), ("striped", striped_plan(n, 3))] {
            assert_bit_identical(
                &format!("{name}/{plan_name}"),
                &config,
                &view,
                &plan,
                &tree,
                None,
            );
        }
    }
}

#[test]
fn faulted_zoo_matches_naive_goldens() {
    // Rate faults (degraded leaves/cuts) and transient stalls all flow
    // through the same graph builder — the barrier collapse must stay
    // exact under every fault class.
    let config = SimConfig::default();
    let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 3).unwrap();
    let faults = FaultModel::with_seed(7)
        .slow_leaf(0, 0.5)
        .unwrap()
        .degrade_cut(1, 0.25)
        .unwrap()
        .stall_leaf(3, 2e-4)
        .unwrap();
    let nets: Vec<(&str, Network)> = vec![
        ("resnet18", zoo::resnet18(8).unwrap()),
        ("bert_base", zoo::bert_base(2, 16).unwrap()),
    ];
    for (name, net) in &nets {
        let view = net.train_view().unwrap();
        let n = view.weighted_len();
        for (plan_name, plan) in [("dp", dp_plan(n, 3)), ("striped", striped_plan(n, 3))] {
            assert_bit_identical(
                &format!("{name}/{plan_name}/faulted"),
                &config,
                &view,
                &plan,
                &tree,
                Some(&faults),
            );
        }
    }
}

#[test]
fn random_encoders_barrier_collapse_is_exact() {
    // Property: on randomized encoder chains, trees and plans, the
    // barrier-collapsed dependency graph schedules to exactly the same
    // finish times as the naive quadratic expansion — asserted through
    // the full report (makespan is max over final finish[], busy vectors
    // are per-resource sums). One arena serves the whole sweep, so this
    // doubles as a reuse soak test.
    let mut g = Gen(0x5eed_0007);
    let config = SimConfig::default();
    let mut arena = DesArena::new();
    for case in 0..12 {
        let blocks = g.range(1, 4);
        let net = common::random_encoder(&mut g, blocks);
        let view = net.train_view().unwrap();
        let n = view.weighted_len();
        let levels = g.range(1, 4);
        let boards = 1usize << levels;
        let array = if g.next().is_multiple_of(2) {
            AcceleratorArray::heterogeneous_tpu(boards / 2, boards / 2)
        } else {
            AcceleratorArray::homogeneous_tpu_v3(boards)
        };
        let tree = GroupTree::bisect(&array, levels).unwrap();
        let plan = if g.next().is_multiple_of(2) {
            dp_plan(n, levels)
        } else {
            striped_plan(n, levels)
        };
        let fast = simulate_des_in(&mut arena, &config, &view, &plan, &tree, None).unwrap();
        let naive = simulate_des_naive(&config, &view, &plan, &tree, None).unwrap();
        assert_eq!(fast, naive, "case {case} ({blocks} blocks, {levels} levels)");
        assert_eq!(fast.total_secs.to_bits(), naive.total_secs.to_bits());
    }
}
