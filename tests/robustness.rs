//! End-to-end robustness acceptance tests: the seeded fault scenario
//! from the issue — one TPU-v2 leaf at half compute, one bisection cut
//! at quarter bandwidth — must produce bit-identical reports across
//! runs, and graceful re-planning must never be worse than limping
//! along on the stale plan.

use accpar::prelude::*;
use accpar_sim::simulate_des;
use std::sync::Arc;
use std::time::Duration;

mod common;

/// The acceptance scenario: leaf 0 (a TPU-v2 board in
/// `heterogeneous_tpu`) at 0.5x compute, cut 1 at 0.25x bandwidth.
fn acceptance_faults(seed: u64) -> FaultModel {
    FaultModel::with_seed(seed)
        .slow_leaf(0, 0.5)
        .expect("valid factor")
        .degrade_cut(1, 0.25)
        .expect("valid factor")
}

fn setup() -> (Network, AcceleratorArray) {
    let network = zoo::alexnet(256).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    (network, array)
}

#[test]
fn seeded_faulted_reports_are_identical_across_runs() {
    let (network, array) = setup();
    let view = network.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = acceptance_faults(7);

    let sim = Simulator::new(SimConfig::default());
    let a = sim
        .simulate(&view, planned.plan(), &tree, Some(&faults))
        .unwrap();
    let b = sim
        .simulate(&view, planned.plan(), &tree, Some(&faults))
        .unwrap();
    assert_eq!(a, b, "bulk-synchronous reports must be bit-identical");

    let config = SimConfig::default();
    let da = simulate_des(&config, &view, planned.plan(), &tree, Some(&faults)).unwrap();
    let db = simulate_des(&config, &view, planned.plan(), &tree, Some(&faults)).unwrap();
    assert_eq!(da.total_secs.to_bits(), db.total_secs.to_bits());
    assert_eq!(da.leaf_busy_secs, db.leaf_busy_secs);
    assert_eq!(da.tasks, db.tasks);

    // The faults actually hurt: degraded strictly slower than nominal
    // (the quarter-bandwidth cut bites even when the straggler hides
    // behind the memory roofline).
    let clean = sim.simulate(&view, planned.plan(), &tree, None).unwrap();
    assert!(a.total_secs > clean.total_secs, "faults must slow the step");
    let dclean = simulate_des(&config, &view, planned.plan(), &tree, None).unwrap();
    assert!(da.total_secs > dclean.total_secs);
}

#[test]
fn replanned_degraded_step_never_exceeds_the_stale_plan() {
    let (network, array) = setup();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let faults = acceptance_faults(7);

    for strategy in Strategy::ALL {
        let planned = planner.plan(strategy).unwrap();
        let outcome = planner.replan(&planned, &faults).unwrap();
        let stale = outcome
            .degraded_old_secs
            .expect("no dropout: the stale plan can still run");
        assert!(
            outcome.degraded_secs <= stale * (1.0 + 1e-12),
            "{strategy}: replanned {} vs stale {}",
            outcome.degraded_secs,
            stale
        );
        // A stale plan on strictly worse hardware can only slow down.
        assert!(stale >= outcome.nominal_secs * (1.0 - 1e-12), "{strategy}");
    }
}

#[test]
fn replanning_is_deterministic() {
    let (network, array) = setup();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = acceptance_faults(7);

    let a = planner.replan(&planned, &faults).unwrap();
    let b = planner.replan(&planned, &faults).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.degraded_secs.to_bits(), b.degraded_secs.to_bits());
    assert_eq!(a.replanned, b.replanned);
    assert_eq!(a.deltas.len(), b.deltas.len());
}

#[test]
fn bert_replans_gracefully_under_the_acceptance_faults() {
    // The transformer path through replan: attention blocks, the
    // stage-comm terms, and the embedding survive the degraded-hardware
    // search just like the CNN zoo, and replanning still pays off.
    let network = zoo::bert_base(8, 64).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = acceptance_faults(7);

    let outcome = planner.replan(&planned, &faults).unwrap();
    let stale = outcome
        .degraded_old_secs
        .expect("no dropout: the stale plan can still run");
    assert!(
        outcome.degraded_secs <= stale * (1.0 + 1e-12),
        "replanned {} vs stale {}",
        outcome.degraded_secs,
        stale
    );
    assert!(stale >= outcome.nominal_secs * (1.0 - 1e-12));

    // Deterministic: a second replan reproduces the same bits.
    let again = planner.replan(&planned, &faults).unwrap();
    assert_eq!(outcome.plan, again.plan);
    assert_eq!(
        outcome.degraded_secs.to_bits(),
        again.degraded_secs.to_bits()
    );
}

#[test]
fn random_fault_models_are_seeded() {
    let a = FaultModel::random(99, 4, 3, 3).unwrap();
    let b = FaultModel::random(99, 4, 3, 3).unwrap();
    assert_eq!(a, b, "same seed, same faults");
    let c = FaultModel::random(100, 4, 3, 3).unwrap();
    assert_ne!(a, c, "different seed, different faults");
}

#[test]
fn dropout_forces_a_feasible_plan_on_the_survivors() {
    let (network, array) = setup();
    let view = network.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = FaultModel::with_seed(7).drop_leaf(3);

    // The stale plan cannot run at all on the faulted hardware...
    let sim = Simulator::new(SimConfig::default());
    let err = sim
        .simulate(&view, planned.plan(), &tree, Some(&faults))
        .unwrap_err();
    assert!(err.to_string().contains("re-plan"), "{err}");

    // ...but the replanner produces one that does, on three boards.
    let outcome = planner.replan(&planned, &faults).unwrap();
    assert!(outcome.replanned);
    assert_eq!(outcome.array.len(), 3);
    assert!(outcome.degraded_secs > 0.0);
    assert_eq!(outcome.degraded_old_secs, None);
}

// ---------------------------------------------------------------------
// Anytime planning: budgets, cancellation, panic isolation, serving.
// ---------------------------------------------------------------------

#[test]
fn zero_node_budget_yields_the_pure_data_parallel_plan() {
    let (network, array) = setup();
    let planner = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .max_nodes(0)
        .build()
        .unwrap();

    let outcome = planner.plan_outcome(Strategy::AccPar).unwrap();
    let PlanOutcome::Partial(partial) = outcome else {
        panic!("a zero budget cannot complete the search");
    };
    assert_eq!(partial.reason(), StopReason::NodeBudget);
    assert_eq!(partial.completeness(), 0.0);
    assert_eq!(partial.solved_levels(), 0);

    // With nothing solved, the anytime fallback IS the pure
    // data-parallel baseline, tree and cost alike.
    let dp = planner.plan(Strategy::DataParallel).unwrap();
    assert_eq!(partial.planned().plan(), dp.plan());
    assert_eq!(
        partial.planned().modeled_cost().to_bits(),
        dp.modeled_cost().to_bits()
    );
}

#[test]
fn plan_quality_is_monotone_in_the_node_budget() {
    // A seeded random MLP: as the node budget grows, the solved
    // fraction never shrinks and the plan never gets more expensive —
    // every partial plan also stays within the data-parallel baseline.
    let mut g = common::Gen(0x5EED_CAFE);
    let mut dims = vec![g.range(64, 257)];
    for _ in 0..6 {
        dims.push(g.range(64, 257));
    }
    let network = common::mlp(g.range(32, 129), &dims);
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let planner = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .build()
        .unwrap();
    let dp_cost = planner.plan(Strategy::DataParallel).unwrap().modeled_cost();

    let rows = network.train_view().unwrap().weighted_len() as u64;
    let mut last_completeness = -1.0f64;
    let mut last_cost = f64::INFINITY;
    for budget_rows in [0, rows, 2 * rows, 3 * rows, u64::MAX] {
        let budget = Budget::unlimited().max_nodes(budget_rows);
        let outcome = planner
            .plan_with_budget(Strategy::AccPar, &budget)
            .unwrap();
        let completeness = outcome.completeness();
        let cost = outcome.planned().modeled_cost();
        assert!(
            completeness >= last_completeness,
            "completeness fell from {last_completeness} to {completeness} at {budget_rows} rows"
        );
        assert!(
            cost <= last_cost * (1.0 + 1e-12),
            "cost rose from {last_cost} to {cost} at {budget_rows} rows"
        );
        assert!(cost <= dp_cost * (1.0 + 1e-12), "worse than pure DP");
        last_completeness = completeness;
        last_cost = cost;
    }
    assert_eq!(last_completeness, 1.0, "an effectively unlimited budget completes");
}

#[test]
fn cancellation_mid_hierarchy_yields_a_simulatable_plan() {
    let (network, array) = setup();
    let view = network.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();

    // Budget sized to solve exactly the root level: the children fall
    // back, and the stitched plan still runs on the BSP simulator.
    let rows = view.weighted_len() as u64;
    let planner = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .max_nodes(rows)
        .build()
        .unwrap();
    let outcome = planner.plan_outcome(Strategy::AccPar).unwrap();
    let PlanOutcome::Partial(partial) = outcome else {
        panic!("a root-only budget cannot finish the children");
    };
    assert_eq!(partial.solved_levels(), 1);
    assert_eq!(partial.fallback_levels(), 2);
    assert!(partial.completeness() > 0.0 && partial.completeness() < 1.0);
    let sim = Simulator::new(SimConfig::default());
    let report = sim
        .simulate(&view, partial.planned().plan(), &tree, None)
        .expect("the partial plan must be feasible");
    assert!(report.total_secs > 0.0);

    // A token cancelled before planning starts degrades everything —
    // and the result is still a feasible, simulatable plan.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .cancel(token)
        .build()
        .unwrap()
        .plan_outcome(Strategy::AccPar)
        .unwrap();
    let PlanOutcome::Partial(partial) = cancelled else {
        panic!("a pre-cancelled token cannot complete");
    };
    assert_eq!(partial.reason(), StopReason::Cancelled);
    assert_eq!(partial.completeness(), 0.0);
    sim.simulate(&view, partial.planned().plan(), &tree, None)
        .expect("the cancelled plan must be feasible");
}

#[test]
fn an_injected_worker_panic_is_retried_to_a_bit_identical_plan() {
    let (network, array) = setup();

    let serial = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .build()
        .unwrap()
        .plan(Strategy::AccPar)
        .unwrap();

    let collector = Arc::new(Collector::new());
    let planner = Planner::builder(&network, &array)
        .levels(2)
        .threads(4)
        .subscriber(Arc::clone(&collector))
        .build()
        .unwrap();
    let chaos = Budget::unlimited().chaos_panic_at_node(5);
    let outcome = planner.plan_with_budget(Strategy::AccPar, &chaos).unwrap();
    assert!(outcome.is_complete(), "the retried search still completes");
    assert_eq!(outcome.planned().plan(), serial.plan());
    assert_eq!(
        outcome.planned().modeled_cost().to_bits(),
        serial.modeled_cost().to_bits()
    );

    planner.obs().emit_metrics();
    let snap = collector.last_metrics().unwrap();
    assert!(snap.counter("pool.panics_caught") >= 1, "the panic fired");
    assert!(
        snap.counter("pool.panics_recovered") >= 1,
        "and the retry recovered it"
    );
}

#[test]
fn plan_many_exhibits_all_four_outcomes() {
    // The acceptance battery: one batch showing a completed plan, a
    // budget-limited partial plan, a recovered worker panic, and a shed
    // request — each observable through the metrics.
    let lenet = zoo::lenet(64).unwrap();
    let alexnet = zoo::alexnet(128).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);

    let requests = vec![
        PlanRequest::new(&lenet, &array).levels(2),
        PlanRequest::new(&alexnet, &array)
            .levels(2)
            .budget(Budget::unlimited().max_nodes(1)),
        PlanRequest::new(&lenet, &array)
            .levels(1)
            .budget(Budget::unlimited().chaos_panic_at_node(2)),
        PlanRequest::new(&lenet, &array).levels(1),
    ];
    let collector = Arc::new(Collector::new());
    let config = ServeConfig {
        max_queue: 3,
        workers: 2,
        obs: Obs::new(Arc::clone(&collector)),
        ..ServeConfig::default()
    };
    let results = Planner::plan_many(&requests, &config);
    assert_eq!(results.len(), 4);

    // 1: complete.
    assert!(matches!(results[0], Ok(PlanOutcome::Complete(_))));
    // 2: partial under the node budget, never worse than pure DP.
    let Ok(PlanOutcome::Partial(partial)) = &results[1] else {
        panic!("one row of budget cannot finish AlexNet");
    };
    assert_eq!(partial.reason(), StopReason::NodeBudget);
    assert!(partial.completeness() < 1.0);
    // 3: the injected panic was recovered and the plan completed.
    assert!(matches!(results[2], Ok(PlanOutcome::Complete(_))));
    // 4: shed beyond the queue bound.
    assert!(matches!(
        results[3],
        Err(PlanError::Overloaded { depth: 4, bound: 3 })
    ));

    config.obs.emit_metrics();
    let snap = collector.last_metrics().unwrap();
    assert_eq!(snap.counter("serve.completed"), 2);
    assert_eq!(snap.counter("serve.partial"), 1);
    assert_eq!(snap.counter("serve.node_budget_hits"), 1);
    assert_eq!(snap.counter("serve.sheds"), 1);
    assert!(snap.counter("pool.panics_recovered") >= 1);
    assert_eq!(collector.events_named("plan.partial").len(), 1);
}

#[test]
fn the_watchdog_flags_a_stalled_request() {
    let network = zoo::bert_base(8, 64).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let requests = vec![PlanRequest::new(&network, &array).levels(2)];
    let collector = Arc::new(Collector::new());
    let config = ServeConfig {
        workers: 1,
        // A 1ns stall threshold (zero is rejected by validation):
        // every request exceeds it, so the stall accounting (watchdog
        // sampling + exact settlement at completion) must flag the
        // request exactly once.
        watchdog_stall: Some(Duration::from_nanos(1)),
        obs: Obs::new(Arc::clone(&collector)),
        ..ServeConfig::default()
    };
    let results = plan_many(&requests, &config);
    assert!(results[0].is_ok());
    config.obs.emit_metrics();
    let snap = collector.last_metrics().unwrap();
    assert!(snap.counter("serve.stalled") >= 1);
    assert!(!collector.events_named("serve.stalled").is_empty());
}
