//! End-to-end robustness acceptance tests: the seeded fault scenario
//! from the issue — one TPU-v2 leaf at half compute, one bisection cut
//! at quarter bandwidth — must produce bit-identical reports across
//! runs, and graceful re-planning must never be worse than limping
//! along on the stale plan.

use accpar::prelude::*;
use accpar_sim::simulate_des;

/// The acceptance scenario: leaf 0 (a TPU-v2 board in
/// `heterogeneous_tpu`) at 0.5x compute, cut 1 at 0.25x bandwidth.
fn acceptance_faults(seed: u64) -> FaultModel {
    FaultModel::with_seed(seed)
        .slow_leaf(0, 0.5)
        .expect("valid factor")
        .degrade_cut(1, 0.25)
        .expect("valid factor")
}

fn setup() -> (Network, AcceleratorArray) {
    let network = zoo::alexnet(256).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    (network, array)
}

#[test]
fn seeded_faulted_reports_are_identical_across_runs() {
    let (network, array) = setup();
    let view = network.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = acceptance_faults(7);

    let sim = Simulator::new(SimConfig::default());
    let a = sim
        .simulate(&view, planned.plan(), &tree, Some(&faults))
        .unwrap();
    let b = sim
        .simulate(&view, planned.plan(), &tree, Some(&faults))
        .unwrap();
    assert_eq!(a, b, "bulk-synchronous reports must be bit-identical");

    let config = SimConfig::default();
    let da = simulate_des(&config, &view, planned.plan(), &tree, Some(&faults)).unwrap();
    let db = simulate_des(&config, &view, planned.plan(), &tree, Some(&faults)).unwrap();
    assert_eq!(da.total_secs.to_bits(), db.total_secs.to_bits());
    assert_eq!(da.leaf_busy_secs, db.leaf_busy_secs);
    assert_eq!(da.tasks, db.tasks);

    // The faults actually hurt: degraded strictly slower than nominal
    // (the quarter-bandwidth cut bites even when the straggler hides
    // behind the memory roofline).
    let clean = sim.simulate(&view, planned.plan(), &tree, None).unwrap();
    assert!(a.total_secs > clean.total_secs, "faults must slow the step");
    let dclean = simulate_des(&config, &view, planned.plan(), &tree, None).unwrap();
    assert!(da.total_secs > dclean.total_secs);
}

#[test]
fn replanned_degraded_step_never_exceeds_the_stale_plan() {
    let (network, array) = setup();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let faults = acceptance_faults(7);

    for strategy in Strategy::ALL {
        let planned = planner.plan(strategy).unwrap();
        let outcome = planner.replan(&planned, &faults).unwrap();
        let stale = outcome
            .degraded_old_secs
            .expect("no dropout: the stale plan can still run");
        assert!(
            outcome.degraded_secs <= stale * (1.0 + 1e-12),
            "{strategy}: replanned {} vs stale {}",
            outcome.degraded_secs,
            stale
        );
        // A stale plan on strictly worse hardware can only slow down.
        assert!(stale >= outcome.nominal_secs * (1.0 - 1e-12), "{strategy}");
    }
}

#[test]
fn replanning_is_deterministic() {
    let (network, array) = setup();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = acceptance_faults(7);

    let a = planner.replan(&planned, &faults).unwrap();
    let b = planner.replan(&planned, &faults).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.degraded_secs.to_bits(), b.degraded_secs.to_bits());
    assert_eq!(a.replanned, b.replanned);
    assert_eq!(a.deltas.len(), b.deltas.len());
}

#[test]
fn bert_replans_gracefully_under_the_acceptance_faults() {
    // The transformer path through replan: attention blocks, the
    // stage-comm terms, and the embedding survive the degraded-hardware
    // search just like the CNN zoo, and replanning still pays off.
    let network = zoo::bert_base(8, 64).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = acceptance_faults(7);

    let outcome = planner.replan(&planned, &faults).unwrap();
    let stale = outcome
        .degraded_old_secs
        .expect("no dropout: the stale plan can still run");
    assert!(
        outcome.degraded_secs <= stale * (1.0 + 1e-12),
        "replanned {} vs stale {}",
        outcome.degraded_secs,
        stale
    );
    assert!(stale >= outcome.nominal_secs * (1.0 - 1e-12));

    // Deterministic: a second replan reproduces the same bits.
    let again = planner.replan(&planned, &faults).unwrap();
    assert_eq!(outcome.plan, again.plan);
    assert_eq!(
        outcome.degraded_secs.to_bits(),
        again.degraded_secs.to_bits()
    );
}

#[test]
fn random_fault_models_are_seeded() {
    let a = FaultModel::random(99, 4, 3, 3).unwrap();
    let b = FaultModel::random(99, 4, 3, 3).unwrap();
    assert_eq!(a, b, "same seed, same faults");
    let c = FaultModel::random(100, 4, 3, 3).unwrap();
    assert_ne!(a, c, "different seed, different faults");
}

#[test]
fn dropout_forces_a_feasible_plan_on_the_survivors() {
    let (network, array) = setup();
    let view = network.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let planner = Planner::builder(&network, &array).levels(2).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let faults = FaultModel::with_seed(7).drop_leaf(3);

    // The stale plan cannot run at all on the faulted hardware...
    let sim = Simulator::new(SimConfig::default());
    let err = sim
        .simulate(&view, planned.plan(), &tree, Some(&faults))
        .unwrap_err();
    assert!(err.to_string().contains("re-plan"), "{err}");

    // ...but the replanner produces one that does, on three boards.
    let outcome = planner.replan(&planned, &faults).unwrap();
    assert!(outcome.replanned);
    assert_eq!(outcome.array.len(), 3);
    assert!(outcome.degraded_secs > 0.0);
    assert_eq!(outcome.degraded_old_secs, None);
}
