//! Cross-validation between the analytic cost model (the planner's view
//! of the world) and the trace-based simulator (the measurement
//! instrument). The two are implemented independently; where their
//! assumptions coincide they must agree exactly.

use accpar::cost::{CostConfig, CostModel, PairEnv};
use accpar::partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, Ratio, ShardScales};
use accpar::prelude::*;
use accpar::sim::SimConfig;

fn single_fc(batch: usize, d_in: usize, d_out: usize) -> Network {
    NetworkBuilder::new("one", FeatureShape::fc(batch, d_in))
        .linear("fc", d_in, d_out)
        .build()
        .expect("builds")
}

#[test]
fn sim_equals_model_for_every_type_and_ratio_on_homogeneous_pairs() {
    let net = single_fc(128, 512, 256);
    let view = net.train_view().unwrap();
    let layer = view.layers().next().unwrap().clone();
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let sim = Simulator::new(SimConfig::cost_model_aligned());

    for ptype in PartitionType::ALL {
        {
            // On a homogeneous pair at the equal split, per-stage maxima
            // and per-group sums coincide: the sim must equal the model.
            let alpha = 0.5;
            let ratio = Ratio::new(alpha).unwrap();
            let plan = HierPlan::new(vec![NetworkPlan::uniform(
                1,
                LayerPlan::new(ptype, ratio),
            )])
            .to_tree();
            let report = sim.simulate(&view, &plan, &tree, None).unwrap();
            let expected = model
                .layer_cost(&layer, ptype, ratio, &env, ShardScales::full())
                .makespan();
            assert!(
                (report.total_secs - expected).abs() / expected < 1e-9,
                "{ptype} alpha={alpha}: sim {} vs model {}",
                report.total_secs,
                expected
            );
        }
    }
}

#[test]
fn sim_is_bounded_by_model_on_heterogeneous_pairs() {
    // The model takes max over groups of (compute + comm); the sim takes
    // stage-wise maxima, i.e. max(compute) + max(comm). The sim is
    // therefore bounded above by the *sum* of per-stage maxima and below
    // by half the model — and when the same group is the straggler of
    // both stages (the equal split on a v2/v3 pair) the two coincide.
    let net = single_fc(256, 1024, 1024);
    let view = net.train_view().unwrap();
    let layer = view.layers().next().unwrap().clone();
    let array = AcceleratorArray::heterogeneous_tpu(1, 1);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let sim = Simulator::new(SimConfig::cost_model_aligned());

    for ptype in PartitionType::ALL {
        for alpha in [0.0, 0.25, 0.3, 0.5, 0.75, 1.0] {
            let ratio = Ratio::new(alpha).unwrap();
            let plan = HierPlan::new(vec![NetworkPlan::uniform(
                1,
                LayerPlan::new(ptype, ratio),
            )])
            .to_tree();
            let report = sim.simulate(&view, &plan, &tree, None).unwrap();
            let cost = model.layer_cost(&layer, ptype, ratio, &env, ShardScales::full());
            let makespan = cost.makespan();
            // Upper bound: sum of per-stage maxima (≤ 2x the makespan).
            assert!(
                report.total_secs <= 2.0 * makespan * (1.0 + 1e-9),
                "{ptype} alpha={alpha}: sim {} above twice the model {}",
                report.total_secs,
                makespan
            );
            assert!(
                report.total_secs >= 0.5 * makespan,
                "{ptype} alpha={alpha}: sim {} below half the model {}",
                report.total_secs,
                makespan
            );
            if alpha == 0.5 {
                // At the equal split the v2 group is the straggler of
                // both the compute and the communication stage, so the
                // two formulations coincide exactly.
                assert!(
                    (report.total_secs - makespan).abs() / makespan < 1e-9,
                    "{ptype}: sim {} vs model {}",
                    report.total_secs,
                    makespan
                );
            }
        }
    }
}

fn single_attention(batch: usize, seq: usize, heads: usize, d_model: usize) -> Network {
    NetworkBuilder::new("attn", FeatureShape::seq(batch, seq, d_model))
        .multi_head_attention("mha", heads, d_model, d_model / heads)
        .build()
        .expect("builds")
}

#[test]
fn sim_equals_model_on_a_single_attention_layer_homogeneous() {
    // Attention lowers to four weighted projections (q | k | v, then o)
    // with the score/softmax/context stage charged on o. On a homogeneous
    // pair the same group is the straggler of every phase, so the BSP
    // total minus conversion traffic must equal the summed per-layer
    // model makespans — for every type, at any ratio.
    let net = single_attention(8, 32, 4, 64);
    let view = net.train_view().unwrap();
    let mut layers: Vec<_> = view.layers().cloned().collect();
    layers.sort_by_key(accpar::dnn::TrainLayer::index);
    assert_eq!(layers.len(), 4);
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let sim = Simulator::new(SimConfig::cost_model_aligned());

    for ptype in PartitionType::ALL {
        for alpha in [0.25, 0.5, 0.7] {
            let ratio = Ratio::new(alpha).unwrap();
            let plan = HierPlan::new(vec![NetworkPlan::uniform(
                4,
                LayerPlan::new(ptype, ratio),
            )])
            .to_tree();
            let report = sim.simulate(&view, &plan, &tree, None).unwrap();
            let expected: f64 = layers
                .iter()
                .map(|l| {
                    model
                        .layer_cost(l, ptype, ratio, &env, ShardScales::full())
                        .makespan()
                })
                .sum();
            let measured = report.total_secs - report.conversion_secs;
            assert!(
                (measured - expected).abs() / expected < 1e-9,
                "{ptype} alpha={alpha}: sim {measured} vs model {expected}"
            );
        }
    }
}

#[test]
fn sim_is_bounded_by_model_on_attention_over_heterogeneous_pairs() {
    let net = single_attention(8, 32, 4, 64);
    let view = net.train_view().unwrap();
    let mut layers: Vec<_> = view.layers().cloned().collect();
    layers.sort_by_key(accpar::dnn::TrainLayer::index);
    let array = AcceleratorArray::heterogeneous_tpu(1, 1);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let sim = Simulator::new(SimConfig::cost_model_aligned());

    for ptype in PartitionType::ALL {
        for alpha in [0.25, 0.5, 0.75] {
            let ratio = Ratio::new(alpha).unwrap();
            let plan = HierPlan::new(vec![NetworkPlan::uniform(
                4,
                LayerPlan::new(ptype, ratio),
            )])
            .to_tree();
            let report = sim.simulate(&view, &plan, &tree, None).unwrap();
            let expected: f64 = layers
                .iter()
                .map(|l| {
                    model
                        .layer_cost(l, ptype, ratio, &env, ShardScales::full())
                        .makespan()
                })
                .sum();
            let measured = report.total_secs - report.conversion_secs;
            // Stage-wise maxima vs per-group maxima: within a factor of
            // two in general, exact when the v2 group straggles every
            // phase (the equal split).
            assert!(
                measured <= 2.0 * expected * (1.0 + 1e-9),
                "{ptype} alpha={alpha}: sim {measured} above twice the model {expected}"
            );
            assert!(
                measured >= 0.5 * expected,
                "{ptype} alpha={alpha}: sim {measured} below half the model {expected}"
            );
            if alpha == 0.5 {
                assert!(
                    (measured - expected).abs() / expected < 1e-9,
                    "{ptype}: sim {measured} vs model {expected}"
                );
            }

            // The event-driven backend schedules the same task graph with
            // work-conserving resources: it can only be as fast or faster
            // than the phase-barriered BSP account.
            let des = accpar::sim::simulate_des(
                &SimConfig::cost_model_aligned(),
                &view,
                &plan,
                &tree,
                None,
            )
            .unwrap();
            assert!(des.total_secs > 0.0);
            assert!(
                des.total_secs <= report.total_secs * (1.0 + 1e-9),
                "{ptype} alpha={alpha}: des {} above bsp {}",
                des.total_secs,
                report.total_secs
            );
        }
    }
}

#[test]
fn layer_norm_is_partition_neutral() {
    // LayerNorm is unweighted and token-local: the train view elides it,
    // so a chain with layer norms must plan and simulate identically to
    // the same chain without them — under every partition type and both
    // backends.
    let plain = NetworkBuilder::new("plain", FeatureShape::seq(4, 16, 64))
        .linear("fc", 64, 64)
        .build()
        .unwrap();
    let normed = NetworkBuilder::new("normed", FeatureShape::seq(4, 16, 64))
        .layer_norm("ln1")
        .linear("fc", 64, 64)
        .layer_norm("ln2")
        .build()
        .unwrap();
    let (pv, nv) = (plain.train_view().unwrap(), normed.train_view().unwrap());
    assert_eq!(pv.weighted_len(), nv.weighted_len());

    let array = AcceleratorArray::heterogeneous_tpu(1, 1);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let sim = Simulator::new(SimConfig::cost_model_aligned());
    for ptype in PartitionType::ALL {
        let plan = HierPlan::new(vec![NetworkPlan::uniform(
            1,
            LayerPlan::new(ptype, Ratio::new(0.4).unwrap()),
        )])
        .to_tree();
        let a = sim.simulate(&pv, &plan, &tree, None).unwrap();
        let b = sim.simulate(&nv, &plan, &tree, None).unwrap();
        assert_eq!(a.total_secs.to_bits(), b.total_secs.to_bits(), "{ptype}");
        let da = accpar::sim::simulate_des(
            &SimConfig::cost_model_aligned(),
            &pv,
            &plan,
            &tree,
            None,
        )
        .unwrap();
        let db = accpar::sim::simulate_des(
            &SimConfig::cost_model_aligned(),
            &nv,
            &plan,
            &tree,
            None,
        )
        .unwrap();
        assert_eq!(da.total_secs.to_bits(), db.total_secs.to_bits(), "{ptype}");
    }
}

#[test]
fn table5_zero_entries_are_conversion_free_in_the_simulator() {
    // Three of the nine type transitions cost nothing (Table 5); the
    // simulator must reproduce those zeros through an entirely different
    // code path.
    let net = NetworkBuilder::new("two", FeatureShape::fc(64, 256))
        .linear("fc1", 256, 256)
        .linear("fc2", 256, 256)
        .build()
        .unwrap();
    let view = net.train_view().unwrap();
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let sim = Simulator::new(SimConfig::default());

    for (prev, next) in [
        (PartitionType::TypeI, PartitionType::TypeI),
        (PartitionType::TypeII, PartitionType::TypeIII),
        (PartitionType::TypeIII, PartitionType::TypeII),
    ] {
        let plan = HierPlan::new(vec![NetworkPlan::new(vec![
            LayerPlan::new(prev, Ratio::EQUAL),
            LayerPlan::new(next, Ratio::EQUAL),
        ])])
        .to_tree();
        let report = sim.simulate(&view, &plan, &tree, None).unwrap();
        assert_eq!(report.conversion_secs, 0.0, "{prev} -> {next}");
    }
}

#[test]
fn nonzero_table5_entries_show_up_in_the_simulator() {
    let net = NetworkBuilder::new("two", FeatureShape::fc(64, 256))
        .linear("fc1", 256, 256)
        .linear("fc2", 256, 256)
        .build()
        .unwrap();
    let view = net.train_view().unwrap();
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let sim = Simulator::new(SimConfig::default());

    for (prev, next) in [
        (PartitionType::TypeI, PartitionType::TypeII),
        (PartitionType::TypeI, PartitionType::TypeIII),
        (PartitionType::TypeII, PartitionType::TypeI),
        (PartitionType::TypeIII, PartitionType::TypeI),
        (PartitionType::TypeIII, PartitionType::TypeIII),
        (PartitionType::TypeII, PartitionType::TypeII),
    ] {
        let plan = HierPlan::new(vec![NetworkPlan::new(vec![
            LayerPlan::new(prev, Ratio::EQUAL),
            LayerPlan::new(next, Ratio::EQUAL),
        ])])
        .to_tree();
        let report = sim.simulate(&view, &plan, &tree, None).unwrap();
        assert!(report.conversion_secs > 0.0, "{prev} -> {next}");
    }
}

#[test]
fn search_objective_tracks_simulator_within_factor_two() {
    // The level search's accumulated objective approximates the aligned
    // simulator's step time; they aggregate maxima differently, so exact
    // equality is not expected — but they must stay within 2x on real
    // networks (otherwise the planner would optimize the wrong thing).
    use accpar::core::{LevelSearcher, SearchConfig};
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let tree = GroupTree::bisect(&array, 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let config = SearchConfig::accpar();
    let sim = Simulator::new(SimConfig::cost_model_aligned());

    for name in ["lenet", "alexnet"] {
        let net = zoo::by_name(name, 128).unwrap();
        let view = net.train_view().unwrap();
        let searcher = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let outcome = searcher.search();
        let plan = HierPlan::new(vec![outcome.plan.clone()]).to_tree();
        let measured = sim.simulate(&view, &plan, &tree, None).unwrap().total_secs;
        let ratio = outcome.cost / measured;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{name}: objective {} vs simulated {} (ratio {ratio})",
            outcome.cost,
            measured
        );
    }
}
