//! Table 8 of the paper: the flexibility ordering
//! DP ≺ OWT ≺ HyPar ≺ AccPar, checked as performance on the
//! heterogeneous array.
//!
//! Strict per-model dominance is only claimed for AccPar (its search
//! space contains every other scheme's plans and its evaluator is
//! heterogeneity-aware); OWT and HyPar can lose to plain DP on networks
//! whose FC layers are tiny (LeNet), exactly as static schemes should.

use accpar::prelude::*;

fn speedups(name: &str, array: &AcceleratorArray) -> Vec<(Strategy, f64)> {
    // The paper's batch size; AccPar's dominance claims are made at the
    // paper's scale (deep hierarchies give the complete search space its
    // room — at toy scale the greedy per-level search can land within a
    // few percent of DP on ResNets).
    let net = zoo::by_name(name, 512).expect("zoo network");
    let planner = Planner::builder(&net, array).sim_config(SimConfig::default()).build().unwrap();
    let mut out = Vec::new();
    let mut dp = 0.0;
    for (i, s) in Strategy::ALL.iter().enumerate() {
        let cost = planner.plan(*s).expect("plans cleanly").modeled_cost();
        if i == 0 {
            dp = cost;
        }
        out.push((*s, dp / cost));
    }
    out
}

#[test]
fn accpar_dominates_every_baseline_on_the_big_models() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    for name in ["alexnet", "vgg11", "resnet18"] {
        let rows = speedups(name, &array);
        let accpar = rows[3].1;
        for (s, speedup) in &rows[..3] {
            assert!(
                accpar >= speedup * (1.0 - 1e-9),
                "{name}: AccPar {accpar:.3}x must dominate {s} {speedup:.3}x"
            );
        }
    }
}

#[test]
fn flexibility_ordering_holds_on_geomean() {
    // DP ≤ OWT ≤ HyPar ≤ AccPar in geometric mean over the sampled
    // suite (Table 8's ordering, §6.4).
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let names = ["lenet", "alexnet", "vgg11", "resnet18"];
    let mut logs = [0.0f64; 4];
    for name in names {
        for (i, (_, speedup)) in speedups(name, &array).iter().enumerate() {
            logs[i] += speedup.ln();
        }
    }
    let geo: Vec<f64> = logs.iter().map(|l| (l / names.len() as f64).exp()).collect();
    assert!((geo[0] - 1.0).abs() < 1e-9, "DP normalizes to 1, got {}", geo[0]);
    assert!(geo[1] >= geo[0] * 0.999, "OWT {} vs DP {}", geo[1], geo[0]);
    assert!(geo[2] >= geo[1] * 0.999, "HyPar {} vs OWT {}", geo[2], geo[1]);
    assert!(geo[3] > geo[2], "AccPar {} vs HyPar {}", geo[3], geo[2]);
}

#[test]
fn dynamic_schemes_adapt_where_static_ones_cannot() {
    // On LeNet the static OWT choice (model-parallel FCs) backfires,
    // while the dynamic searches never do worse than DP.
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let rows = speedups("lenet", &array);
    let (owt, hypar, accpar) = (rows[1].1, rows[2].1, rows[3].1);
    assert!(owt < 1.0, "OWT should backfire on LeNet, got {owt:.3}x");
    assert!(hypar >= 0.999, "HyPar must not lose to DP, got {hypar:.3}x");
    assert!(accpar >= 0.999, "AccPar must not lose to DP, got {accpar:.3}x");
}

#[test]
fn heterogeneity_awareness_is_the_accpar_edge_on_resnet() {
    // ResNet on a heterogeneous array: HyPar's equal partitioning leaves
    // it at DP performance (§6.2: 1.03–1.04x), AccPar roughly doubles.
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let rows = speedups("resnet18", &array);
    let (hypar, accpar) = (rows[2].1, rows[3].1);
    assert!(hypar < 1.15, "HyPar ≈ DP expected, got {hypar:.3}x");
    assert!(accpar > 1.4, "AccPar must clearly win, got {accpar:.3}x");
}
