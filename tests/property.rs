//! End-to-end property tests spanning the whole workspace, driven by a
//! seeded deterministic case generator (the workspace builds offline, so
//! no external property-testing crate is used).

use accpar::core::{LevelSearcher, Planner, SearchConfig, Strategy};
use accpar::cost::{CostConfig, CostModel, PairEnv};
use accpar::partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, Ratio};
use accpar::prelude::*;
use accpar::sim::SimConfig;

mod common;
use common::{mlp, random_encoder, Gen};

/// The DP search equals brute force on random chains — the §5.1
/// optimality claim, under random shapes and heterogeneous pairs.
#[test]
fn dp_is_optimal_on_random_chains() {
    let mut g = Gen(0xacc9a11);
    for _ in 0..24 {
        let batch = g.range(1, 128);
        let dims = g.vec(1, 256, 2, 6);
        let (v2, v3) = (g.range(1, 4), g.range(1, 4));
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let searcher = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let dp = searcher.search();
        let brute = searcher.exhaustive();
        assert!(
            dp.cost <= brute.cost * (1.0 + 1e-12),
            "dp {} vs brute {}",
            dp.cost,
            brute.cost
        );
    }
}

/// Simulated step time decreases (weakly) when every bandwidth and
/// compute rate doubles.
#[test]
fn faster_hardware_is_never_slower() {
    let mut g = Gen(0xacc9a12);
    for _ in 0..24 {
        let batch = g.range(8, 128);
        let dims = g.vec(8, 256, 2, 5);
        let t_idx = g.range(0, 3);
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let plan = HierPlan::new(vec![NetworkPlan::uniform(
            view.weighted_len(),
            LayerPlan::new(PartitionType::ALL[t_idx], Ratio::EQUAL),
        )])
        .to_tree();

        let slow_spec = AcceleratorSpec::new("slow", 1e12, 1 << 30, 100e9, 1e9, 2, 10e9).unwrap();
        let fast_spec = AcceleratorSpec::new("fast", 2e12, 1 << 30, 200e9, 2e9, 2, 20e9).unwrap();
        let sim = Simulator::new(SimConfig::default());
        let slow = {
            let tree =
                GroupTree::bisect(&AcceleratorArray::homogeneous(slow_spec, 2), 1).unwrap();
            sim.simulate(&view, &plan, &tree, None).unwrap().total_secs
        };
        let fast = {
            let tree =
                GroupTree::bisect(&AcceleratorArray::homogeneous(fast_spec, 2), 1).unwrap();
            sim.simulate(&view, &plan, &tree, None).unwrap().total_secs
        };
        assert!(fast <= slow * (1.0 + 1e-12), "fast {fast} vs slow {slow}");
        // Doubling every rate exactly halves the time.
        assert!((fast - slow / 2.0).abs() / fast < 1e-9);
    }
}

/// The AccPar plan's cost never exceeds the data-parallel plan's cost
/// under the search's own per-level objective.
#[test]
fn search_never_loses_to_data_parallelism_on_its_own_objective() {
    let mut g = Gen(0xacc9a13);
    for _ in 0..24 {
        let batch = g.range(8, 128);
        let dims = g.vec(8, 512, 2, 5);
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();
        let model = CostModel::new(CostConfig::default());

        let accpar = LevelSearcher::new(&view, &model, &SearchConfig::accpar(), &env, None)
            .unwrap()
            .search();
        let dp_only = SearchConfig {
            types: vec![PartitionType::TypeI].into(),
            solver: accpar::cost::RatioSolver::Fixed(Ratio::EQUAL),
            collapse: true,
        };
        let dp = LevelSearcher::new(&view, &model, &dp_only, &env, None)
            .unwrap()
            .search();
        assert!(accpar.cost <= dp.cost * (1.0 + 1e-12));
    }
}

/// The §5.1 optimality claim extends to lowered attention: on random
/// transformer encoder chains the DP search returns exactly the brute
/// force optimum — same plan, same cost — on heterogeneous pairs.
#[test]
fn dp_is_optimal_on_random_transformer_chains() {
    let mut g = Gen(0xacc9a15);
    for case in 0..10 {
        // Brute force over a block is exponential in its layer count, so
        // cap the exhaustive comparison at two encoder blocks.
        let blocks = g.range(1, 3);
        let net = random_encoder(&mut g, blocks);
        let view = net.train_view().unwrap();
        let (v2, v3) = (g.range(1, 4), g.range(1, 4));
        let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let searcher = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let dp = searcher.search();
        let brute = searcher.exhaustive();
        assert!(
            (dp.cost - brute.cost).abs() <= brute.cost * 1e-12,
            "case {case}: dp {} vs brute {}",
            dp.cost,
            brute.cost
        );
        assert_eq!(dp.plan, brute.plan, "case {case}: plan diverged");
    }
}

/// The parallel, memoized planning engine is bit-identical to the
/// serial cache-free engine on random transformer encoder chains.
#[test]
fn parallel_planner_is_bit_identical_on_random_transformers() {
    let mut g = Gen(0xacc9a16);
    for case in 0..6 {
        let blocks = g.range(1, 5);
        let net = random_encoder(&mut g, blocks);
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let reference = Planner::builder(&net, &array)
            .threads(1)
            .caching(false)
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        let parallel = Planner::builder(&net, &array)
            .threads(8)
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        assert_eq!(
            parallel.plan(),
            reference.plan(),
            "case {case} ({blocks} blocks): plan diverged"
        );
        assert_eq!(
            parallel.modeled_cost().to_bits(),
            reference.modeled_cost().to_bits(),
            "case {case} ({blocks} blocks): cost bits diverged"
        );
    }
}

/// Every simulated quantity is finite and non-negative for random plans.
#[test]
fn simulator_outputs_are_sane() {
    let mut g = Gen(0xacc9a14);
    for _ in 0..24 {
        let batch = g.range(1, 64);
        let dims = g.vec(1, 128, 2, 5);
        let types: Vec<usize> = (0..4).map(|_| g.range(0, 3)).collect();
        let alphas: Vec<f64> = (0..4).map(|_| g.unit()).collect();
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let n = view.weighted_len();
        let entries: Vec<LayerPlan> = (0..n)
            .map(|l| {
                LayerPlan::new(
                    PartitionType::ALL[types[l % types.len()]],
                    Ratio::new(alphas[l % alphas.len()]).unwrap(),
                )
            })
            .collect();
        let plan = HierPlan::new(vec![NetworkPlan::new(entries)]).to_tree();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(1, 1), 1).unwrap();
        let report = Simulator::new(SimConfig::default())
            .simulate(&view, &plan, &tree, None)
            .unwrap();
        assert!(report.total_secs.is_finite() && report.total_secs > 0.0);
        assert!(report.compute_secs >= 0.0);
        assert!(report.psum_secs >= 0.0);
        assert!(report.conversion_secs >= 0.0);
        let from_layers: f64 = report.per_layer.iter().map(|l| l.total()).sum();
        assert!((from_layers - report.total_secs).abs() < 1e-9 * report.total_secs);
    }
}
