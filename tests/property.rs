//! End-to-end property tests spanning the whole workspace.

use accpar::core::{LevelSearcher, SearchConfig};
use accpar::cost::{CostConfig, CostModel, PairEnv};
use accpar::partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, Ratio};
use accpar::prelude::*;
use accpar::sim::SimConfig;
use proptest::prelude::*;

fn mlp(batch: usize, dims: &[usize]) -> Network {
    let mut b = NetworkBuilder::new("mlp", FeatureShape::fc(batch, dims[0]));
    for (i, pair) in dims.windows(2).enumerate() {
        b = b.linear(format!("fc{i}"), pair[0], pair[1]);
    }
    b.build().expect("valid MLP")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DP search equals brute force on random chains — the §5.1
    /// optimality claim, under random shapes and heterogeneous pairs.
    #[test]
    fn dp_is_optimal_on_random_chains(
        batch in 1usize..128,
        dims in proptest::collection::vec(1usize..256, 2..6),
        v2 in 1usize..4,
        v3 in 1usize..4,
    ) {
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let searcher = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let dp = searcher.search();
        let brute = searcher.exhaustive();
        prop_assert!(
            dp.cost <= brute.cost * (1.0 + 1e-12),
            "dp {} vs brute {}", dp.cost, brute.cost
        );
    }

    /// Simulated step time decreases (weakly) when every bandwidth and
    /// compute rate doubles.
    #[test]
    fn faster_hardware_is_never_slower(
        batch in 8usize..128,
        dims in proptest::collection::vec(8usize..256, 2..5),
        t_idx in 0usize..3,
    ) {
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let plan = HierPlan::new(vec![NetworkPlan::uniform(
            view.weighted_len(),
            LayerPlan::new(PartitionType::ALL[t_idx], Ratio::EQUAL),
        )]).to_tree();

        let slow_spec = AcceleratorSpec::new("slow", 1e12, 1 << 30, 100e9, 1e9, 2, 10e9).unwrap();
        let fast_spec = AcceleratorSpec::new("fast", 2e12, 1 << 30, 200e9, 2e9, 2, 20e9).unwrap();
        let sim = Simulator::new(SimConfig::default());
        let slow = {
            let tree = GroupTree::bisect(&AcceleratorArray::homogeneous(slow_spec, 2), 1).unwrap();
            sim.simulate(&view, &plan, &tree).unwrap().total_secs
        };
        let fast = {
            let tree = GroupTree::bisect(&AcceleratorArray::homogeneous(fast_spec, 2), 1).unwrap();
            sim.simulate(&view, &plan, &tree).unwrap().total_secs
        };
        prop_assert!(fast <= slow * (1.0 + 1e-12), "fast {fast} vs slow {slow}");
        // Doubling every rate exactly halves the time.
        prop_assert!((fast - slow / 2.0).abs() / fast < 1e-9);
    }

    /// The AccPar plan's cost never exceeds the data-parallel plan's cost
    /// under the search's own per-level objective.
    #[test]
    fn search_never_loses_to_data_parallelism_on_its_own_objective(
        batch in 8usize..128,
        dims in proptest::collection::vec(8usize..512, 2..5),
    ) {
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();
        let model = CostModel::new(CostConfig::default());

        let accpar = LevelSearcher::new(&view, &model, &SearchConfig::accpar(), &env, None)
            .unwrap()
            .search();
        let dp_only = SearchConfig {
            types: vec![PartitionType::TypeI],
            solver: accpar::cost::RatioSolver::Fixed(Ratio::EQUAL),
        };
        let dp = LevelSearcher::new(&view, &model, &dp_only, &env, None)
            .unwrap()
            .search();
        prop_assert!(accpar.cost <= dp.cost * (1.0 + 1e-12));
    }

    /// Every simulated quantity is finite and non-negative for random
    /// plans.
    #[test]
    fn simulator_outputs_are_sane(
        batch in 1usize..64,
        dims in proptest::collection::vec(1usize..128, 2..5),
        types in proptest::collection::vec(0usize..3, 4),
        alphas in proptest::collection::vec(0.0f64..=1.0, 4),
    ) {
        let net = mlp(batch, &dims);
        let view = net.train_view().unwrap();
        let n = view.weighted_len();
        let entries: Vec<LayerPlan> = (0..n)
            .map(|l| LayerPlan::new(
                PartitionType::ALL[types[l % types.len()]],
                Ratio::new(alphas[l % alphas.len()]).unwrap(),
            ))
            .collect();
        let plan = HierPlan::new(vec![NetworkPlan::new(entries)]).to_tree();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(1, 1), 1).unwrap();
        let report = Simulator::new(SimConfig::default())
            .simulate(&view, &plan, &tree)
            .unwrap();
        prop_assert!(report.total_secs.is_finite() && report.total_secs > 0.0);
        prop_assert!(report.compute_secs >= 0.0);
        prop_assert!(report.psum_secs >= 0.0);
        prop_assert!(report.conversion_secs >= 0.0);
        let from_layers: f64 = report.per_layer.iter().map(|l| l.total()).sum();
        prop_assert!((from_layers - report.total_secs).abs() < 1e-9 * report.total_secs);
    }
}
