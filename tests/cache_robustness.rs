//! Robustness battery for the crash-safe plan cache: corruption is
//! detected or harmless (never a wrong plan), a crash mid-write
//! recovers by quarantining the torn tail, degraded hardware demotes
//! hits to replans, and persistence I/O failure degrades to
//! memory-only serving — never a panic, never a startup failure.

use accpar::prelude::*;
use accpar_core::cache::POISON_TOLERANCE;
use accpar_core::{PlanCache, PlanRecord};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

mod common;

fn setup() -> (Network, AcceleratorArray) {
    let network = zoo::lenet(128).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    (network, array)
}

/// A fresh per-test cache directory (std-only; no tempdir crate).
fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "accpar-cache-test-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn serve_with_cache(
    network: &Network,
    array: &AcceleratorArray,
    cache: &Arc<PlanCache>,
) -> PlannedNetwork {
    let config = ServeConfig {
        cache: Some(Arc::clone(cache)),
        ..ServeConfig::default()
    };
    let requests = vec![PlanRequest::new(network, array).levels(2)];
    plan_many(&requests, &config)
        .remove(0)
        .expect("request plans")
        .into_planned()
}

#[test]
fn cache_hit_serves_the_bit_identical_plan() {
    let (network, array) = setup();
    let dir = cache_dir("hit");
    let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    let cold = serve_with_cache(&network, &array, &cache);
    assert_eq!(cache.stats().misses, 1);
    let warm = serve_with_cache(&network, &array, &cache);
    assert_eq!(cache.stats().hits, 1, "{:?}", cache.stats());
    assert_eq!(cold.plan(), warm.plan());
    assert_eq!(
        cold.modeled_cost().to_bits(),
        warm.modeled_cost().to_bits(),
        "validated hits must serve bit-identical costs"
    );
    // And the cold path itself matches a cache-free planner bit for bit.
    let uncached = Planner::builder(&network, &array)
        .levels(2)
        .build()
        .unwrap()
        .plan(Strategy::AccPar)
        .unwrap();
    assert_eq!(uncached.plan(), cold.plan());
    assert_eq!(uncached.modeled_cost().to_bits(), cold.modeled_cost().to_bits());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_restart_and_serves_from_disk() {
    let (network, array) = setup();
    let dir = cache_dir("restart");
    {
        let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
        serve_with_cache(&network, &array, &cache);
        assert_eq!(cache.len(), 1);
    }
    let reborn = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    assert_eq!(reborn.load_report().loaded, 1);
    serve_with_cache(&network, &array, &reborn);
    assert_eq!(reborn.stats().hits, 1, "warm load must serve the hit");
    let _ = fs::remove_dir_all(&dir);
}

/// Property test: ANY single bit-flip in the persisted file is either
/// detected (the record is quarantined and re-planned) or harmless —
/// the served plan never differs from a fresh plan. Deterministic
/// seeded sampling of flip positions keeps the runtime bounded.
#[test]
fn any_bit_flip_is_detected_or_harmless() {
    let (network, array) = setup();
    let dir = cache_dir("bitflip");
    let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    let truth = serve_with_cache(&network, &array, &cache);
    drop(cache);
    let file = dir.join("plans.jsonl");
    let pristine = fs::read(&file).expect("cache file exists");

    let mut gen = common::Gen(0x5eed);
    for _ in 0..200 {
        let bit = gen.range(0, pristine.len() * 8);
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        fs::write(&file, &bytes).unwrap();
        let _ = fs::remove_file(dir.join("plans.jsonl.quarantine"));

        let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
        let served = serve_with_cache(&network, &array, &cache);
        assert_eq!(
            served.plan(),
            truth.plan(),
            "bit {bit}: corrupted cache served a different plan"
        );
        assert_eq!(
            served.modeled_cost().to_bits(),
            truth.modeled_cost().to_bits(),
            "bit {bit}: corrupted cache served a different cost"
        );
        // Detected corruption must leave a postmortem trail.
        if cache.load_report().quarantined > 0 {
            assert!(
                dir.join("plans.jsonl.quarantine").exists(),
                "bit {bit}: quarantined line missing from sidecar"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_write_truncation_recovers_with_quarantine() {
    let (network, array) = setup();
    let alexnet = zoo::alexnet(128).unwrap();
    let dir = cache_dir("truncate");
    {
        let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
        serve_with_cache(&network, &array, &cache);
        serve_with_cache(&alexnet, &array, &cache);
        assert_eq!(cache.len(), 2);
    }
    let file = dir.join("plans.jsonl");
    let text = fs::read_to_string(&file).unwrap();
    // Simulate a crash mid-write: the tail record loses its second half
    // (including the newline).
    let keep = text.len() - text.lines().last().unwrap().len() / 2 - 1;
    fs::write(&file, &text.as_bytes()[..keep]).unwrap();

    let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    let report = cache.load_report();
    assert_eq!(
        (report.loaded, report.quarantined),
        (1, 1),
        "one record survives, the torn tail is quarantined"
    );
    assert!(dir.join("plans.jsonl.quarantine").exists());
    // Re-planning the lost request is bit-identical to an uncached run.
    let served = serve_with_cache(&alexnet, &array, &cache);
    let fresh = Planner::builder(&alexnet, &array)
        .levels(2)
        .build()
        .unwrap()
        .plan(Strategy::AccPar)
        .unwrap();
    assert_eq!(served.plan(), fresh.plan());
    assert_eq!(served.modeled_cost().to_bits(), fresh.modeled_cost().to_bits());
    // The rewrite healed the file: a third open sees only clean records.
    let healed = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    assert_eq!(healed.load_report().quarantined, 0);
    assert_eq!(healed.load_report().loaded, 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn degraded_array_demotes_the_hit_to_a_never_worse_replan() {
    let (network, array) = setup();
    let dir = cache_dir("demote");
    let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    let healthy = serve_with_cache(&network, &array, &cache);

    let faults = FaultModel::new()
        .slow_leaf(0, 0.5)
        .unwrap()
        .degrade_cut(1, 0.25)
        .unwrap();
    let config = ServeConfig {
        cache: Some(Arc::clone(&cache)),
        ..ServeConfig::default()
    };
    let requests = vec![PlanRequest::new(&network, &array).levels(2).faults(&faults)];
    let degraded = plan_many(&requests, &config)
        .remove(0)
        .expect("faulted request plans")
        .into_planned();

    assert_eq!(cache.stats().demotions, 1, "{:?}", cache.stats());
    // Never-worse: the demoted plan on degraded hardware is at most the
    // stale healthy plan's degraded step time.
    let view = network.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let stale = Simulator::new(SimConfig::cost_model_aligned())
        .simulate(&view, healthy.plan(), &tree, Some(&faults))
        .unwrap();
    assert!(
        degraded.modeled_cost() <= stale.total_secs * (1.0 + 1e-9),
        "demoted plan {} must not be worse than the stale plan {}",
        degraded.modeled_cost(),
        stale.total_secs
    );
    // The healthy record stays cached for healthy requests.
    serve_with_cache(&network, &array, &cache);
    assert!(cache.stats().hits >= 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_record_is_evicted_and_replanned() {
    let (network, array) = setup();
    let dir = cache_dir("poison");
    let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    let truth = serve_with_cache(&network, &array, &cache);

    // Semantic corruption with a valid checksum: re-admit the record
    // with a cost the simulator cannot reproduce. The per-record
    // checksum passes (the record is honestly persisted), so only the
    // BSP simulation cross-check can catch it.
    let stored: PlanRecord = {
        let records = cache.records();
        assert_eq!(records.len(), 1);
        records.into_iter().next().unwrap()
    };
    let mut poisoned = stored.clone();
    poisoned.cost = stored.cost * 2.0 + 1.0;
    cache.insert(poisoned);
    drop(cache);
    let key = stored.key;

    let reopened = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
    assert!(reopened.peek(&key).is_some(), "poisoned record persisted");
    let served = serve_with_cache(&network, &array, &reopened);
    let stats = reopened.stats();
    assert_eq!(stats.poisoned, 1, "{stats:?}");
    assert_eq!(served.plan(), truth.plan(), "poisoning must not change the served plan");
    assert_eq!(served.modeled_cost().to_bits(), truth.modeled_cost().to_bits());
    // The poisoned record was evicted and replaced by the fresh plan.
    let healed = reopened.peek(&key).expect("re-admitted after replan");
    assert!((healed.cost - truth.modeled_cost()).abs() <= POISON_TOLERANCE);
    let _ = fs::remove_dir_all(&dir);
}

/// Cross-path round trip: the fingerprint's structure lane hashes the
/// *canonical class multiset* of the view — never the traversal the
/// search will use — so a record written by the uncollapsed planner
/// validates and hits from the collapsed planner, and vice versa. A
/// repeated-block transformer maximizes the difference between the two
/// paths' internal traversals.
#[test]
fn cache_entries_round_trip_across_collapse_paths() {
    let network = zoo::bert_base(4, 32).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let dir = cache_dir("crosspath");
    for (writer_iso, reader_iso) in [(false, true), (true, false)] {
        let _ = fs::remove_dir_all(&dir);
        let cache = Arc::new(PlanCache::open(&dir, 64, Obs::off()));
        let plan_with = |iso: bool| {
            Planner::builder(&network, &array)
                .levels(2)
                .iso(iso)
                .plan_cache(Arc::clone(&cache))
                .build()
                .expect("planner builds")
                .plan_with_budget_cached(Strategy::AccPar, &Budget::unlimited())
                .expect("network plans")
        };
        let (cold, cold_outcome) = plan_with(writer_iso);
        assert_eq!(cold_outcome, CacheOutcome::Miss);
        let (warm, warm_outcome) = plan_with(reader_iso);
        assert_eq!(
            warm_outcome,
            CacheOutcome::Hit,
            "record written with iso={writer_iso} must hit from iso={reader_iso}"
        );
        assert_eq!(cold.planned().plan(), warm.planned().plan());
        assert_eq!(
            cold.planned().modeled_cost().to_bits(),
            warm.planned().modeled_cost().to_bits(),
            "the cross-path hit must serve a bit-identical cost"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn io_failure_degrades_to_memory_only_serving() {
    let (network, array) = setup();
    // /proc is not writable: open degrades instead of panicking.
    let cache = Arc::new(PlanCache::open(
        std::path::Path::new("/proc/accpar-no-such-dir/cache"),
        16,
        Obs::off(),
    ));
    assert!(!cache.persistent());
    let first = serve_with_cache(&network, &array, &cache);
    let second = serve_with_cache(&network, &array, &cache);
    assert_eq!(cache.stats().hits, 1, "memory-only serving still caches");
    assert!(cache.stats().io_errors >= 1);
    assert_eq!(first.plan(), second.plan());
}
