//! The isomorphism differential battery: collapsed planning
//! (`PlannerBuilder::iso(true)`, the default) must be **bit-identical**
//! to uncollapsed planning on every input — the collapse is an
//! optimization of how the DP traverses the level, never of what it
//! computes. Every test here plans the same request twice, once per
//! path, and compares the full `PlanTree` for equality plus the modeled
//! cost for f64 bit equality.
//!
//! Coverage: the whole evaluation zoo (including the deep synthetic
//! stacks and GPT-2 XL), random repeated-block graphs (the collapse's
//! best case and therefore its riskiest), serial vs parallel searches,
//! armed budgets with partial outcomes, and fault-driven replanning.

use accpar::prelude::*;
use std::sync::Arc;

mod common;

/// Plans `network` through both paths and returns (uncollapsed,
/// collapsed).
fn plan_pair(
    network: &Network,
    array: &AcceleratorArray,
    levels: usize,
    threads: usize,
) -> (PlannedNetwork, PlannedNetwork) {
    let run = |iso: bool| {
        Planner::builder(network, array)
            .levels(levels)
            .threads(threads)
            .caching(false)
            .iso(iso)
            .build()
            .expect("planner builds")
            .plan(Strategy::AccPar)
            .expect("network plans")
    };
    (run(false), run(true))
}

fn assert_bit_identical(off: &PlannedNetwork, on: &PlannedNetwork, what: &str) {
    assert_eq!(
        off.plan(),
        on.plan(),
        "{what}: collapsed plan tree diverged from uncollapsed"
    );
    assert_eq!(
        off.modeled_cost().to_bits(),
        on.modeled_cost().to_bits(),
        "{what}: collapsed cost {} != uncollapsed cost {}",
        on.modeled_cost(),
        off.modeled_cost()
    );
}

/// Every zoo network — CNNs, transformers, and the synthetic deep
/// stacks — plans bit-identically with the collapse on and off.
#[test]
fn every_zoo_network_plans_bit_identically_under_collapse() {
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    for name in zoo::EVALUATION_NAMES {
        let network = zoo::by_name(name, 16).expect("zoo network");
        let (off, on) = plan_pair(&network, &array, 2, 1);
        assert_bit_identical(&off, &on, name);
    }
}

/// The deep-stack sweep is not vacuous: on a 48-block stack the
/// collapse must actually stamp rows (the `iso.stamped_rows` counter is
/// live), and the result still matches the uncollapsed path bit for
/// bit.
#[test]
fn deep_stack_collapse_engages_and_stays_bit_identical() {
    let network = zoo::by_name("deep48", 8).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let collector = Arc::new(Collector::new());
    let obs = Obs::new(Arc::clone(&collector));
    let on = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .caching(false)
        .obs(obs.clone())
        .build()
        .expect("planner builds")
        .plan(Strategy::AccPar)
        .expect("network plans");
    obs.emit_metrics();
    let snap = collector.last_metrics().expect("metrics emitted");
    assert!(
        snap.counter("iso.stamped_rows") > 0,
        "deep48 must exercise the collapse (stamped {} rows)",
        snap.counter("iso.stamped_rows")
    );
    let off = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .caching(false)
        .iso(false)
        .build()
        .expect("planner builds")
        .plan(Strategy::AccPar)
        .expect("network plans");
    assert_bit_identical(&off, &on, "deep48");
}

/// Satellite property test: a random encoder block repeated `N ∈ 1..=32`
/// times plans bit-identically through four paths — uncollapsed and
/// collapsed, serial and parallel. The repeated-block family is the
/// collapse's best case (everything merges), so any stamping or
/// sharing bug shows up here first.
#[test]
fn random_repeated_blocks_plan_bit_identically() {
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let mut g = common::Gen(0x15011355);
    for case in 0..12 {
        let (network, blocks) = common::random_repeated_blocks(&mut g);
        let what = format!("case {case} ({blocks} blocks)");
        let (off, on) = plan_pair(&network, &array, 2, 1);
        assert_bit_identical(&off, &on, &format!("{what} serial"));
        let (off_par, on_par) = plan_pair(&network, &array, 2, 8);
        assert_bit_identical(&off_par, &on_par, &format!("{what} parallel"));
        // Thread count is not allowed to matter either way.
        assert_bit_identical(&off, &off_par, &format!("{what} uncollapsed threads"));
        assert_bit_identical(&on, &on_par, &format!("{what} collapsed threads"));
    }
}

/// Walks `tree` against the unbudgeted reference: every level is either
/// the reference level (solved before the budget ran out) or the
/// uniform data-parallel fallback. Returns how many levels matched the
/// reference.
fn assert_solved_or_fallback(tree: &PlanTree, reference: &PlanTree, what: &str) -> usize {
    let fallback = NetworkPlan::uniform(reference.plan().len(), LayerPlan::data_parallel());
    let mut solved = 0;
    let mut stack = vec![(tree, reference)];
    while let Some((node, ref_node)) = stack.pop() {
        if node.plan() == ref_node.plan() {
            solved += 1;
        } else {
            assert_eq!(
                node.plan(),
                &fallback,
                "{what}: a budget-stopped level must be the data-parallel fallback"
            );
        }
        match (node.children(), ref_node.children()) {
            (Some((a, b)), Some((ra, rb))) => {
                stack.push((a, ra));
                stack.push((b, rb));
            }
            (None, None) => {}
            _ => panic!("{what}: budgeted tree changed shape"),
        }
    }
    solved
}

/// Armed node budgets: at every rung of a budget ladder, both paths
/// produce a partial plan whose solved levels agree with the unbudgeted
/// reference level-by-level (unsolved levels are the fallback), and the
/// collapsed path — which charges the budget once per equivalence
/// *class* — never solves fewer levels than the uncollapsed one. At the
/// ladder's ends (zero and effectively-unlimited) the two paths are
/// bit-identical outright.
#[test]
fn armed_budgets_agree_level_by_level() {
    let network = common::random_encoder(&mut common::Gen(0xb0d9e7), 8);
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let (reference, reference_on) = plan_pair(&network, &array, 2, 1);
    assert_bit_identical(&reference, &reference_on, "unbudgeted reference");

    let planner = |iso: bool| {
        Planner::builder(&network, &array)
            .levels(2)
            .threads(1)
            .caching(false)
            .iso(iso)
            .build()
            .expect("planner builds")
    };
    for cap in [0, 1, 2, 3, 5, 8, 13, 1_000_000] {
        let budget = || Budget::unlimited().max_nodes(cap);
        let off = planner(false)
            .plan_with_budget(Strategy::AccPar, &budget())
            .expect("uncollapsed budgeted plan");
        let on = planner(true)
            .plan_with_budget(Strategy::AccPar, &budget())
            .expect("collapsed budgeted plan");
        let solved_off = assert_solved_or_fallback(
            off.planned().plan(),
            reference.plan(),
            &format!("cap {cap} uncollapsed"),
        );
        let solved_on = assert_solved_or_fallback(
            on.planned().plan(),
            reference.plan(),
            &format!("cap {cap} collapsed"),
        );
        assert!(
            solved_on >= solved_off,
            "cap {cap}: collapsed path solved {solved_on} levels, \
             uncollapsed {solved_off} — the per-class charge can only stretch a budget"
        );
        assert!(
            on.completeness() >= off.completeness(),
            "cap {cap}: completeness regressed under collapse"
        );
        if cap == 0 || cap == 1_000_000 {
            assert_bit_identical(
                off.planned(),
                on.planned(),
                &format!("cap {cap} boundary"),
            );
        }
    }
}

/// Fault-driven replanning is bit-identical under collapse: the same
/// degraded array, the same warm-start, the same adopted plan and
/// degraded step time, whether the replanner's inner searches collapse
/// or not.
#[test]
fn fault_replans_are_bit_identical_under_collapse() {
    let network = zoo::bert_base(8, 64).expect("zoo network");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let faults = FaultModel::with_seed(7)
        .slow_leaf(0, 0.5)
        .unwrap()
        .degrade_cut(1, 0.25)
        .unwrap();
    let run = |iso: bool| {
        let planner = Planner::builder(&network, &array)
            .levels(2)
            .threads(1)
            .caching(false)
            .iso(iso)
            .build()
            .expect("planner builds");
        let planned = planner.plan(Strategy::AccPar).expect("healthy plan");
        planner.replan(&planned, &faults).expect("replan succeeds")
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.plan, on.plan, "replan adopted different plans");
    assert_eq!(off.replanned, on.replanned);
    assert_eq!(
        off.degraded_secs.to_bits(),
        on.degraded_secs.to_bits(),
        "replan degraded step time diverged"
    );
    assert_eq!(off.nominal_secs.to_bits(), on.nominal_secs.to_bits());
    assert_eq!(off.deltas, on.deltas);
}

/// A fault splits exactly the equivalence classes of the levels it
/// touches. The class key folds in the pair environment, so on the
/// degraded tree every layer key of a touched level moves (the level's
/// rows may no longer be shared with the healthy run), while an
/// untouched level's keys are unchanged — its memoized rows stay valid.
/// And the replan adopting those re-split classes is never worse than
/// the stale plan on the degraded hardware.
#[test]
fn fault_replan_splits_only_touched_classes() {
    use accpar::core::{level_class_keys, SearchConfig};
    use accpar::cost::PairEnv;

    let network = zoo::bert_base(8, 64).expect("zoo network");
    let view = network.train_view().expect("train view");
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let tree = GroupTree::bisect(&array, 2).expect("bisection");
    // One slow board under the root's left child; the right child's
    // subtree never sees it.
    let faults = FaultModel::new().slow_leaf(0, 0.5).unwrap();
    let degraded = tree.degraded(&faults).expect("degraded tree");

    let model = CostModel::new(CostConfig::default());
    let config = SearchConfig::accpar();
    let keys_at = |node: &accpar::hw::GroupNode| {
        let env = PairEnv::from_node(node).expect("internal node");
        level_class_keys(&view, &model, &config, &env, None)
    };

    let (left, right) = tree.root().children().expect("two levels");
    let (dleft, dright) = degraded.root().children().expect("two levels");
    // Touched levels: the root (its left group lost compute) and the
    // left child (its own left leaf slowed). Every layer's class key
    // moves — the environment is part of the key.
    for (nominal, faulted, what) in [
        (keys_at(tree.root()), keys_at(degraded.root()), "root"),
        (keys_at(left), keys_at(dleft), "touched child"),
    ] {
        assert_eq!(nominal.len(), faulted.len());
        assert!(
            nominal.iter().zip(&faulted).all(|(a, b)| a != b),
            "{what}: a fault-touched level must re-split its classes"
        );
    }
    // Untouched level: bit-for-bit the same keys, so nothing re-splits.
    assert_eq!(
        keys_at(right),
        keys_at(dright),
        "a level the fault cannot see must keep its classes"
    );

    // And the adopted plan is never worse than the stale one.
    let planner = Planner::builder(&network, &array)
        .levels(2)
        .threads(1)
        .build()
        .expect("planner builds");
    let planned = planner.plan(Strategy::AccPar).expect("healthy plan");
    let outcome = planner.replan(&planned, &faults).expect("replan succeeds");
    let stale = outcome
        .degraded_old_secs
        .expect("slow-leaf keeps the old plan runnable");
    assert!(
        outcome.degraded_secs <= stale * (1.0 + 1e-9),
        "replan {} must not be worse than the stale plan {}",
        outcome.degraded_secs,
        stale
    );
}
