//! Integration tests for the extensions beyond the paper: GoogLeNet
//! (Concat multi-path), memory-footprint analysis, and the optimizer
//! update phase.

use accpar::partition::PartitionType;
use accpar::prelude::*;
use accpar::sim::{memory_report, Optimizer};

#[test]
fn googlenet_plans_under_every_strategy() {
    // Paper-scale array: AccPar's wins need hierarchy depth (see
    // tests/flexibility.rs for the same note).
    let net = zoo::googlenet(512).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let planner = Planner::builder(&net, &array).sim_config(SimConfig::default()).build().unwrap();
    let mut costs = Vec::new();
    for s in Strategy::ALL {
        let planned = planner.plan(s).unwrap();
        assert!(planned.modeled_cost() > 0.0, "{s}");
        costs.push(planned.modeled_cost());
    }
    // AccPar wins on the inception topology too.
    let accpar = costs[3];
    assert!(
        costs[..3].iter().all(|&c| accpar <= c * (1.0 + 1e-9)),
        "{costs:?}"
    );
}

#[test]
fn concat_exit_edges_use_branch_slices() {
    // GoogLeNet's first inception module concatenates 64+128+32+32
    // channels; its four exit edges must carry the slice sizes, not
    // four copies of the full 256-channel tensor.
    let net = zoo::googlenet(2).unwrap();
    let view = net.train_view().unwrap();
    let edges = view.conversion_edges();
    // Edges into the consumers of module 3a (the first block): the
    // boundary of each is bounded by its producer's output.
    let total: u64 = edges.iter().map(|e| e.boundary_elems).sum();
    assert!(total > 0);
    for e in &edges {
        let producer_out = view
            .layers()
            .find(|l| l.index() == e.from)
            .unwrap()
            .out_fmap()
            .size();
        assert!(e.boundary_elems <= producer_out, "{e:?}");
    }
}

#[test]
fn memory_feasibility_via_public_api() {
    // VGG-16 with Adam on a 4-board array at small batch (so that
    // weight state, not activations, dominates the footprint): the
    // data-parallel replica costs ~1.1 GB of optimizer+weight state per
    // leaf; model partitioning (Type-II everywhere) shards it.
    use accpar::partition::{HierPlan, LayerPlan, NetworkPlan, Ratio};
    let net = zoo::vgg16(32).unwrap();
    let view = net.train_view().unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let planner = Planner::builder(&net, &array).levels(2).build().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();

    let dp = planner.plan(Strategy::DataParallel).unwrap();
    let config = SimConfig::default();
    let dp_mem = memory_report(&view, dp.plan(), &tree, &config, Optimizer::Adam).unwrap();
    let mp_plan = HierPlan::new(vec![
        NetworkPlan::uniform(
            view.weighted_len(),
            LayerPlan::new(PartitionType::TypeII, Ratio::EQUAL),
        );
        2
    ])
    .to_tree();
    let mp_mem = memory_report(&view, &mp_plan, &tree, &config, Optimizer::Adam).unwrap();

    assert!(dp_mem.fits() && mp_mem.fits());
    // DP replicates all 138M parameters (×4 with Adam) on every leaf.
    let replica_bytes = 4.0 * 138_344_128.0 * 2.0;
    assert!(dp_mem.peak_bytes() > replica_bytes);
    // Type-II shards every weight in four: far smaller weight state.
    assert!(mp_mem.peak_bytes() < 0.6 * dp_mem.peak_bytes());
}

#[test]
fn update_phase_scales_with_model_size() {
    let array = AcceleratorArray::homogeneous_tpu_v3(2);
    let update_secs = |name: &str| {
        let net = zoo::by_name(name, 64).unwrap();
        Planner::builder(&net, &array)
            .levels(1)
            .sim_config(SimConfig {
                update: Some(Optimizer::Adam),
                ..SimConfig::default()
            }).build().unwrap()
            .plan(Strategy::DataParallel)
            .unwrap()
            .report()
            .update_secs
    };
    // VGG-16 has ~12x the parameters of ResNet-18: its update phase must
    // be correspondingly heavier.
    let vgg = update_secs("vgg16");
    let resnet = update_secs("resnet18");
    assert!(vgg > 5.0 * resnet, "vgg {vgg} vs resnet {resnet}");
}

#[test]
fn model_partitioning_shrinks_update_time() {
    // Under Type-II/III the weight shards shrink, so each leaf updates
    // fewer parameters than under replicated Type-I.
    let net = zoo::vgg16(64).unwrap();
    let array = AcceleratorArray::homogeneous_tpu_v3(4);
    let sim_config = SimConfig {
        update: Some(Optimizer::Momentum),
        ..SimConfig::default()
    };
    let planner = Planner::builder(&net, &array).sim_config(sim_config).build().unwrap();
    let dp = planner.plan(Strategy::DataParallel).unwrap();
    let accpar = planner.plan(Strategy::AccPar).unwrap();
    assert!(accpar.plan().count(PartitionType::TypeII) + accpar.plan().count(PartitionType::TypeIII) > 0);
    assert!(accpar.report().update_secs < dp.report().update_secs);
}

#[test]
fn trace_codec_round_trips_a_real_layer_trace() {
    use accpar::partition::{Phase, ShardScales};
    use accpar::sim::trace::phase_segments;
    use accpar::sim::tracefile::{decode_segments, encode_segments};

    let net = zoo::alexnet(32).unwrap();
    let view = net.train_view().unwrap();
    for layer in view.layers() {
        for phase in Phase::ALL {
            let segs = phase_segments(layer, phase, ShardScales::full());
            let decoded = decode_segments(encode_segments(&segs)).unwrap();
            assert_eq!(decoded, segs, "{} {phase}", layer.name());
        }
    }
}

#[test]
fn plan_within_memory_repairs_replication() {
    // A small-HBM fleet where VGG-16's replicated Adam state does not
    // fit: the planner's repair shards it and the result simulates.
    let spec = AcceleratorSpec::new("small-hbm", 10e12, 768 << 20, 100e9, 1e9, 2, 10e9).unwrap();
    let array = AcceleratorArray::homogeneous(spec, 4);
    let net = zoo::vgg16(8).unwrap();
    let planner = Planner::builder(&net, &array).levels(2).build().unwrap();

    let repaired = planner
        .plan_within_memory(Strategy::DataParallel, Optimizer::Adam)
        .unwrap();
    assert!(repaired.plan().count(PartitionType::TypeII) > 0);
    assert!(repaired.modeled_cost() > 0.0);

    let view = net.train_view().unwrap();
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let report = memory_report(
        &view,
        repaired.plan(),
        &tree,
        &SimConfig::default(),
        Optimizer::Adam,
    )
    .unwrap();
    assert!(report.fits(), "{report}");
}

#[test]
fn des_backend_is_reachable_from_the_facade() {
    use accpar::sim::simulate_des;
    let net = zoo::lenet(64).unwrap();
    let view = net.train_view().unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let tree = GroupTree::bisect(&array, 2).unwrap();
    let planned = Planner::builder(&net, &array)
        .levels(2).build().unwrap()
        .plan(Strategy::AccPar)
        .unwrap();
    let des = simulate_des(&SimConfig::default(), &view, planned.plan(), &tree, None).unwrap();
    assert!(des.total_secs > 0.0);
    assert!(des.total_secs <= planned.report().total_secs * 1.5);
}
