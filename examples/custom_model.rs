//! Bring your own model and hardware: build a custom network with
//! [`NetworkBuilder`] (or a DAG via `LayerGraph`), describe a custom
//! accelerator, and plan.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use accpar::dnn::graph::LayerGraph;
use accpar::dnn::Layer;
use accpar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A custom transformer-feeder-style MLP via the builder ---------
    let mlp = NetworkBuilder::new("wide-mlp", FeatureShape::fc(1024, 2048))
        .linear("up", 2048, 8192)
        .relu("act")
        .dropout("drop")
        .linear("down", 8192, 2048)
        .linear("head", 2048, 512)
        .build()?;
    println!("built `{}`: {}", mlp.name(), mlp.stats());

    // --- The same residual cell expressed as a DAG ---------------------
    let mut g = LayerGraph::new();
    let stem = g.add_layer(Layer::conv2d("stem", 3, 32, ConvGeometry::same(3)));
    let a = g.add_layer(Layer::conv2d("a", 32, 32, ConvGeometry::same(3)));
    let b = g.add_layer(Layer::conv2d("b", 32, 32, ConvGeometry::same(3)));
    let head = g.add_layer(Layer::conv2d("head", 32, 32, ConvGeometry::same(3)));
    g.add_edge(stem, a)?;
    g.add_edge(a, b)?;
    g.add_edge(b, head)?;
    g.add_edge(stem, head)?; // identity shortcut
    let cell = g.into_network("res-cell", FeatureShape::conv(256, 3, 32, 32))?;
    println!("built `{}` from a DAG: {}", cell.name(), cell.stats());

    // --- Custom heterogeneous hardware ---------------------------------
    // An imaginary mixed cluster: old 100-TFLOPS boards next to new
    // 500-TFLOPS boards with 4x the network bandwidth.
    let old = AcceleratorSpec::new("old-gen", 100e12, 32 << 30, 1200e9, 0.5e9, 4, 50e9)?;
    let new = AcceleratorSpec::new("new-gen", 500e12, 96 << 30, 3600e9, 2.0e9, 4, 150e9)?;
    let mut boards = vec![old; 8];
    boards.extend(vec![new; 8]);
    let array = AcceleratorArray::new(boards);
    println!("array: {array}\n");

    for network in [&mlp, &cell] {
        let planner = Planner::builder(network, &array).sim_config(SimConfig::default()).build().unwrap();
        let dp = planner.plan(Strategy::DataParallel)?;
        let accpar = planner.plan(Strategy::AccPar)?;
        println!(
            "{:<10} DP {:9.3} ms  AccPar {:9.3} ms  ({:.2}x)  plan {}",
            network.name(),
            dp.modeled_cost() * 1e3,
            accpar.modeled_cost() * 1e3,
            dp.modeled_cost() / accpar.modeled_cost(),
            accpar.plan().plan().type_string()
        );
    }

    // Per-layer ratios show the heterogeneity awareness: the old half
    // receives well under half of each layer.
    let planned = Planner::builder(&mlp, &array)
        .sim_config(SimConfig::default()).build().unwrap()
        .plan(Strategy::AccPar)?;
    println!("\nper-layer ratios for the old-gen half (top level):");
    for (i, layer_plan) in planned.plan().plan().layers().iter().enumerate() {
        println!("  L{i}: {layer_plan}");
    }
    Ok(())
}
