//! The semantics oracle: run partitioned training *numerically* on two
//! virtual devices and watch the paper's Figure 1 semantics hold — the
//! results equal the unpartitioned reference and every byte of
//! communication matches Tables 4 and 5.
//!
//! ```sh
//! cargo run --release --example semantics_oracle
//! ```

use accpar::exec::{partitioned, reference, LayerSpec, StepSpec};
use accpar::partition::PartitionType;

fn main() {
    // A three-layer MLP with one layer of each partition type and
    // deliberately unequal splits (device 0 gets the leading slice).
    let spec = StepSpec::new(
        8,
        vec![
            LayerSpec::new(12, 10, PartitionType::TypeI, 3), // batch 3/5 split
            LayerSpec::new(10, 14, PartitionType::TypeII, 4), // D_i 4/6 split
            LayerSpec::new(14, 6, PartitionType::TypeIII, 2), // D_o 2/4 split
        ],
    );

    println!("running the reference (single device)…");
    let want = reference::run(&spec);

    println!("running the same step partitioned across two devices…");
    let (got, meter) = partitioned::run(&spec);

    let ok = want.approx_eq(&got, 1e-9);
    println!(
        "\nresults identical to the reference: {}",
        if ok { "YES" } else { "NO (bug!)" }
    );
    assert!(ok);

    println!("\nmeasured communication ({meter}):");
    println!("{:<8} {:>14} {:>16} {:>16}", "layer", "psum (Table 4)", "F conv (Table 5)", "E conv (Table 5)");
    for l in 0..spec.layers.len() {
        println!(
            "{:<8} {:>6} / {:<6} {:>7} / {:<7} {:>7} / {:<7}",
            format!("L{l} ({})", spec.layers[l].ptype),
            meter.intra[l][0],
            meter.intra[l][1],
            meter.inter_f[l][0],
            meter.inter_f[l][1],
            meter.inter_e[l][0],
            meter.inter_e[l][1],
        );
    }

    println!("\nEvery one of these counts is asserted equal to the analytic");
    println!("cost-model prediction in crates/exec/tests/against_cost_model.rs.");
}
