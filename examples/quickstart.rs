//! Quickstart: plan AlexNet training on a heterogeneous TPU array and
//! compare all four partitioning schemes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use accpar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §6.2 setting, scaled to 8+8 boards for a quick demo:
    // half TPU-v2 (180 TFLOPS, 8 Gb/s) and half TPU-v3 (420 TFLOPS,
    // 16 Gb/s).
    let array = AcceleratorArray::heterogeneous_tpu(8, 8);
    println!("array: {array}");

    let network = zoo::alexnet(512)?;
    println!("network: {}", network.stats());

    let planner = Planner::builder(&network, &array).sim_config(SimConfig::default()).build().unwrap();
    println!("hierarchy levels: {}\n", planner.levels());

    let mut baseline_ms = None;
    for strategy in Strategy::ALL {
        let planned = planner.plan(strategy)?;
        let ms = planned.modeled_cost() * 1e3;
        let baseline = *baseline_ms.get_or_insert(ms);
        println!(
            "{:>6}: {:8.2} ms/step  speedup {:5.2}x   top-level plan {}",
            strategy.to_string(),
            ms,
            baseline / ms,
            planned.plan().plan().type_string()
        );
    }

    println!(
        "\nLegend: I = Type-I (batch), 2 = Type-II (input dim), 3 = Type-III (output dim)."
    );
    println!("AccPar additionally tilts each layer's ratio toward the faster half.");
    Ok(())
}
