//! Hierarchy scalability (Figure 8): sweep the bisection depth on VGG-19
//! and watch OWT/HyPar saturate while AccPar keeps improving.
//!
//! ```sh
//! cargo run --release --example hierarchy_sweep
//! ```

use accpar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = AcceleratorArray::heterogeneous_tpu(32, 32);
    let network = zoo::vgg19(512)?;
    println!("{} on {array}", network.name());
    println!("{:<4} {:>8} {:>8} {:>8} {:>8}", "h", "DP", "OWT", "HyPar", "AccPar");

    let max_levels = 8.min(array.max_levels());
    for levels in 1..=max_levels {
        let planner = Planner::builder(&network, &array)
            .levels(levels)
            .sim_config(SimConfig::default()).build().unwrap();
        let mut speedups = Vec::new();
        let mut dp_ms = 0.0;
        for (i, strategy) in Strategy::ALL.iter().enumerate() {
            let planned = planner.plan(*strategy)?;
            let ms = planned.modeled_cost() * 1e3;
            if i == 0 {
                dp_ms = ms;
            }
            speedups.push(dp_ms / ms);
        }
        println!(
            "{:<4} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x",
            levels, speedups[0], speedups[1], speedups[2], speedups[3]
        );
    }

    println!("\nDeeper hierarchies partition tensors at finer grain; only AccPar's");
    println!("complete, scale-aware search keeps converting that into speedup (§6.4).");
    Ok(())
}
