//! Drive the trace-based simulator directly: craft a hierarchical plan by
//! hand, simulate one training step, and inspect the per-layer breakdown.
//!
//! ```sh
//! cargo run --release --example simulate_step
//! ```

use accpar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::vgg11(256)?;
    let view = network.train_view()?;
    let array = AcceleratorArray::heterogeneous_tpu(4, 4);
    let tree = GroupTree::bisect(&array, 3)?;

    // A hand-written two-phase plan: batch-partition the convolutions,
    // output-partition the classifier (roughly OWT with Type-III FCs),
    // with a 30/70 tilt at the top (v2/v3) cut and equal splits below.
    let top: NetworkPlan = view
        .layers()
        .map(|layer| {
            let ptype = if layer.kind().is_conv() {
                PartitionType::TypeI
            } else {
                PartitionType::TypeIII
            };
            LayerPlan::new(ptype, Ratio::new(0.3).expect("valid ratio"))
        })
        .collect();
    let inner = NetworkPlan::uniform(view.weighted_len(), LayerPlan::data_parallel());
    let plan = HierPlan::new(vec![top, inner.clone(), inner]).to_tree();

    let sim = Simulator::new(SimConfig::default());
    let report = sim.simulate(&view, &plan, &tree, None)?;

    println!("simulated one training step of {}:", network.name());
    println!("  {report}");
    println!(
        "  throughput {:.1} steps/s, communication fraction {:.1}%\n",
        report.steps_per_sec().unwrap_or(0.0),
        report.comm_fraction() * 100.0
    );

    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "layer", "compute ms", "psum ms", "convert ms"
    );
    let mut layers: Vec<_> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    for (layer, lb) in layers.iter().zip(&report.per_layer) {
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>12.4}",
            layer.name(),
            lb.compute_secs * 1e3,
            lb.psum_secs * 1e3,
            lb.conversion_secs * 1e3
        );
    }

    // Compare against the planner's best effort on the same hardware.
    let best = Planner::builder(&network, &array)
        .levels(3)
        .sim_config(SimConfig::default()).build().unwrap()
        .plan(Strategy::AccPar)?;
    println!(
        "\nhand-written plan: {:.3} ms — AccPar search: {:.3} ms",
        report.total_secs * 1e3,
        best.modeled_cost() * 1e3
    );
    Ok(())
}
