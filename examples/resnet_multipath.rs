//! Multi-path partitioning (§5.2): plan a ResNet, whose residual blocks
//! fork the trunk into parallel paths — the topology prior searches
//! could not handle.
//!
//! ```sh
//! cargo run --release --example resnet_multipath
//! ```

use accpar::dnn::TrainElem;
use accpar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::resnet18(512)?;
    let view = network.train_view()?;
    println!("{}: {}", network.name(), network.stats());

    // Show the series-parallel structure the search walks.
    let blocks = view
        .elems()
        .iter()
        .filter(|e| matches!(e, TrainElem::Block { .. }))
        .count();
    println!(
        "{} weighted layers in {} trunk elements ({} residual blocks)\n",
        view.weighted_len(),
        view.elems().len(),
        blocks
    );

    let array = AcceleratorArray::heterogeneous_tpu(64, 64);
    let planner = Planner::builder(&network, &array).sim_config(SimConfig::default()).build().unwrap();

    let dp = planner.plan(Strategy::DataParallel)?;
    let hypar = planner.plan(Strategy::HyPar)?;
    let accpar = planner.plan(Strategy::AccPar)?;

    println!("DP     {:8.2} ms/step", dp.modeled_cost() * 1e3);
    println!(
        "HyPar  {:8.2} ms/step ({:.2}x) — linear-structure search, equal ratios",
        hypar.modeled_cost() * 1e3,
        dp.modeled_cost() / hypar.modeled_cost()
    );
    println!(
        "AccPar {:8.2} ms/step ({:.2}x) — multi-path search, flexible ratios",
        accpar.modeled_cost() * 1e3,
        dp.modeled_cost() / accpar.modeled_cost()
    );

    // Where do AccPar's gains come from on ResNet? Mostly from flipping
    // deep hierarchy levels away from Type-I: the weight tensor does not
    // shrink under data parallelism, so its gradient partial sums
    // dominate the deepest (narrowest) cuts.
    println!("\nper-layer type selections across all {} bisections:", accpar.plan().depth());
    let counts = accpar.plan().per_layer_type_counts();
    let layers: Vec<_> = {
        let mut v: Vec<_> = view.layers().collect();
        v.sort_by_key(|l| l.index());
        v
    };
    for (layer, c) in layers.iter().zip(&counts).take(6) {
        println!("  {:<12} I={:<3} II={:<3} III={:<3}", layer.name(), c[0], c[1], c[2]);
    }
    println!("  ... ({} more layers)", counts.len().saturating_sub(6));
    Ok(())
}
