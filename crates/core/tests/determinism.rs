//! Bit-identity of the parallel, memoized planning engine.
//!
//! The perf PR's contract: thread budget and caching are *performance*
//! knobs — at any combination the planner must produce the exact plan
//! and the exact cost bits of the serial, cache-free engine.

use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, FaultModel};

/// Baseline engine: one thread, no memo — the pre-optimization path.
fn baseline<'a>(
    net: &'a accpar_dnn::Network,
    array: &'a AcceleratorArray,
) -> Planner<'a> {
    Planner::builder(net, array).threads(1).caching(false).build().unwrap()
}

#[test]
fn parallel_and_cached_plans_are_bit_identical_across_the_zoo() {
    let array = AcceleratorArray::heterogeneous_tpu(4, 4);
    for name in zoo::EVALUATION_NAMES {
        let net = zoo::by_name(name, 128).unwrap();
        let reference = baseline(&net, &array).plan(Strategy::AccPar).unwrap();
        for (threads, caching) in [(1, true), (2, true), (8, true), (4, false)] {
            let planned = Planner::builder(&net, &array)
                .threads(threads)
                .caching(caching).build().unwrap()
                .plan(Strategy::AccPar)
                .unwrap();
            assert_eq!(
                planned.plan(),
                reference.plan(),
                "{name}: plan diverged at threads={threads} caching={caching}"
            );
            assert_eq!(
                planned.modeled_cost().to_bits(),
                reference.modeled_cost().to_bits(),
                "{name}: cost bits diverged at threads={threads} caching={caching}"
            );
        }
    }
}

#[test]
fn plan_all_is_bit_identical_in_parallel() {
    let net = zoo::alexnet(256).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(4, 4);
    let reference = baseline(&net, &array).plan_all().unwrap();
    let parallel = Planner::builder(&net, &array)
        .threads(8).build().unwrap()
        .plan_all()
        .unwrap();
    assert_eq!(parallel.len(), reference.len());
    for (p, r) in parallel.iter().zip(&reference) {
        assert_eq!(p.strategy(), r.strategy());
        assert_eq!(p.plan(), r.plan(), "{}", r.strategy());
        assert_eq!(
            p.modeled_cost().to_bits(),
            r.modeled_cost().to_bits(),
            "{}",
            r.strategy()
        );
    }
}

#[test]
fn replan_is_bit_identical_in_parallel_and_with_shared_cache() {
    let net = zoo::resnet18(128).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(4, 4);
    let faults = FaultModel::with_seed(11)
        .slow_leaf(0, 0.5)
        .unwrap()
        .degrade_cut(1, 0.25)
        .unwrap()
        .drop_leaf(3);

    let ref_planner = baseline(&net, &array);
    let ref_planned = ref_planner.plan(Strategy::AccPar).unwrap();
    let reference = ref_planner.replan(&ref_planned, &faults).unwrap();

    let planner = Planner::builder(&net, &array).threads(8).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let outcome = planner.replan(&planned, &faults).unwrap();

    assert_eq!(outcome, reference);
}

#[test]
fn vgg16_cache_hit_rate_exceeds_half() {
    // VGG-16's conv stages repeat shape-identical layers, a re-issued
    // plan resolves wholesale from the level memo, and a replan shares
    // cells with the healthy search: most cost cells the engine asks
    // for must come from the memo, not a fresh solve.
    let net = zoo::vgg16(256).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(4, 4);
    let planner = Planner::builder(&net, &array).threads(1).build().unwrap();
    let planned = planner.plan(Strategy::AccPar).unwrap();
    let again = planner.plan(Strategy::AccPar).unwrap();
    assert_eq!(planned, again, "memoized re-plan must be identical");
    let faults = FaultModel::with_seed(3).slow_leaf(0, 0.5).unwrap();
    planner.replan(&planned, &faults).unwrap();

    let stats = planner.cache_stats();
    assert!(
        stats.cells_requested > 0,
        "the planner never consulted the cache: {stats:?}"
    );
    assert!(
        stats.hit_rate() > 0.5,
        "hit rate {:.3} (stats {stats:?})",
        stats.hit_rate()
    );
}

#[test]
fn caching_off_keeps_stats_at_zero() {
    let net = zoo::lenet(64).unwrap();
    let array = AcceleratorArray::heterogeneous_tpu(2, 2);
    let planner = baseline(&net, &array);
    planner.plan(Strategy::AccPar).unwrap();
    let stats = planner.cache_stats();
    assert_eq!(stats.cells_requested, 0);
    assert_eq!(stats.layer_hits + stats.layer_misses, 0);
    assert_eq!(stats.hit_rate(), 0.0);
}
