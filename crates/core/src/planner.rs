use crate::baselines::{data_parallel_plan, hypar_plan, owt_plan};
use crate::cache::{self, CacheOutcome, PlanCache, PlanRecord};
use crate::error::PlanError;
use crate::hierarchy::{plan_node_budgeted, AnytimeReport};
use crate::memo::{CacheStats, SearchCache};
use crate::search::SearchConfig;
use accpar_cost::{CostConfig, CostModel, RatioSolver};
use accpar_dnn::{Network, TrainView};
use accpar_hw::{AcceleratorArray, GroupTree};
use accpar_obs::{Obs, Subscriber};
use accpar_partition::PlanTree;
use accpar_runtime::{Budget, CancelToken, Pool, StopReason};
use accpar_sim::{Optimizer, SimConfig, SimReport, Simulator};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The partitioning schemes compared in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Plain data parallelism — the normalization baseline.
    DataParallel,
    /// "One Weird Trick" (Krizhevsky, 2014).
    Owt,
    /// HyPar (Song et al., HPCA 2019).
    HyPar,
    /// AccPar — this paper.
    AccPar,
}

impl Strategy {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::DataParallel,
        Strategy::Owt,
        Strategy::HyPar,
        Strategy::AccPar,
    ];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::DataParallel => "DP",
            Strategy::Owt => "OWT",
            Strategy::HyPar => "HyPar",
            Strategy::AccPar => "AccPar",
        };
        f.write_str(s)
    }
}

/// A plan produced by [`Planner::plan`], together with its modeled
/// performance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedNetwork {
    strategy: Strategy,
    plan: PlanTree,
    report: SimReport,
}

impl PlannedNetwork {
    /// Which scheme produced the plan.
    #[must_use]
    pub const fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The hierarchical plan.
    #[must_use]
    pub const fn plan(&self) -> &PlanTree {
        &self.plan
    }

    /// The modeled step time in seconds (simulated with the
    /// cost-model-aligned configuration).
    #[must_use]
    pub fn modeled_cost(&self) -> f64 {
        self.report.total_secs
    }

    /// The full simulation report behind [`PlannedNetwork::modeled_cost`].
    #[must_use]
    pub const fn report(&self) -> &SimReport {
        &self.report
    }

    /// In-crate constructor for plans that did not come out of
    /// [`Planner::plan`] directly — validated cache hits and degraded
    /// (replanned) serving results.
    pub(crate) const fn from_parts(strategy: Strategy, plan: PlanTree, report: SimReport) -> Self {
        Self {
            strategy,
            plan,
            report,
        }
    }
}

impl fmt::Display for PlannedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} ms/step\n{}",
            self.strategy,
            self.modeled_cost() * 1e3,
            self.plan
        )
    }
}

/// A plan whose search a [`Budget`] stopped early.
///
/// Levels the walk solved keep their DP-optimal assignments; the rest
/// fell back to the per-layer data-parallel baseline. The plan carried
/// here is additionally **never worse than pure data parallelism**: the
/// planner simulates both and adopts whichever is cheaper (mirroring
/// the `replan` module's never-worse contract).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialPlan {
    planned: PlannedNetwork,
    reason: StopReason,
    solved_levels: usize,
    fallback_levels: usize,
    baseline_adopted: bool,
}

impl PartialPlan {
    /// The best feasible plan found within the budget.
    #[must_use]
    pub const fn planned(&self) -> &PlannedNetwork {
        &self.planned
    }

    /// Why the search stopped.
    #[must_use]
    pub const fn reason(&self) -> StopReason {
        self.reason
    }

    /// Bisection levels solved to DP optimality.
    #[must_use]
    pub const fn solved_levels(&self) -> usize {
        self.solved_levels
    }

    /// Levels that fell back to the data-parallel baseline.
    #[must_use]
    pub const fn fallback_levels(&self) -> usize {
        self.fallback_levels
    }

    /// Fraction of levels solved to DP optimality, in `[0, 1)` for a
    /// partial plan.
    #[must_use]
    pub fn completeness(&self) -> f64 {
        let total = self.solved_levels + self.fallback_levels;
        if total == 0 {
            1.0
        } else {
            self.solved_levels as f64 / total as f64
        }
    }

    /// Whether the pure data-parallel baseline simulated cheaper than
    /// the stitched partial plan and was adopted in its place.
    #[must_use]
    pub const fn baseline_adopted(&self) -> bool {
        self.baseline_adopted
    }
}

/// The result of a budgeted plan: complete, or the best feasible plan
/// the budget allowed.
///
/// With an unlimited budget the outcome is always
/// [`Complete`](PlanOutcome::Complete) and bit-identical to
/// [`Planner::plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutcome {
    /// The search ran to completion; the plan is DP-optimal.
    Complete(PlannedNetwork),
    /// The budget stopped the search; the plan is feasible, stitched
    /// from solved levels plus the data-parallel fallback, and never
    /// worse than pure data parallelism.
    Partial(PartialPlan),
}

impl PlanOutcome {
    /// The planned network, complete or partial.
    #[must_use]
    pub const fn planned(&self) -> &PlannedNetwork {
        match self {
            PlanOutcome::Complete(p) => p,
            PlanOutcome::Partial(p) => p.planned(),
        }
    }

    /// Consumes the outcome, keeping the planned network.
    #[must_use]
    pub fn into_planned(self) -> PlannedNetwork {
        match self {
            PlanOutcome::Complete(p) => p,
            PlanOutcome::Partial(p) => p.planned,
        }
    }

    /// Whether the search ran to completion.
    #[must_use]
    pub const fn is_complete(&self) -> bool {
        matches!(self, PlanOutcome::Complete(_))
    }

    /// Fraction of levels solved to DP optimality (1.0 when complete).
    #[must_use]
    pub fn completeness(&self) -> f64 {
        match self {
            PlanOutcome::Complete(_) => 1.0,
            PlanOutcome::Partial(p) => p.completeness(),
        }
    }
}

/// Default hierarchy depth: bisect down to single boards.
fn default_levels(array: &AcceleratorArray) -> usize {
    let boards = array.len().max(1);
    (usize::BITS as usize - 1 - boards.leading_zeros() as usize).max(1)
}

/// Configures and validates a [`Planner`] — the single way to build
/// one (see [`Planner::builder`]).
///
/// Every knob has a sensible default; [`build`](PlannerBuilder::build)
/// validates the whole configuration up front (thread budget, hierarchy
/// depth, array bisectability, network analyzability) so planning
/// itself cannot fail on configuration errors.
///
/// # Example
///
/// ```
/// use accpar_core::{Planner, Strategy};
/// use accpar_dnn::zoo;
/// use accpar_hw::AcceleratorArray;
///
/// let network = zoo::lenet(128)?;
/// let array = AcceleratorArray::heterogeneous_tpu(2, 2);
/// let planned = Planner::builder(&network, &array)
///     .levels(2)
///     .strategy(Strategy::Owt)
///     .build()?
///     .run()?;
/// assert_eq!(planned.plan().depth(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlannerBuilder<'a> {
    network: &'a Network,
    array: &'a AcceleratorArray,
    strategy: Strategy,
    levels: Option<usize>,
    cost_config: CostConfig,
    solver: RatioSolver,
    sim_config: SimConfig,
    threads: Option<usize>,
    caching: bool,
    iso: bool,
    cache: Option<Arc<SearchCache>>,
    plan_cache: Option<Arc<PlanCache>>,
    memory_cap: Option<Optimizer>,
    obs: Obs,
    deadline: Option<Duration>,
    max_nodes: Option<u64>,
    cancel: Option<CancelToken>,
}

impl<'a> PlannerBuilder<'a> {
    /// Starts a builder over a network and an array with default knobs:
    /// AccPar strategy, bisection to single boards, default cost model
    /// and solver, cost-model-aligned simulator, environment-derived
    /// thread budget, caching on, no memory cap, inert observability.
    #[must_use]
    pub fn new(network: &'a Network, array: &'a AcceleratorArray) -> Self {
        Self {
            network,
            array,
            strategy: Strategy::AccPar,
            levels: None,
            cost_config: CostConfig::default(),
            solver: RatioSolver::default(),
            sim_config: SimConfig::cost_model_aligned(),
            threads: None,
            caching: true,
            iso: true,
            cache: None,
            plan_cache: None,
            memory_cap: None,
            obs: Obs::off(),
            deadline: None,
            max_nodes: None,
            cancel: None,
        }
    }

    /// The strategy [`Planner::run`] executes (default:
    /// [`Strategy::AccPar`]). [`Planner::plan`] can still plan any
    /// strategy regardless of this choice.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Hierarchy depth (default: bisect down to single boards, i.e.
    /// `log2(#boards)`). Validated against the array at
    /// [`build`](PlannerBuilder::build).
    #[must_use]
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Cost-model configuration used by the AccPar search.
    #[must_use]
    pub fn cost_config(mut self, config: CostConfig) -> Self {
        self.cost_config = config;
        self
    }

    /// Ratio solver used by the AccPar search.
    #[must_use]
    pub fn solver(mut self, solver: RatioSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Simulator configuration used to evaluate
    /// [`PlannedNetwork::modeled_cost`].
    #[must_use]
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Thread budget for planning (default: the `ACCPAR_THREADS`
    /// environment variable, falling back to the machine's available
    /// parallelism). Must be at least 1; plans are bit-identical at any
    /// budget.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables the shared search memo (default: enabled).
    /// Caching never changes results — only how often cost cells, block
    /// tables and whole levels are recomputed.
    #[must_use]
    pub fn caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        self
    }

    /// Shares a search memo with other planners — e.g. a zoo sweep over
    /// one accelerator array. Every memo key captures its full
    /// evaluation context, so sharing is always sound.
    #[must_use]
    pub fn cache(mut self, cache: Arc<SearchCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables or disables isomorphism collapse in the AccPar search
    /// (default: enabled). When on, structurally identical layers are
    /// grouped into equivalence classes and each DP cost-table row is
    /// computed once per class, then stamped onto every member —
    /// bit-identical to the uncollapsed search, since a row is a pure
    /// function of the class key. Disable (the `--no-iso` escape hatch)
    /// only to cross-check or to measure the collapse speedup itself.
    #[must_use]
    pub fn iso(mut self, on: bool) -> Self {
        self.iso = on;
        self
    }

    /// Attaches a crash-safe [`PlanCache`]: whole finished plans are
    /// served from validated cache hits and admitted on cold misses.
    /// Every hit is re-validated before serving (shape match plus a BSP
    /// simulation cross-check), so attaching a cache never changes a
    /// served plan — a cold miss is bit-identical to the uncached
    /// planner, and a poisoned record is evicted and re-planned. See
    /// the [`cache`](crate::cache) module docs.
    #[must_use]
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Makes [`Planner::run`] repair plans for memory feasibility under
    /// the given optimizer (see [`Planner::plan_within_memory`]).
    #[must_use]
    pub fn memory_cap(mut self, optimizer: Optimizer) -> Self {
        self.memory_cap = Some(optimizer);
        self
    }

    /// Attaches a tracing [`Subscriber`] (with a fresh metrics
    /// registry). The planner then emits `plan` / `plan.level` spans,
    /// per-layer `plan.decision` events, cache statistics, and replan
    /// metrics. Instrumentation never changes plans.
    #[must_use]
    pub fn subscriber(mut self, subscriber: impl Subscriber + 'static) -> Self {
        self.obs = Obs::new(subscriber);
        self
    }

    /// Attaches a pre-built observability handle (lets several planners
    /// share one subscriber and metrics registry). [`Obs::off`] detaches.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Bounds every AccPar search by a wall-clock deadline, measured
    /// from the start of each [`Planner::plan_outcome`] /
    /// [`Planner::plan`] call (not from `build`). On expiry the planner
    /// returns the best-so-far anytime plan as
    /// [`PlanOutcome::Partial`].
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the number of budget nodes (DP layer rows) each AccPar
    /// search may expand. A cap of 0 forces the pure data-parallel
    /// fallback — useful to bound worst-case latency deterministically.
    #[must_use]
    pub fn max_nodes(mut self, cap: u64) -> Self {
        self.max_nodes = Some(cap);
        self
    }

    /// Attaches an external cancellation token checked throughout the
    /// search; cancel it from another thread to stop planning at the
    /// next layer row.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates the configuration and builds the [`Planner`].
    ///
    /// # Errors
    ///
    /// [`PlanError::Config`] when the thread budget or hierarchy depth
    /// is zero; [`PlanError::Hw`] when the array cannot be bisected to
    /// the requested depth; [`PlanError::Network`] when the network
    /// cannot be analyzed for training.
    pub fn build(self) -> Result<Planner<'a>, PlanError> {
        if self.threads == Some(0) {
            return Err(PlanError::Config(
                "thread budget must be at least 1".into(),
            ));
        }
        if self.levels == Some(0) {
            return Err(PlanError::Config(
                "hierarchy depth must be at least 1".into(),
            ));
        }
        let levels = self.levels.unwrap_or_else(|| default_levels(self.array));
        // Surface bisection and network-analysis errors now, not at
        // plan time.
        GroupTree::bisect(self.array, levels)?;
        self.network.train_view()?;
        Ok(Planner {
            network: self.network,
            array: self.array,
            strategy: self.strategy,
            levels: self.levels,
            cost_config: self.cost_config,
            solver: self.solver,
            sim_config: self.sim_config,
            threads: self.threads,
            caching: self.caching,
            iso: self.iso,
            cache: self.cache.unwrap_or_default(),
            plan_cache: self.plan_cache,
            memory_cap: self.memory_cap,
            obs: self.obs,
            deadline: self.deadline,
            max_nodes: self.max_nodes,
            cancel: self.cancel,
        })
    }
}

/// One-stop planning API: pairs a network with an accelerator array and
/// produces hierarchical partition plans under any of the four schemes.
///
/// Built via [`Planner::builder`], which validates the configuration up
/// front. [`Planner::run`] executes the configured strategy;
/// [`Planner::plan`] plans any strategy ad hoc.
///
/// # Example
///
/// ```
/// use accpar_core::{Planner, Strategy};
/// use accpar_dnn::zoo;
/// use accpar_hw::AcceleratorArray;
///
/// let network = zoo::lenet(128)?;
/// let array = AcceleratorArray::heterogeneous_tpu(2, 2);
/// let planner = Planner::builder(&network, &array).levels(2).build()?;
/// let planned = planner.plan(Strategy::Owt)?;
/// assert_eq!(planned.plan().depth(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    network: &'a Network,
    array: &'a AcceleratorArray,
    strategy: Strategy,
    levels: Option<usize>,
    cost_config: CostConfig,
    solver: RatioSolver,
    sim_config: SimConfig,
    threads: Option<usize>,
    caching: bool,
    iso: bool,
    memory_cap: Option<Optimizer>,
    obs: Obs,
    deadline: Option<Duration>,
    max_nodes: Option<u64>,
    cancel: Option<CancelToken>,
    /// Shared across clones so replans reuse the planning run's memo.
    cache: Arc<SearchCache>,
    /// Whole-plan serving cache (see [`crate::cache`]); absent by
    /// default.
    plan_cache: Option<Arc<PlanCache>>,
}

impl<'a> Planner<'a> {
    /// Starts building a planner over a network and an array — the
    /// entry point of the planning API. See [`PlannerBuilder`].
    #[must_use]
    pub fn builder(network: &'a Network, array: &'a AcceleratorArray) -> PlannerBuilder<'a> {
        PlannerBuilder::new(network, array)
    }

    /// Creates a planner with default knobs.
    #[deprecated(since = "0.2.0", note = "use `Planner::builder(network, array).build()`")]
    #[must_use]
    pub fn new(network: &'a Network, array: &'a AcceleratorArray) -> Self {
        Self {
            network,
            array,
            strategy: Strategy::AccPar,
            levels: None,
            cost_config: CostConfig::default(),
            solver: RatioSolver::default(),
            sim_config: SimConfig::cost_model_aligned(),
            threads: None,
            caching: true,
            iso: true,
            memory_cap: None,
            obs: Obs::off(),
            deadline: None,
            max_nodes: None,
            cancel: None,
            cache: Arc::new(SearchCache::new()),
            plan_cache: None,
        }
    }

    /// Sets the hierarchy depth.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::levels`")]
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Overrides the cost-model configuration used by the AccPar search.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::cost_config`")]
    #[must_use]
    pub fn with_cost_config(mut self, config: CostConfig) -> Self {
        self.cost_config = config;
        self
    }

    /// Overrides the ratio solver used by the AccPar search.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::solver`")]
    #[must_use]
    pub fn with_solver(mut self, solver: RatioSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the simulator configuration.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::sim_config`")]
    #[must_use]
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Sets the thread budget for planning.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::threads`")]
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables the shared search memo.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::caching`")]
    #[must_use]
    pub fn with_caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        self
    }

    /// Shares a search memo with other planners.
    #[deprecated(since = "0.2.0", note = "use `PlannerBuilder::cache`")]
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<SearchCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The resolved thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| Pool::from_env().threads())
    }

    /// Counters of the shared search memo (all zeros while caching is
    /// disabled or before the first AccPar plan).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The observability handle the planner was built with (inert
    /// unless [`PlannerBuilder::subscriber`] or [`PlannerBuilder::obs`]
    /// attached one).
    #[must_use]
    pub const fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The hierarchy depth that will be used.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels.unwrap_or_else(|| default_levels(self.array))
    }

    /// Plans the network under the builder-configured strategy,
    /// applying the memory cap when one was set via
    /// [`PlannerBuilder::memory_cap`].
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`] and [`Planner::plan_within_memory`].
    pub fn run(&self) -> Result<PlannedNetwork, PlanError> {
        match self.memory_cap {
            Some(optimizer) => self.plan_within_memory(self.strategy, optimizer),
            None => self.plan(self.strategy),
        }
    }

    /// A fresh [`Budget`] from the builder's `deadline` / `max_nodes` /
    /// `cancel` knobs. The deadline clock starts *now* — each plan call
    /// gets the full allowance.
    #[must_use]
    pub fn fresh_budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(deadline) = self.deadline {
            budget = budget.deadline(deadline);
        }
        if let Some(cap) = self.max_nodes {
            budget = budget.max_nodes(cap);
        }
        if let Some(token) = &self.cancel {
            budget = budget.cancel_token(token);
        }
        budget
    }

    /// Plans the network under the given strategy and evaluates the plan
    /// with the simulator.
    ///
    /// When the builder configured a budget (`deadline` / `max_nodes` /
    /// `cancel`) and it expires mid-search, the anytime plan is
    /// returned; use [`Planner::plan_outcome`] to observe whether that
    /// happened.
    ///
    /// # Errors
    ///
    /// Propagates network-analysis, bisection and simulation errors.
    pub fn plan(&self, strategy: Strategy) -> Result<PlannedNetwork, PlanError> {
        self.plan_outcome(strategy).map(PlanOutcome::into_planned)
    }

    /// Plans under the builder-configured budget and reports whether
    /// the result is complete or the best-so-far anytime plan.
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`]. A budget stop is not an error.
    pub fn plan_outcome(&self, strategy: Strategy) -> Result<PlanOutcome, PlanError> {
        self.plan_with_budget(strategy, &self.fresh_budget())
    }

    /// Plans under an explicit [`Budget`] (overriding the builder
    /// knobs). The budget bounds the AccPar search — the three baseline
    /// strategies are closed-form (or search a space too small to
    /// matter) and always complete.
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`]. A budget stop is not an error.
    pub fn plan_with_budget(
        &self,
        strategy: Strategy,
        budget: &Budget,
    ) -> Result<PlanOutcome, PlanError> {
        self.plan_with_budget_cached(strategy, budget)
            .map(|(outcome, _)| outcome)
    }

    /// [`Planner::plan_with_budget`], additionally reporting how the
    /// attached [`PlanCache`] participated ([`CacheOutcome::Disabled`]
    /// when none is attached). The serving layer uses the provenance to
    /// demote hits when the request targets degraded hardware.
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`]. A budget stop is not an error.
    pub fn plan_with_budget_cached(
        &self,
        strategy: Strategy,
        budget: &Budget,
    ) -> Result<(PlanOutcome, CacheOutcome), PlanError> {
        self.plan_budgeted_with_pool(strategy, Pool::new(self.threads()), budget)
    }

    /// [`Planner::plan`] with an explicit thread budget (used by
    /// [`Planner::plan_all`] to divide the budget across strategies).
    fn plan_with_pool(&self, strategy: Strategy, pool: Pool) -> Result<PlannedNetwork, PlanError> {
        self.plan_budgeted_with_pool(strategy, pool, &Budget::unlimited())
            .map(|(outcome, _)| outcome.into_planned())
    }

    /// Admission validation of a cached record before serving: shape /
    /// topology match on every hit, then a BSP simulation cross-check
    /// of the stored cost (which also proves feasibility against the
    /// *current* array — an infeasible plan fails to simulate). The
    /// cross-check is skipped when `verified` carries a report this
    /// record already earned in this process (see the
    /// [`cache`](crate::cache) module docs): the key is value-complete
    /// and the simulator pure, so the memoized report is the bit-exact
    /// value the re-simulation would recompute. Either way the returned
    /// report is identical to what a cold plan would produce for the
    /// same tree, so serving a validated hit is bit-identical to
    /// re-planning. The boolean reports whether a fresh simulation ran.
    fn validate_record(
        &self,
        record: &PlanRecord,
        verified: Option<SimReport>,
        view: &TrainView,
        tree: &GroupTree,
        strategy: Strategy,
        levels: usize,
    ) -> Result<(SimReport, bool), CacheOutcome> {
        let shape_ok = record.strategy == strategy
            && record.levels == levels
            && record.plan.depth() == levels
            && record.plan.plan().len() == view.weighted_len();
        if !shape_ok {
            return Err(CacheOutcome::Invalid);
        }
        if let Some(report) = verified {
            return Ok((report, false));
        }
        let report = Simulator::new(self.sim_config)
            .simulate(view, &record.plan, tree, None)
            .map_err(|_| CacheOutcome::Invalid)?;
        if (report.total_secs - record.cost).abs() > cache::POISON_TOLERANCE {
            return Err(CacheOutcome::Poisoned);
        }
        Ok((report, true))
    }

    fn plan_budgeted_with_pool(
        &self,
        strategy: Strategy,
        pool: Pool,
        budget: &Budget,
    ) -> Result<(PlanOutcome, CacheOutcome), PlanError> {
        let started = Instant::now();
        let view = self.network.train_view()?;
        let levels = self.levels();
        let tree = GroupTree::bisect(self.array, levels)?;
        let obs = &self.obs;
        if self.caching {
            self.cache.observe(obs);
        }
        let span = obs.span(
            "plan",
            &[
                ("network", self.network.name().into()),
                ("strategy", strategy.to_string().into()),
                ("levels", levels.into()),
                ("layers", view.weighted_len().into()),
                ("threads", pool.threads().into()),
            ],
        );

        // Plan-cache consult: a validated hit short-circuits the whole
        // search; everything else falls through to the normal (cold,
        // bit-identical) path and admits the finished plan.
        let mut cache_outcome = CacheOutcome::Disabled;
        let cache_key = self.plan_cache.as_ref().map(|plan_cache| {
            let key = cache::plan_key(
                &view,
                self.array,
                strategy,
                levels,
                &self.cost_config,
                &self.solver,
                &self.sim_config,
                budget,
            );
            (Arc::clone(plan_cache), key)
        });
        if let Some((plan_cache, key)) = &cache_key {
            cache_outcome = CacheOutcome::Miss;
            if let Some((record, verified)) = plan_cache.lookup(key) {
                let vspan = obs.span(
                    "cache.validate",
                    &[
                        ("key", key.to_hex().into()),
                        ("strategy", strategy.to_string().into()),
                        ("levels", levels.into()),
                    ],
                );
                match self.validate_record(&record, verified, &view, &tree, strategy, levels) {
                    Ok((report, fresh_sim)) => {
                        vspan.event(
                            "cache.validate.outcome",
                            &[
                                ("result", CacheOutcome::Hit.label().into()),
                                ("cost", report.total_secs.into()),
                                ("fresh_sim", fresh_sim.into()),
                            ],
                        );
                        if fresh_sim {
                            plan_cache.mark_verified(key, report.clone());
                        }
                        if obs.enabled() {
                            obs.counter("planner.plans").inc();
                            obs.histogram("planner.ttfp_ns").record(
                                started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                            );
                        }
                        let planned = PlannedNetwork::from_parts(strategy, record.plan, report);
                        return Ok((PlanOutcome::Complete(planned), CacheOutcome::Hit));
                    }
                    Err(outcome) => {
                        vspan.event(
                            "cache.validate.outcome",
                            &[("result", outcome.label().into())],
                        );
                        if outcome == CacheOutcome::Poisoned {
                            plan_cache.evict(key);
                        }
                        cache_outcome = outcome;
                    }
                }
            }
        }

        let complete = AnytimeReport {
            solved_levels: 0,
            fallback_levels: 0,
            stop: None,
        };
        let (plan, anytime) = match strategy {
            Strategy::DataParallel => (data_parallel_plan(&view, levels), complete),
            Strategy::Owt => (owt_plan(&view, levels), complete),
            Strategy::HyPar => (hypar_plan(&view, &tree)?, complete),
            Strategy::AccPar => {
                let model = CostModel::new(self.cost_config);
                let mut config = SearchConfig::accpar_with(self.solver);
                config.collapse = self.iso;
                if self.iso && obs.enabled() {
                    let iso = accpar_dnn::iso::IsoClasses::of(&view);
                    let classes = iso.layer_classes();
                    obs.span_at(
                        "plan.iso",
                        span.id(),
                        &[
                            ("classes", classes.into()),
                            ("layers", view.weighted_len().into()),
                            ("collapse_ratio", iso.collapse_ratio().into()),
                        ],
                    );
                    obs.counter("iso.classes").add(classes as u64);
                    obs.gauge("iso.collapse_ratio").set(iso.collapse_ratio());
                }
                let cache = self.caching.then(|| &*self.cache);
                let (plan, anytime) = plan_node_budgeted(
                    &view,
                    tree.root(),
                    &model,
                    &config,
                    None,
                    pool,
                    cache,
                    obs,
                    span.id(),
                    budget,
                )?;
                let plan = plan.ok_or_else(|| {
                    PlanError::Mismatch("the bisected tree has no levels to plan".into())
                })?;
                (plan, anytime)
            }
        };

        let report = Simulator::new(self.sim_config)
            .with_obs(obs.clone())
            .simulate(&view, &plan, &tree, None)?;
        let planned = PlannedNetwork {
            strategy,
            plan,
            report,
        };

        // Anytime contract: a partial plan is adopted only if it beats
        // the pure data-parallel baseline it would otherwise degrade to
        // (mirroring the replan module's never-worse rule).
        let outcome = if anytime.is_complete() {
            PlanOutcome::Complete(planned)
        } else {
            let reason = anytime
                .stop
                .expect("a fallback level implies a stop reason");
            let baseline_plan = data_parallel_plan(&view, levels);
            let baseline_report = Simulator::new(self.sim_config)
                .with_obs(obs.clone())
                .simulate(&view, &baseline_plan, &tree, None)?;
            let baseline_adopted = baseline_report.total_secs < planned.report.total_secs;
            let planned = if baseline_adopted {
                PlannedNetwork {
                    strategy,
                    plan: baseline_plan,
                    report: baseline_report,
                }
            } else {
                planned
            };
            PlanOutcome::Partial(PartialPlan {
                planned,
                reason,
                solved_levels: anytime.solved_levels,
                fallback_levels: anytime.fallback_levels,
                baseline_adopted,
            })
        };

        // Only complete plans are admitted: a partial plan is an
        // artifact of this request's remaining budget, not of the
        // request content the key fingerprints.
        if let Some((plan_cache, key)) = &cache_key {
            if let PlanOutcome::Complete(planned) = &outcome {
                plan_cache.insert_verified(
                    PlanRecord {
                        key: *key,
                        strategy,
                        levels,
                        cost: planned.report.total_secs,
                        plan: planned.plan.clone(),
                    },
                    planned.report.clone(),
                );
            }
        }

        if obs.enabled() {
            obs.counter("planner.plans").inc();
            obs.histogram("planner.ttfp_ns")
                .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            emit_decisions(obs, span.id(), &view, outcome.planned().plan());
            if let PlanOutcome::Partial(partial) = &outcome {
                obs.counter("planner.partial_plans").inc();
                match partial.reason() {
                    StopReason::Deadline => obs.counter("planner.deadline_hits").inc(),
                    StopReason::NodeBudget => obs.counter("planner.node_budget_hits").inc(),
                    StopReason::Cancelled => obs.counter("planner.cancellations").inc(),
                }
                let fields = [
                    ("completeness", partial.completeness().into()),
                    ("reason", partial.reason().label().into()),
                    ("solved_levels", partial.solved_levels().into()),
                    ("fallback_levels", partial.fallback_levels().into()),
                    ("baseline_adopted", partial.baseline_adopted().into()),
                ];
                span.event("plan.partial", &fields);
                if partial.reason() == StopReason::Cancelled {
                    span.event("plan.cancelled", &fields);
                }
            }
            if self.caching {
                let stats = self.cache.stats();
                obs.gauge("planner.cache.hit_rate").set(stats.hit_rate());
                obs.gauge("planner.cache.lookup_hit_rate")
                    .set(stats.lookup_hit_rate());
                span.event(
                    "plan.cache_stats",
                    &[
                        ("layer_hits", stats.layer_hits.into()),
                        ("layer_misses", stats.layer_misses.into()),
                        ("block_hits", stats.block_hits.into()),
                        ("block_misses", stats.block_misses.into()),
                        ("level_hits", stats.level_hits.into()),
                        ("level_misses", stats.level_misses.into()),
                        ("cells_requested", stats.cells_requested.into()),
                        ("hit_rate", stats.hit_rate().into()),
                    ],
                );
            }
        }

        Ok((outcome, cache_outcome))
    }

    /// Plans under `strategy`, then repairs the plan for memory
    /// feasibility under the given optimizer (flipping the heaviest
    /// replicated layers to Type-II until every leaf's footprint fits its
    /// HBM) and re-evaluates it.
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when even a fully weight-sharded plan
    /// cannot fit; otherwise see [`Planner::plan`].
    pub fn plan_within_memory(
        &self,
        strategy: Strategy,
        optimizer: Optimizer,
    ) -> Result<PlannedNetwork, PlanError> {
        let planned = self.plan(strategy)?;
        let view = self.network.train_view()?;
        let tree = GroupTree::bisect(self.array, self.levels())?;
        let (plan, _report) = crate::feasible::fit_to_memory(
            &view,
            planned.plan(),
            &tree,
            &self.sim_config,
            optimizer,
        )?;
        let report = Simulator::new(self.sim_config)
            .with_obs(self.obs.clone())
            .simulate(&view, &plan, &tree, None)?;
        Ok(PlannedNetwork {
            strategy,
            plan,
            report,
        })
    }

    /// Re-plans a previously planned network against a fault scenario:
    /// graceful degradation with this planner's cost model, solver and
    /// simulator configuration. See [`crate::replan::replan`].
    ///
    /// # Errors
    ///
    /// See [`crate::replan::replan`].
    pub fn replan(
        &self,
        planned: &PlannedNetwork,
        faults: &accpar_hw::FaultModel,
    ) -> Result<crate::replan::ReplanOutcome, PlanError> {
        let view = self.network.train_view()?;
        let tree = GroupTree::bisect(self.array, planned.plan().depth())?;
        let config = crate::replan::ReplanConfig {
            cost_config: self.cost_config,
            solver: self.solver,
            sim_config: self.sim_config,
            sensitivity: true,
            threads: Some(self.threads()),
            obs: self.obs.clone(),
            iso: self.iso,
            budget: accpar_runtime::Budget::unlimited(),
        };
        crate::replan::replan_with(
            &view,
            self.array,
            &tree,
            planned.plan(),
            faults,
            &config,
            self.caching.then(|| &*self.cache),
        )
    }

    /// Plans all four schemes and returns them in [`Strategy::ALL`]
    /// order. With a thread budget above 1 the strategies run
    /// concurrently, each on a slice of the budget; results are
    /// position-bound, so the output is identical to a serial run.
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`].
    pub fn plan_all(&self) -> Result<Vec<PlannedNetwork>, PlanError> {
        let budget = self.threads();
        if budget <= 1 {
            return Strategy::ALL.iter().map(|&s| self.plan_with_pool(s, Pool::serial())).collect();
        }
        let workers = budget.min(Strategy::ALL.len());
        let inner = Pool::new(budget / workers);
        Pool::new(workers)
            .par_map(&Strategy::ALL, |_, &s| self.plan_with_pool(s, inner))
            .into_iter()
            .collect()
    }

    /// Plans a batch of independent requests with per-request panic
    /// isolation, overload shedding and a stall watchdog. Convenience
    /// alias for [`crate::serve::plan_many`]; see the
    /// [`serve`](crate::serve) module docs for the contract.
    #[must_use]
    pub fn plan_many(
        requests: &[crate::serve::PlanRequest<'_>],
        config: &crate::serve::ServeConfig,
    ) -> Vec<Result<PlanOutcome, PlanError>> {
        crate::serve::plan_many(requests, config)
    }
}

/// Emits one `plan.decision` event per (plan-tree node, layer): the
/// partition type and ratio the DP chose, labeled with the layer's
/// name. Nodes are numbered pre-order, matching
/// [`PlanDelta::node`](crate::replan::PlanDelta).
fn emit_decisions(obs: &Obs, parent: Option<u64>, view: &TrainView, plan: &PlanTree) {
    let mut names = vec![""; view.weighted_len()];
    for layer in view.layers() {
        if let Some(slot) = names.get_mut(layer.index()) {
            *slot = layer.name();
        }
    }
    fn rec(obs: &Obs, parent: Option<u64>, names: &[&str], plan: &PlanTree, node: &mut usize) {
        let idx = *node;
        *node += 1;
        for (layer, entry) in plan.plan().layers().iter().enumerate() {
            obs.event_at(
                "plan.decision",
                parent,
                &[
                    ("node", idx.into()),
                    ("layer", layer.into()),
                    ("name", names.get(layer).copied().unwrap_or("").into()),
                    ("ptype", entry.ptype.to_string().into()),
                    ("ratio", entry.ratio.value().into()),
                ],
            );
        }
        if let Some((l, r)) = plan.children() {
            rec(obs, parent, names, l, node);
            rec(obs, parent, names, r, node);
        }
    }
    rec(obs, parent, &names, plan, &mut 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::zoo;
    use accpar_obs::Collector;
    use accpar_partition::PartitionType;

    fn planner<'a>(net: &'a Network, array: &'a AcceleratorArray) -> Planner<'a> {
        Planner::builder(net, array).build().unwrap()
    }

    #[test]
    fn default_levels_bisect_to_boards() {
        let net = zoo::lenet(32).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(4, 4);
        assert_eq!(planner(&net, &array).levels(), 3);
        let array1 = AcceleratorArray::homogeneous_tpu_v3(1);
        assert_eq!(planner(&net, &array1).levels(), 1);
    }

    #[test]
    fn all_strategies_produce_valid_plans() {
        let net = zoo::lenet(128).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let planner = Planner::builder(&net, &array).levels(2).build().unwrap();
        let all = planner.plan_all().unwrap();
        assert_eq!(all.len(), 4);
        for planned in &all {
            assert_eq!(planned.plan().depth(), 2);
            assert!(planned.modeled_cost() > 0.0);
        }
    }

    #[test]
    fn accpar_beats_or_ties_every_baseline_on_alexnet() {
        let net = zoo::alexnet(512).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(4, 4);
        let planner = Planner::builder(&net, &array).levels(3).build().unwrap();
        let all = planner.plan_all().unwrap();
        let accpar = all.last().unwrap().modeled_cost();
        for planned in &all {
            assert!(
                accpar <= planned.modeled_cost() * (1.0 + 1e-9),
                "AccPar {accpar} vs {} {}",
                planned.strategy(),
                planned.modeled_cost()
            );
        }
    }

    #[test]
    fn accpar_uses_unbalanced_ratios_on_heterogeneous_hardware() {
        let net = zoo::lenet(512).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let planned = Planner::builder(&net, &array)
            .levels(1)
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        // The top-level cut separates v2 from v3: ratios must tilt.
        assert!(planned
            .plan()
            .plan()
            .layers()
            .iter()
            .any(|l| !l.ratio.is_balanced()));
    }

    #[test]
    fn strategies_display_names() {
        let names: Vec<String> = Strategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["DP", "OWT", "HyPar", "AccPar"]);
    }

    #[test]
    fn planned_network_exposes_plan_details() {
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let planned = planner(&net, &array).plan(Strategy::DataParallel).unwrap();
        assert_eq!(planned.strategy(), Strategy::DataParallel);
        assert_eq!(planned.plan().count(PartitionType::TypeI), 5);
        assert!(planned.to_string().contains("DP"));
        assert!(planned.report().total_secs > 0.0);
    }

    #[test]
    fn builder_validates_up_front() {
        let net = zoo::lenet(32).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        assert!(matches!(
            Planner::builder(&net, &array).threads(0).build(),
            Err(PlanError::Config(_))
        ));
        assert!(matches!(
            Planner::builder(&net, &array).levels(0).build(),
            Err(PlanError::Config(_))
        ));
        // Depth 9 needs 512 boards; 4 cannot be bisected that far.
        assert!(matches!(
            Planner::builder(&net, &array).levels(9).build(),
            Err(PlanError::Hw(_))
        ));
    }

    #[test]
    fn run_executes_the_configured_strategy() {
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let planned = Planner::builder(&net, &array)
            .strategy(Strategy::Owt)
            .levels(2)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(planned.strategy(), Strategy::Owt);
        let capped = Planner::builder(&net, &array)
            .strategy(Strategy::AccPar)
            .levels(2)
            .memory_cap(Optimizer::Sgd)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(capped.strategy(), Strategy::AccPar);
        assert!(capped.modeled_cost() > 0.0);
    }

    #[test]
    fn deprecated_constructor_still_plans() {
        #![allow(deprecated)]
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        #[allow(deprecated)]
        let planned = Planner::new(&net, &array)
            .plan(Strategy::DataParallel)
            .unwrap();
        assert_eq!(planned.strategy(), Strategy::DataParallel);
    }

    #[test]
    fn tracing_emits_decisions_and_never_changes_the_plan() {
        let net = zoo::lenet(128).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let collector = Arc::new(Collector::new());
        let traced = Planner::builder(&net, &array)
            .levels(2)
            .subscriber(Arc::clone(&collector))
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        let plain = Planner::builder(&net, &array)
            .levels(2)
            .build()
            .unwrap()
            .plan(Strategy::AccPar)
            .unwrap();
        assert_eq!(traced.plan(), plain.plan());
        // One decision per (node, layer): 3 nodes x 3 weighted layers.
        let decisions = collector.events_named("plan.decision");
        assert_eq!(decisions.len(), 3 * traced.plan().plan().len());
        // Level spans nest under the plan span.
        let plan_span = collector.span_named("plan").unwrap();
        let level = collector.span_named("plan.level").unwrap();
        assert!(collector.nested_under(level.id, plan_span.id));
    }
}
