use crate::baselines::{data_parallel_plan, hypar_plan, owt_plan};
use crate::error::PlanError;
use crate::hierarchy::plan_node_with;
use crate::memo::{CacheStats, SearchCache};
use crate::search::SearchConfig;
use accpar_cost::{CostConfig, CostModel, RatioSolver};
use accpar_dnn::Network;
use accpar_hw::{AcceleratorArray, GroupTree};
use accpar_partition::PlanTree;
use accpar_runtime::Pool;
use accpar_sim::{SimConfig, SimReport, Simulator};
use std::fmt;
use std::sync::Arc;

/// The partitioning schemes compared in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Plain data parallelism — the normalization baseline.
    DataParallel,
    /// "One Weird Trick" (Krizhevsky, 2014).
    Owt,
    /// HyPar (Song et al., HPCA 2019).
    HyPar,
    /// AccPar — this paper.
    AccPar,
}

impl Strategy {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::DataParallel,
        Strategy::Owt,
        Strategy::HyPar,
        Strategy::AccPar,
    ];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::DataParallel => "DP",
            Strategy::Owt => "OWT",
            Strategy::HyPar => "HyPar",
            Strategy::AccPar => "AccPar",
        };
        f.write_str(s)
    }
}

/// A plan produced by [`Planner::plan`], together with its modeled
/// performance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedNetwork {
    strategy: Strategy,
    plan: PlanTree,
    report: SimReport,
}

impl PlannedNetwork {
    /// Which scheme produced the plan.
    #[must_use]
    pub const fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The hierarchical plan.
    #[must_use]
    pub const fn plan(&self) -> &PlanTree {
        &self.plan
    }

    /// The modeled step time in seconds (simulated with the
    /// cost-model-aligned configuration).
    #[must_use]
    pub fn modeled_cost(&self) -> f64 {
        self.report.total_secs
    }

    /// The full simulation report behind [`PlannedNetwork::modeled_cost`].
    #[must_use]
    pub const fn report(&self) -> &SimReport {
        &self.report
    }
}

impl fmt::Display for PlannedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} ms/step\n{}",
            self.strategy,
            self.modeled_cost() * 1e3,
            self.plan
        )
    }
}

/// One-stop planning API: pairs a network with an accelerator array and
/// produces hierarchical partition plans under any of the four schemes.
///
/// # Example
///
/// ```
/// use accpar_core::{Planner, Strategy};
/// use accpar_dnn::zoo;
/// use accpar_hw::AcceleratorArray;
///
/// let network = zoo::lenet(128)?;
/// let array = AcceleratorArray::heterogeneous_tpu(2, 2);
/// let planned = Planner::new(&network, &array)
///     .with_levels(2)
///     .plan(Strategy::Owt)?;
/// assert_eq!(planned.plan().depth(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    network: &'a Network,
    array: &'a AcceleratorArray,
    levels: Option<usize>,
    cost_config: CostConfig,
    solver: RatioSolver,
    sim_config: SimConfig,
    threads: Option<usize>,
    caching: bool,
    /// Shared across clones so replans reuse the planning run's memo.
    cache: Arc<SearchCache>,
}

impl<'a> Planner<'a> {
    /// Creates a planner over a network and an array.
    #[must_use]
    pub fn new(network: &'a Network, array: &'a AcceleratorArray) -> Self {
        Self {
            network,
            array,
            levels: None,
            cost_config: CostConfig::default(),
            solver: RatioSolver::default(),
            sim_config: SimConfig::cost_model_aligned(),
            threads: None,
            caching: true,
            cache: Arc::new(SearchCache::new()),
        }
    }

    /// Sets the hierarchy depth (default: bisect down to single boards,
    /// i.e. `log2(#boards)`).
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Overrides the cost-model configuration used by the AccPar search.
    #[must_use]
    pub fn with_cost_config(mut self, config: CostConfig) -> Self {
        self.cost_config = config;
        self
    }

    /// Overrides the ratio solver used by the AccPar search.
    #[must_use]
    pub fn with_solver(mut self, solver: RatioSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the simulator configuration used to evaluate
    /// [`PlannedNetwork::modeled_cost`].
    #[must_use]
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Sets the thread budget for planning (default: the
    /// `ACCPAR_THREADS` environment variable, falling back to the
    /// machine's available parallelism). Plans are bit-identical at any
    /// budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables the shared search memo (default: enabled).
    /// Caching never changes results — only how often cost cells, block
    /// tables and whole levels are recomputed.
    #[must_use]
    pub fn with_caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        self
    }

    /// Shares a search memo with other planners — e.g. a zoo sweep over
    /// one accelerator array, where VGG variants repeat conv shapes and
    /// ResNet variants repeat whole blocks. Every memo key captures its
    /// full evaluation context (layer signature, scales, environment,
    /// cost configuration), so sharing is always sound; it pays off when
    /// the planners' networks or fault scenarios overlap structurally.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<SearchCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The resolved thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| Pool::from_env().threads())
    }

    /// Counters of the shared search memo (all zeros while caching is
    /// disabled or before the first AccPar plan).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The hierarchy depth that will be used.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels.unwrap_or_else(|| {
            let boards = self.array.len().max(1);
            (usize::BITS as usize - 1 - boards.leading_zeros() as usize).max(1)
        })
    }

    /// Plans the network under the given strategy and evaluates the plan
    /// with the simulator.
    ///
    /// # Errors
    ///
    /// Propagates network-analysis, bisection and simulation errors.
    pub fn plan(&self, strategy: Strategy) -> Result<PlannedNetwork, PlanError> {
        self.plan_with_pool(strategy, Pool::new(self.threads()))
    }

    /// [`Planner::plan`] with an explicit thread budget (used by
    /// [`Planner::plan_all`] to divide the budget across strategies).
    fn plan_with_pool(&self, strategy: Strategy, pool: Pool) -> Result<PlannedNetwork, PlanError> {
        let view = self.network.train_view()?;
        let levels = self.levels();
        let tree = GroupTree::bisect(self.array, levels)?;

        let plan = match strategy {
            Strategy::DataParallel => data_parallel_plan(&view, levels),
            Strategy::Owt => owt_plan(&view, levels),
            Strategy::HyPar => hypar_plan(&view, &tree)?,
            Strategy::AccPar => {
                let model = CostModel::new(self.cost_config);
                let config = SearchConfig {
                    types: accpar_partition::PartitionType::ALL.to_vec(),
                    solver: self.solver,
                };
                let cache = self.caching.then(|| &*self.cache);
                plan_node_with(&view, tree.root(), &model, &config, None, pool, cache)?
                    .ok_or_else(|| {
                        PlanError::Mismatch("the bisected tree has no levels to plan".into())
                    })?
            }
        };

        let report = Simulator::new(self.sim_config).simulate(&view, &plan, &tree)?;
        Ok(PlannedNetwork {
            strategy,
            plan,
            report,
        })
    }

    /// Plans under `strategy`, then repairs the plan for memory
    /// feasibility under the given optimizer (flipping the heaviest
    /// replicated layers to Type-II until every leaf's footprint fits its
    /// HBM) and re-evaluates it.
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when even a fully weight-sharded plan
    /// cannot fit; otherwise see [`Planner::plan`].
    pub fn plan_within_memory(
        &self,
        strategy: Strategy,
        optimizer: accpar_sim::Optimizer,
    ) -> Result<PlannedNetwork, PlanError> {
        let planned = self.plan(strategy)?;
        let view = self.network.train_view()?;
        let tree = GroupTree::bisect(self.array, self.levels())?;
        let (plan, _report) = crate::feasible::fit_to_memory(
            &view,
            planned.plan(),
            &tree,
            &self.sim_config,
            optimizer,
        )?;
        let report = Simulator::new(self.sim_config).simulate(&view, &plan, &tree)?;
        Ok(PlannedNetwork {
            strategy,
            plan,
            report,
        })
    }

    /// Re-plans a previously planned network against a fault scenario:
    /// graceful degradation with this planner's cost model, solver and
    /// simulator configuration. See [`crate::replan::replan`].
    ///
    /// # Errors
    ///
    /// See [`crate::replan::replan`].
    pub fn replan(
        &self,
        planned: &PlannedNetwork,
        faults: &accpar_hw::FaultModel,
    ) -> Result<crate::replan::ReplanOutcome, PlanError> {
        let view = self.network.train_view()?;
        let tree = GroupTree::bisect(self.array, planned.plan().depth())?;
        let config = crate::replan::ReplanConfig {
            cost_config: self.cost_config,
            solver: self.solver,
            sim_config: self.sim_config,
            sensitivity: true,
            threads: Some(self.threads()),
        };
        crate::replan::replan_with(
            &view,
            self.array,
            &tree,
            planned.plan(),
            faults,
            &config,
            self.caching.then(|| &*self.cache),
        )
    }

    /// Plans all four schemes and returns them in [`Strategy::ALL`]
    /// order. With a thread budget above 1 the strategies run
    /// concurrently, each on a slice of the budget; results are
    /// position-bound, so the output is identical to a serial run.
    ///
    /// # Errors
    ///
    /// See [`Planner::plan`].
    pub fn plan_all(&self) -> Result<Vec<PlannedNetwork>, PlanError> {
        let budget = self.threads();
        if budget <= 1 {
            return Strategy::ALL.iter().map(|&s| self.plan_with_pool(s, Pool::serial())).collect();
        }
        let workers = budget.min(Strategy::ALL.len());
        let inner = Pool::new(budget / workers);
        Pool::new(workers)
            .par_map(&Strategy::ALL, |_, &s| self.plan_with_pool(s, inner))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::zoo;
    use accpar_partition::PartitionType;

    #[test]
    fn default_levels_bisect_to_boards() {
        let net = zoo::lenet(32).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(4, 4);
        assert_eq!(Planner::new(&net, &array).levels(), 3);
        let array1 = AcceleratorArray::homogeneous_tpu_v3(1);
        assert_eq!(Planner::new(&net, &array1).levels(), 1);
    }

    #[test]
    fn all_strategies_produce_valid_plans() {
        let net = zoo::lenet(128).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let planner = Planner::new(&net, &array).with_levels(2);
        let all = planner.plan_all().unwrap();
        assert_eq!(all.len(), 4);
        for planned in &all {
            assert_eq!(planned.plan().depth(), 2);
            assert!(planned.modeled_cost() > 0.0);
        }
    }

    #[test]
    fn accpar_beats_or_ties_every_baseline_on_alexnet() {
        let net = zoo::alexnet(512).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(4, 4);
        let planner = Planner::new(&net, &array).with_levels(3);
        let all = planner.plan_all().unwrap();
        let accpar = all.last().unwrap().modeled_cost();
        for planned in &all {
            assert!(
                accpar <= planned.modeled_cost() * (1.0 + 1e-9),
                "AccPar {accpar} vs {} {}",
                planned.strategy(),
                planned.modeled_cost()
            );
        }
    }

    #[test]
    fn accpar_uses_unbalanced_ratios_on_heterogeneous_hardware() {
        let net = zoo::lenet(512).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let planned = Planner::new(&net, &array)
            .with_levels(1)
            .plan(Strategy::AccPar)
            .unwrap();
        // The top-level cut separates v2 from v3: ratios must tilt.
        assert!(planned
            .plan()
            .plan()
            .layers()
            .iter()
            .any(|l| !l.ratio.is_balanced()));
    }

    #[test]
    fn strategies_display_names() {
        let names: Vec<String> = Strategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["DP", "OWT", "HyPar", "AccPar"]);
    }

    #[test]
    fn planned_network_exposes_plan_details() {
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let planned = Planner::new(&net, &array).plan(Strategy::DataParallel).unwrap();
        assert_eq!(planned.strategy(), Strategy::DataParallel);
        assert_eq!(planned.plan().count(PartitionType::TypeI), 5);
        assert!(planned.to_string().contains("DP"));
        assert!(planned.report().total_secs > 0.0);
    }
}
