//! The comparison schemes of the paper's evaluation (§6.1):
//!
//! * **DP** — plain data parallelism \[106\]: every layer Type-I, equal
//!   shares, at every hierarchy level. The normalization baseline.
//! * **OWT** — "One Weird Trick" \[107\]: CONV layers Type-I (data
//!   parallel), FC layers Type-II (model parallel), equal shares. Static.
//! * **HyPar** \[108\] — a layer-wise dynamic-programming search like
//!   AccPar's, but over the *incomplete* two-type space {I, II}, with
//!   equal partitioning and total communication volume as the objective.

use crate::error::PlanError;
use crate::hierarchy::plan_node;
use crate::search::SearchConfig;
use accpar_cost::{CostConfig, CostModel};
use accpar_dnn::{TrainView, WeightedKind};
use accpar_hw::GroupTree;
use accpar_partition::{LayerPlan, NetworkPlan, PartitionType, PlanTree, Ratio};

/// The data-parallelism baseline: Type-I everywhere, equal shares,
/// replicated model.
#[must_use]
pub fn data_parallel_plan(view: &TrainView, levels: usize) -> PlanTree {
    let level = NetworkPlan::uniform(view.weighted_len(), LayerPlan::data_parallel());
    PlanTree::uniform(&vec![level; levels.max(1)])
}

/// "One Weird Trick": data parallelism for CONV layers, model
/// parallelism (Type-II) for FC layers, equal shares.
#[must_use]
pub fn owt_plan(view: &TrainView, levels: usize) -> PlanTree {
    let mut layers: Vec<_> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    let level: NetworkPlan = layers
        .iter()
        .map(|layer| {
            // OWT's rule is "parameter-heavy layers go model-parallel";
            // embedding tables follow the FC arm.
            let ptype = match layer.kind() {
                WeightedKind::Conv { .. } => PartitionType::TypeI,
                WeightedKind::Fc | WeightedKind::Embedding => PartitionType::TypeII,
            };
            LayerPlan::new(ptype, Ratio::EQUAL)
        })
        .collect();
    PlanTree::uniform(&vec![level; levels.max(1)])
}

/// HyPar: hierarchical dynamic search over {Type-I, Type-II} with equal
/// partitioning, minimizing total communicated elements.
///
/// Per §3.5, HyPar "can only handle DNN architectures with linear
/// structure", so the search runs on the *linearized* view: multi-path
/// blocks are dissolved into a chain and the shortcut edges' conversion
/// traffic is invisible to the planner (the simulator charges it
/// anyway). Use [`hypar_multipath_plan`] for the strengthened variant
/// that borrows AccPar's §5.2 machinery.
///
/// # Errors
///
/// Propagates level-search errors (none in practice: the space is
/// non-empty).
pub fn hypar_plan(view: &TrainView, tree: &GroupTree) -> Result<PlanTree, PlanError> {
    use accpar_cost::PairEnv;
    // One search at the top level with unscaled tensors, replicated to
    // every level. The communication-amount objective is oblivious to
    // the environment and HyPar partitions equally, so per-level
    // re-search with unscaled tensors would return the same plan — this
    // reproduces the paper's observed HyPar behaviour (ResNet plans that
    // coincide with plain data parallelism, §6.2).
    let model = CostModel::new(CostConfig::hypar());
    let config = SearchConfig::hypar();
    let linear = view.linearized();
    let env = PairEnv::from_node(tree.root()).expect("a bisected tree has children");
    let searcher = crate::search::LevelSearcher::new(&linear, &model, &config, &env, None)?;
    let level = searcher.search().plan;
    Ok(PlanTree::uniform(&vec![level; tree.levels()]))
}

/// A strengthened HyPar that plans on the true series-parallel structure
/// with shard-scale-aware per-level searches, using AccPar's multi-path
/// machinery (§5.2) — an ablation isolating how much of AccPar's
/// advantage survives when only the cost model and ratio flexibility
/// differ.
///
/// # Errors
///
/// Propagates level-search errors.
pub fn hypar_multipath_plan(view: &TrainView, tree: &GroupTree) -> Result<PlanTree, PlanError> {
    let model = CostModel::new(CostConfig::hypar());
    let config = SearchConfig::hypar();
    Ok(plan_node(view, tree.root(), &model, &config, None)?
        .expect("a bisected tree has at least one level"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::zoo;
    use accpar_hw::AcceleratorArray;

    #[test]
    fn dp_plan_is_all_type_i() {
        let view = zoo::lenet(64).unwrap().train_view().unwrap();
        let plan = data_parallel_plan(&view, 2);
        assert_eq!(plan.count(PartitionType::TypeI), 5 * 3);
        assert_eq!(plan.count(PartitionType::TypeII), 0);
        assert_eq!(plan.depth(), 2);
    }

    #[test]
    fn owt_splits_conv_and_fc() {
        let view = zoo::alexnet(64).unwrap().train_view().unwrap();
        let plan = owt_plan(&view, 1);
        // 5 convs Type-I, 3 fcs Type-II.
        assert_eq!(plan.count(PartitionType::TypeI), 5);
        assert_eq!(plan.count(PartitionType::TypeII), 3);
        assert_eq!(plan.count(PartitionType::TypeIII), 0);
        assert_eq!(plan.plan().type_string(), "IIIII222");
    }

    #[test]
    fn hypar_never_uses_type_iii_and_splits_equally() {
        let view = zoo::lenet(64).unwrap().train_view().unwrap();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 2).unwrap();
        let plan = hypar_plan(&view, &tree).unwrap();
        assert_eq!(plan.count(PartitionType::TypeIII), 0);
        fn all_equal(t: &PlanTree) -> bool {
            t.plan().layers().iter().all(|l| l.ratio.is_balanced())
                && t.children().is_none_or(|(a, b)| all_equal(a) && all_equal(b))
        }
        assert!(all_equal(&plan));
        assert_eq!(plan.depth(), 2);
    }

    #[test]
    fn hypar_prefers_model_parallelism_for_fat_fc_layers() {
        // LeNet's fc1 (400×120 weight, tiny activations relative to the
        // weight at small batch) should not stay data-parallel under a
        // communication-minimizing search.
        let view = zoo::alexnet(512).unwrap().train_view().unwrap();
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = hypar_plan(&view, &tree).unwrap();
        // The three AlexNet FC layers carry 54 M of the 61 M parameters;
        // HyPar must map at least fc2/fc3 to model parallelism.
        let s = plan.plan().type_string();
        assert!(s.ends_with('2') || s[5..].contains('2'), "{s}");
    }
}
