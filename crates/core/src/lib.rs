//! The AccPar partitioning algorithm (§5 of the paper) — the primary
//! contribution of the reproduced system.
//!
//! * [`search`] — the layer-wise dynamic program of Eq. 9 over the
//!   *complete* three-type partition space, with per-layer partition
//!   ratios from the §5.3 solver and the §5.2 multi-path extension for
//!   ResNet-style blocks; plus an exhaustive `O(3^N)` reference searcher
//!   used to certify optimality in tests.
//! * [`hierarchy`] — the recursive application of the level search down a
//!   bisected accelerator array (§5.1), producing a
//!   [`PlanTree`](accpar_partition::PlanTree).
//! * [`baselines`] — the three comparison schemes of §6: plain data
//!   parallelism, "One Weird Trick" (CONV → Type-I, FC → Type-II), and
//!   HyPar (a dynamic search restricted to Types I/II, equal ratios,
//!   communication-amount objective).
//! * [`replan`](mod@crate::replan) — graceful degradation: re-run the search
//!   against a faulted array (stragglers, degraded links, dropped
//!   boards) and adopt the new plan only when it beats the stale one on
//!   the same degraded hardware.
//! * [`serve`](mod@crate::serve) — supervised batch serving: a queue of
//!   (network, hardware, budget) requests planned with per-request
//!   panic isolation, overload shedding and a stall watchdog.
//! * [`supervise`](mod@crate::supervise) — live replanning: a
//!   [`Supervisor`] owns the serving plan and walks a degradation
//!   ladder (hold → never-worse replan → fallback → shed) over a
//!   debounced stream of hardware health events.
//! * [`Planner`] — the one-stop API tying a network, an array, a
//!   strategy and the evaluation together. Under a
//!   [`Budget`] it is an *anytime* planner:
//!   when the budget expires mid-search it returns
//!   [`PlanOutcome::Partial`] — solved levels keep their DP-optimal
//!   assignments, the rest falls back to data parallelism — never worse
//!   than the pure data-parallel baseline.
//!
//! # Example
//!
//! ```
//! use accpar_core::{Planner, Strategy};
//! use accpar_dnn::zoo;
//! use accpar_hw::AcceleratorArray;
//!
//! let network = zoo::alexnet(512)?;
//! let array = AcceleratorArray::heterogeneous_tpu(2, 2);
//! let planner = Planner::builder(&network, &array).build()?;
//!
//! let accpar = planner.plan(Strategy::AccPar)?;
//! let dp = planner.plan(Strategy::DataParallel)?;
//! // The complete, heterogeneity-aware search wins clearly on AlexNet.
//! assert!(accpar.modeled_cost() < dp.modeled_cost());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod baselines;
pub mod cache;
mod error;
pub mod feasible;
pub mod hierarchy;
mod memo;
mod planner;
pub mod replan;
pub mod search;
pub mod serve;
pub mod supervise;

pub use cache::{CacheOutcome, LoadReport, PlanCache, PlanCacheStats, PlanKey, PlanRecord};
pub use error::PlanError;
pub use hierarchy::AnytimeReport;
pub use memo::{CacheStats, SearchCache};
pub use planner::{PartialPlan, PlanOutcome, PlannedNetwork, Planner, PlannerBuilder, Strategy};
pub use replan::{replan, FaultImpact, PlanDelta, ReplanConfig, ReplanOutcome};
pub use search::{level_class_keys, LevelSearcher, SearchConfig, SearchOutcome};
pub use serve::{plan_many, PlanRequest, ServeConfig};
pub use supervise::{Decision, SuperviseAction, SuperviseConfig, SuperviseReport, Supervisor};

// Re-export the budget vocabulary so `accpar_core` users don't need a
// direct `accpar_runtime` dependency to bound a plan.
pub use accpar_runtime::{Budget, CancelToken, RetryPolicy, StopReason};
