//! Supervised batch serving: plan a queue of (network, hardware,
//! budget) requests the way a production scheduler would submit them.
//!
//! [`plan_many`] runs each admitted request through a fresh [`Planner`]
//! with **per-request isolation**: a panic while planning one request
//! is caught and surfaces as that request's
//! [`PlanError::WorkerPanic`] — the rest of the batch is unaffected.
//! Requests beyond [`ServeConfig::max_queue`] are **shed** up front
//! with [`PlanError::Overloaded`] (predictable latency beats unbounded
//! queueing), requests whose [`Budget`] is already spent when a worker
//! picks them up are shed with [`PlanError::Interrupted`] *before* any
//! fingerprinting or planning work (`serve.shed` events carry a
//! `shed_reason` of `queue-full` or `budget-expiry`), and a
//! **watchdog** thread flags requests that have been in flight longer
//! than [`ServeConfig::watchdog_stall`] via the `serve.stalled`
//! counter/event.
//!
//! With [`ServeConfig::cache`] attached, finished plans are served from
//! the crash-safe [`PlanCache`] after admission validation; requests
//! carrying a [`PlanRequest::faults`] model demote cache hits into
//! warm-starts for the never-worse replanner instead of serving a
//! healthy-hardware plan verbatim.
//!
//! Everything is instrumented through [`ServeConfig::obs`]: counters
//! `serve.completed` / `serve.partial` / `serve.errors` /
//! `serve.sheds` / `serve.panics_recovered` / `serve.stalled`, the
//! per-stop-reason counters `serve.deadline_hits` / `serve.cancelled` /
//! `serve.node_budget_hits`, and the `serve.ttfp_ns` histogram of
//! time-to-first-feasible-plan per request.

use crate::cache::{CacheOutcome, PlanCache};
use crate::error::PlanError;
use crate::planner::{PlanOutcome, PlannedNetwork, Planner, Strategy};
use accpar_cost::{CostConfig, RatioSolver};
use accpar_dnn::Network;
use accpar_hw::{AcceleratorArray, FaultModel};
use accpar_obs::Obs;
use accpar_runtime::{lock_unpoisoned, Budget, Pool, StopReason};
use accpar_sim::{SimConfig, Simulator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// One planning request in a [`plan_many`] batch.
#[derive(Debug, Clone)]
pub struct PlanRequest<'a> {
    /// The network to partition.
    pub network: &'a Network,
    /// The accelerator array to partition it over.
    pub array: &'a AcceleratorArray,
    /// The strategy to plan (default [`Strategy::AccPar`]).
    pub strategy: Strategy,
    /// Hierarchy depth (default: bisect to single boards).
    pub levels: Option<usize>,
    /// The request's execution budget (default unlimited).
    pub budget: Budget,
    /// Current hardware condition (default: healthy). A faulted request
    /// is answered with a plan adapted to the degraded array: the
    /// healthy plan (cache hit or fresh) seeds
    /// [`Planner::replan`]'s never-worse delta machinery, and a cache
    /// hit used this way is counted as a *demotion* — the stored plan
    /// was computed for healthy hardware and must not be served as-is.
    pub faults: Option<&'a FaultModel>,
}

impl<'a> PlanRequest<'a> {
    /// A request with default knobs: AccPar, default depth, unlimited
    /// budget.
    #[must_use]
    pub fn new(network: &'a Network, array: &'a AcceleratorArray) -> Self {
        Self {
            network,
            array,
            strategy: Strategy::AccPar,
            levels: None,
            budget: Budget::unlimited(),
            faults: None,
        }
    }

    /// Sets the strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the hierarchy depth.
    #[must_use]
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Sets the execution budget.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Declares the current hardware condition (see
    /// [`PlanRequest::faults`]).
    #[must_use]
    pub fn faults(mut self, faults: &'a FaultModel) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Configuration of a [`plan_many`] batch.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Requests beyond this bound are shed with
    /// [`PlanError::Overloaded`] instead of queued (default 64).
    pub max_queue: usize,
    /// Worker threads planning requests concurrently (default: the
    /// environment thread budget). Each request itself plans
    /// single-threaded — the batch is the unit of parallelism.
    pub workers: usize,
    /// Flag a request that stays in flight longer than this via the
    /// `serve.stalled` counter/event — live from the watchdog while it
    /// is stuck, settled exactly at completion otherwise. `None`
    /// disables stall tracking (default 30s).
    pub watchdog_stall: Option<Duration>,
    /// Cost-model configuration for every request.
    pub cost_config: CostConfig,
    /// Ratio solver for every request.
    pub solver: RatioSolver,
    /// Simulator configuration for every request.
    pub sim_config: SimConfig,
    /// Observability handle; inert by default.
    pub obs: Obs,
    /// Crash-safe plan cache shared by every request (default: none).
    /// See the [`cache`](crate::cache) module docs for the hit
    /// validation and demotion contract.
    pub cache: Option<Arc<PlanCache>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_queue: 64,
            workers: Pool::from_env().threads(),
            watchdog_stall: Some(Duration::from_secs(30)),
            cost_config: CostConfig::default(),
            solver: RatioSolver::default(),
            sim_config: SimConfig::cost_model_aligned(),
            obs: Obs::off(),
            cache: None,
        }
    }
}

impl ServeConfig {
    /// Rejects configurations that would stall or shed every request at
    /// runtime: a zero `max_queue` sheds the whole batch, zero `workers`
    /// can never drain the queue, and a zero watchdog threshold flags
    /// every request as stalled the moment it starts.
    ///
    /// [`plan_many`] validates up front, so a misconfiguration surfaces
    /// as a typed [`PlanError::Config`] on every result instead of a
    /// silent runtime stall.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Config`] naming the offending knob.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.max_queue == 0 {
            return Err(PlanError::Config(
                "serve max_queue must be at least 1: a zero bound sheds every request".into(),
            ));
        }
        if self.workers == 0 {
            return Err(PlanError::Config(
                "serve workers must be at least 1: a zero pool never drains the queue".into(),
            ));
        }
        if let Some(stall) = self.watchdog_stall {
            if stall.is_zero() {
                return Err(PlanError::Config(
                    "serve watchdog_stall must be positive (use None to disable the watchdog)"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Plans one request on a fresh single-threaded planner.
fn serve_one(
    request: &PlanRequest<'_>,
    config: &ServeConfig,
) -> Result<PlanOutcome, PlanError> {
    let mut builder = Planner::builder(request.network, request.array)
        .strategy(request.strategy)
        .cost_config(config.cost_config)
        .solver(config.solver)
        .sim_config(config.sim_config)
        .threads(1)
        .obs(config.obs.clone());
    if let Some(levels) = request.levels {
        builder = builder.levels(levels);
    }
    if let Some(cache) = &config.cache {
        builder = builder.plan_cache(Arc::clone(cache));
    }
    let planner = builder.build()?;
    let (outcome, provenance) =
        planner.plan_with_budget_cached(request.strategy, &request.budget)?;
    let Some(faults) = request.faults else {
        return Ok(outcome);
    };
    // Degraded hardware: the cached/fresh plan was computed for the
    // healthy array, so it is *never* served as-is. A cache hit is
    // demoted to a warm-start seeding the never-worse replanner.
    if provenance == CacheOutcome::Hit {
        if let Some(cache) = &config.cache {
            cache.note_demotion();
        }
        config.obs.event(
            "cache.demote",
            &[
                ("strategy", request.strategy.to_string().into()),
                ("faults", request.faults.map_or(0, |f| f.faults().len()).into()),
            ],
        );
    }
    let healthy = outcome.into_planned();
    let replanned = planner.replan(&healthy, faults)?;
    let view = request.network.train_view()?;
    let report = Simulator::new(config.sim_config).simulate(
        &view,
        &replanned.plan,
        &replanned.tree,
        Some(&replanned.faults),
    )?;
    Ok(PlanOutcome::Complete(PlannedNetwork::from_parts(
        request.strategy,
        replanned.plan,
        report,
    )))
}

/// Plans a batch of requests with per-request isolation, overload
/// shedding and a stall watchdog (see the [module docs](self)).
///
/// Results come back **in request order** — result `i` always belongs
/// to `requests[i]`, whether it completed, degraded to a partial plan,
/// failed, or was shed. The function itself never panics on a request's
/// behalf: worker panics are isolated into that request's
/// [`PlanError::WorkerPanic`].
#[must_use]
pub fn plan_many(
    requests: &[PlanRequest<'_>],
    config: &ServeConfig,
) -> Vec<Result<PlanOutcome, PlanError>> {
    if let Err(err) = config.validate() {
        return requests.iter().map(|_| Err(err.clone())).collect();
    }
    let obs = &config.obs;
    let admitted = requests.len().min(config.max_queue);
    let shed = requests.len() - admitted;
    let span = obs.span(
        "serve",
        &[
            ("requests", requests.len().into()),
            ("admitted", admitted.into()),
            ("bound", config.max_queue.into()),
        ],
    );
    if shed > 0 && obs.enabled() {
        obs.counter("serve.sheds").add(shed as u64);
        span.event(
            "serve.shed",
            &[
                ("shed", shed.into()),
                ("depth", requests.len().into()),
                ("bound", config.max_queue.into()),
                ("shed_reason", "queue-full".into()),
            ],
        );
    }

    let workers = config.workers.max(1).min(admitted.max(1));
    let next = AtomicUsize::new(0);
    let starts: Mutex<Vec<Option<Instant>>> = Mutex::new(vec![None; admitted]);
    let slots: Mutex<Vec<Option<Result<PlanOutcome, PlanError>>>> =
        Mutex::new((0..admitted).map(|_| None).collect());

    // A request is "stalled" once it has been in flight longer than the
    // configured threshold. The watchdog samples in-flight requests for
    // live visibility; workers settle the books at completion so the
    // count is exact even when a stall ends between two ticks. Each
    // request is flagged at most once.
    let stalled: Mutex<Vec<bool>> = Mutex::new(vec![false; admitted]);
    let flag_stalled = |i: usize, started: Instant| {
        {
            let mut flags = lock_unpoisoned(&stalled);
            if flags[i] {
                return;
            }
            flags[i] = true;
        }
        if obs.enabled() {
            obs.counter("serve.stalled").inc();
            span.event(
                "serve.stalled",
                &[
                    ("request", i.into()),
                    (
                        "in_flight_ms",
                        (started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64).into(),
                    ),
                ],
            );
        }
    };
    // Condvar-backed shutdown so `plan_many` never blocks on a sleeping
    // watchdog: the final notify wakes it mid-tick.
    let shutdown = (Mutex::new(false), Condvar::new());

    thread::scope(|scope| {
        let (starts_ref, shutdown_ref, flag_ref) = (&starts, &shutdown, &flag_stalled);
        let watchdog = config.watchdog_stall.map(|stall| {
            scope.spawn(move || {
                let tick = (stall / 4).max(Duration::from_millis(1));
                let mut guard = lock_unpoisoned(&shutdown_ref.0);
                loop {
                    let (g, _) = shutdown_ref
                        .1
                        .wait_timeout(guard, tick)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard = g;
                    if *guard {
                        break;
                    }
                    let in_flight: Vec<(usize, Instant)> = lock_unpoisoned(starts_ref)
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.map(|t| (i, t)))
                        .collect();
                    for (i, started) in in_flight {
                        if started.elapsed() >= stall {
                            flag_ref(i, started);
                        }
                    }
                }
            })
        });

        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= admitted {
                        break;
                    }
                    // A request whose budget is already spent is shed
                    // *before* any fingerprinting or planning work —
                    // queueing consumed its allowance.
                    if let Err(reason) = requests[i].budget.check() {
                        if obs.enabled() {
                            obs.counter("serve.sheds").inc();
                            span.event(
                                "serve.shed",
                                &[
                                    ("shed", 1u64.into()),
                                    ("request", i.into()),
                                    ("shed_reason", "budget-expiry".into()),
                                    ("reason", reason.label().into()),
                                ],
                            );
                        }
                        lock_unpoisoned(&slots)[i] = Some(Err(PlanError::Interrupted(reason)));
                        continue;
                    }
                    let started = Instant::now();
                    lock_unpoisoned(&starts)[i] = Some(started);
                    let result =
                        match catch_unwind(AssertUnwindSafe(|| serve_one(&requests[i], config))) {
                            Ok(result) => result,
                            Err(payload) => {
                                if obs.enabled() {
                                    obs.counter("serve.panics_recovered").inc();
                                }
                                Err(PlanError::WorkerPanic {
                                    attempts: 1,
                                    message: payload_message(payload.as_ref()),
                                })
                            }
                        };
                    lock_unpoisoned(&starts)[i] = None;
                    if config
                        .watchdog_stall
                        .is_some_and(|stall| started.elapsed() >= stall)
                    {
                        flag_stalled(i, started);
                    }
                    if obs.enabled() {
                        obs.histogram("serve.ttfp_ns")
                            .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                        match &result {
                            Ok(PlanOutcome::Complete(_)) => obs.counter("serve.completed").inc(),
                            Ok(PlanOutcome::Partial(partial)) => {
                                obs.counter("serve.partial").inc();
                                match partial.reason() {
                                    StopReason::Deadline => {
                                        obs.counter("serve.deadline_hits").inc();
                                    }
                                    StopReason::NodeBudget => {
                                        obs.counter("serve.node_budget_hits").inc();
                                    }
                                    StopReason::Cancelled => {
                                        obs.counter("serve.cancelled").inc();
                                    }
                                }
                            }
                            Err(_) => obs.counter("serve.errors").inc(),
                        }
                    }
                    lock_unpoisoned(&slots)[i] = Some(result);
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                // Request panics are caught above; this would be a bug
                // in the serving loop itself.
                std::panic::resume_unwind(payload);
            }
        }
        *lock_unpoisoned(&shutdown.0) = true;
        shutdown.1.notify_all();
        if let Some(watchdog) = watchdog {
            let _ = watchdog.join();
        }
    });

    let mut results: Vec<Result<PlanOutcome, PlanError>> = lock_unpoisoned(&slots)
        .drain(..)
        .map(|slot| slot.expect("every admitted request was planned"))
        .collect();
    for _ in 0..shed {
        results.push(Err(PlanError::Overloaded {
            depth: requests.len(),
            bound: config.max_queue,
        }));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::zoo;
    use accpar_obs::Collector;
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_request_order() {
        let lenet = zoo::lenet(64).unwrap();
        let alexnet = zoo::alexnet(64).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let requests = vec![
            PlanRequest::new(&lenet, &array).levels(1),
            PlanRequest::new(&alexnet, &array).levels(2),
            PlanRequest::new(&lenet, &array)
                .levels(2)
                .strategy(Strategy::DataParallel),
        ];
        let results = plan_many(&requests, &ServeConfig::default());
        assert_eq!(results.len(), 3);
        let depths: Vec<usize> = results
            .iter()
            .map(|r| r.as_ref().unwrap().planned().plan().depth())
            .collect();
        assert_eq!(depths, vec![1, 2, 2]);
        assert_eq!(
            results[2].as_ref().unwrap().planned().strategy(),
            Strategy::DataParallel
        );
    }

    #[test]
    fn overload_sheds_the_tail_not_the_head() {
        let net = zoo::lenet(32).unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let requests: Vec<PlanRequest> = (0..4)
            .map(|_| PlanRequest::new(&net, &array).levels(1))
            .collect();
        let collector = Arc::new(Collector::new());
        let config = ServeConfig {
            max_queue: 2,
            obs: Obs::new(Arc::clone(&collector)),
            ..ServeConfig::default()
        };
        let results = plan_many(&requests, &config);
        assert!(results[0].is_ok() && results[1].is_ok());
        for shed in &results[2..] {
            assert!(matches!(
                shed,
                Err(PlanError::Overloaded { depth: 4, bound: 2 })
            ));
        }
        config.obs.emit_metrics();
        let snap = collector.last_metrics().unwrap();
        assert_eq!(snap.counter("serve.sheds"), 2);
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let net = zoo::lenet(32).unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let requests = vec![
            PlanRequest::new(&net, &array).levels(1),
            PlanRequest::new(&net, &array).levels(1),
        ];
        for bad in [
            ServeConfig {
                max_queue: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                watchdog_stall: Some(Duration::ZERO),
                ..ServeConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
            let results = plan_many(&requests, &bad);
            assert_eq!(results.len(), 2);
            for result in results {
                assert!(matches!(result, Err(PlanError::Config(_))));
            }
        }
        // Disabling the watchdog outright stays legal.
        assert!(ServeConfig {
            watchdog_stall: None,
            ..ServeConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn a_bad_request_does_not_poison_the_batch() {
        let net = zoo::lenet(32).unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let requests = vec![
            PlanRequest::new(&net, &array).levels(1),
            // Depth 9 needs 512 boards — this request fails to build.
            PlanRequest::new(&net, &array).levels(9),
            PlanRequest::new(&net, &array).levels(1),
        ];
        let results = plan_many(&requests, &ServeConfig::default());
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PlanError::Hw(_))));
        assert!(results[2].is_ok());
    }
}
