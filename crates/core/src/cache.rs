//! Crash-safe, self-healing plan-serving cache (ROADMAP item 1).
//!
//! Planning the same (network, hardware, budget class) request twice is
//! pure waste — the DP is deterministic — but a cache that serves a
//! stale or corrupted plan silently violates the optimality contract of
//! PAPER.md §4, which is worse than no cache at all. This module
//! therefore treats every stored byte as hostile until proven
//! otherwise:
//!
//! * **Fingerprinting** — [`plan_key`] canonicalizes the layer DAG
//!   (topological element walk, interned layer signatures), the
//!   accelerator array, the strategy/levels/cost/solver/simulator
//!   configuration and the [`Budget`] *class* into a two-lane 128-bit
//!   content hash ([`PlanKey`]). Both lanes hash the same value-complete
//!   byte stream through differently-seeded `FxHasher`s, so an
//!   accidental single-lane collision cannot alias two requests.
//! * **Durability** — a sharded in-memory LRU backed by a JSON-lines
//!   file. Every record carries a per-record FNV-1a checksum over its
//!   serialized prefix; the file starts with a generation header.
//!   Writes go through a temp file plus atomic rename, so a crash
//!   mid-write leaves either the old file or the new file, never a
//!   torn one.
//! * **Self-healing** — warm load verifies each record's checksum and
//!   shape; corrupt or truncated lines are quarantined into a
//!   `.quarantine` sidecar (for postmortems) instead of failing
//!   startup.
//! * **Degraded modes** — any persistence I/O error flips the cache to
//!   memory-only serving with a `cache.degraded` event; it never
//!   panics and never fails a plan.
//!
//! Admission validation (shape/topology match, feasibility against the
//! *current* array, a BSP simulation cross-check against the stored
//! cost) lives in the planner, which owns the view and group tree; the
//! cache only stores and retrieves candidate records. A record whose
//! simulated cost disagrees with its stored cost beyond
//! [`POISON_TOLERANCE`] is *poisoned* — the planner evicts it via
//! [`PlanCache::evict`] and re-plans.
//!
//! The cross-check is kept cheap by memoizing its result: the key is
//! value-complete (nothing outside it can change the plan) and the BSP
//! simulator is a pure function, so once a record has reproduced its
//! stored cost in this process, re-running the identical simulation on
//! every subsequent hit would recompute a proven constant. Disk bytes
//! are never trusted this way — the memo lives only in memory
//! ([`PlanCache::mark_verified`]), so every record loaded or re-loaded
//! from the file pays the full re-simulation on its first serve, and
//! the shape/topology admission check still runs on *every* hit.

use crate::memo::{context_hash, hash_view};
use crate::planner::Strategy;
use accpar_cost::cache::{FxHashMap, FxHasher};
use accpar_cost::{CostConfig, RatioSolver};
use accpar_dnn::TrainView;
use accpar_hw::AcceleratorArray;
use accpar_obs::json::Json;
use accpar_obs::Obs;
use accpar_partition::{LayerPlan, NetworkPlan, PartitionType, PlanTree, Ratio};
use accpar_runtime::{lock_unpoisoned, Budget};
use accpar_sim::{MemModel, Optimizer, SimConfig, SimReport};
use std::fmt;
use std::hash::Hasher;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::{fs, io};

/// A stored cost and a freshly simulated cost may differ by at most
/// this much before the record is declared poisoned. The simulator is
/// deterministic, so any honest record reproduces its cost bit-exactly;
/// the tolerance only forgives benign last-ulp drift.
pub const POISON_TOLERANCE: f64 = 1e-9;

/// Number of LRU shards; must be a power of two.
const SHARDS: usize = 8;

/// File-format version of the persistence layer; bumped on any change
/// to the record schema so older binaries quarantine newer files
/// instead of misreading them.
const FORMAT_VERSION: u64 = 1;

/// Seeds priming the two hash lanes of a [`PlanKey`]. Arbitrary odd
/// constants; all that matters is that they differ, so the two lanes
/// walk different hash trajectories over the same byte stream.
const LANE_SEEDS: [u64; 2] = [0x9e37_79b9_7f4a_7c15, 0xc2b2_ae3d_27d4_eb4f];

/// A two-lane 128-bit content fingerprint of a plan request — the cache
/// key. See [`plan_key`] for what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    hi: u64,
    lo: u64,
}

impl PlanKey {
    /// The key as 32 lowercase hex digits (`hi` then `lo`).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`PlanKey::to_hex`] form back.
    fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self { hi, lo })
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Hashes everything that determines a plan into one lane.
#[allow(clippy::too_many_arguments)]
fn lane(
    seed: u64,
    view: &TrainView,
    iso: &accpar_dnn::iso::IsoClasses,
    array: &AcceleratorArray,
    strategy: Strategy,
    levels: usize,
    cost_config: &CostConfig,
    solver: &RatioSolver,
    sim_config: &SimConfig,
    budget: &Budget,
) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(seed);
    // Layer DAG: the canonical class multiset (classified once by the
    // caller — it prices both lanes).
    hash_view(&mut h, view, iso, cost_config);
    // Hardware: every board's full capability vector, in array order.
    h.write_usize(array.len());
    for board in array.boards() {
        h.write(board.name().as_bytes());
        h.write_u64(board.peak_flops().to_bits());
        h.write_u64(board.hbm_bytes());
        h.write_u64(board.mem_bw().to_bits());
        h.write_u64(board.net_bw().to_bits());
        h.write_usize(board.cores());
        h.write_u64(board.ici_bw().to_bits());
    }
    h.write_u8(match strategy {
        Strategy::DataParallel => 0,
        Strategy::Owt => 1,
        Strategy::HyPar => 2,
        Strategy::AccPar => 3,
    });
    h.write_usize(levels);
    // Search context: cost config, ratio policy, admissible types.
    h.write_u64(context_hash(cost_config, solver, &PartitionType::ALL));
    // Simulator configuration (no Hash derive on MemModel — encoded
    // manually, field by field).
    h.write_u8(sim_config.format as u8);
    h.write_u8(match sim_config.mem_model {
        MemModel::Roofline => 0,
        MemModel::Serial => 1,
        MemModel::ComputeOnly => 2,
    });
    h.write_u8(u8::from(sim_config.interlayer));
    h.write_u8(u8::from(sim_config.skip_first_backward));
    h.write_u8(match sim_config.update {
        None => 0,
        Some(Optimizer::Sgd) => 1,
        Some(Optimizer::Momentum) => 2,
        Some(Optimizer::Adam) => 3,
    });
    h.write_u64(budget.class_bits());
    h.finish()
}

/// The content fingerprint of one plan request: layer DAG + hardware +
/// strategy + hierarchy depth + cost/solver/simulator configuration +
/// [`Budget::class_bits`]. Two requests with equal keys are planned
/// identically by the deterministic DP; nothing outside the key (thread
/// budget, observability, caching knobs) can change the plan.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn plan_key(
    view: &TrainView,
    array: &AcceleratorArray,
    strategy: Strategy,
    levels: usize,
    cost_config: &CostConfig,
    solver: &RatioSolver,
    sim_config: &SimConfig,
    budget: &Budget,
) -> PlanKey {
    let iso = accpar_dnn::iso::IsoClasses::of(view);
    let h = |seed| {
        lane(
            seed, view, &iso, array, strategy, levels, cost_config, solver, sim_config, budget,
        )
    };
    PlanKey {
        hi: h(LANE_SEEDS[0]),
        lo: h(LANE_SEEDS[1]),
    }
}

/// One durable cache record: the plan plus enough context to
/// cross-check it before serving.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRecord {
    /// The request fingerprint the record answers.
    pub key: PlanKey,
    /// The strategy that produced the plan.
    pub strategy: Strategy,
    /// Hierarchy depth the plan was searched at.
    pub levels: usize,
    /// Modeled step time (seconds) at admission — the BSP cross-check
    /// re-simulates and compares against this, bit-for-bit modulo
    /// [`POISON_TOLERANCE`].
    pub cost: f64,
    /// The hierarchical plan itself.
    pub plan: PlanTree,
}

/// How the plan cache participated in one planning call (provenance
/// for the serving layer, which demotes hits when hardware degraded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache was attached to the planner.
    Disabled,
    /// A record passed admission validation and was served.
    Hit,
    /// No record existed; the plan was computed (and admitted).
    Miss,
    /// A record failed the shape/feasibility checks; the plan was
    /// recomputed and the record replaced.
    Invalid,
    /// A record's stored cost disagreed with the BSP cross-check beyond
    /// [`POISON_TOLERANCE`]; it was evicted and the plan recomputed.
    Poisoned,
}

impl CacheOutcome {
    /// Stable label for traces and events.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "disabled",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Invalid => "invalid",
            CacheOutcome::Poisoned => "poisoned",
        }
    }
}

// --- JSON codec -------------------------------------------------------

fn strategy_label(s: Strategy) -> &'static str {
    match s {
        Strategy::DataParallel => "DP",
        Strategy::Owt => "OWT",
        Strategy::HyPar => "HyPar",
        Strategy::AccPar => "AccPar",
    }
}

fn strategy_from_label(s: &str) -> Option<Strategy> {
    match s {
        "DP" => Some(Strategy::DataParallel),
        "OWT" => Some(Strategy::Owt),
        "HyPar" => Some(Strategy::HyPar),
        "AccPar" => Some(Strategy::AccPar),
        _ => None,
    }
}

fn ptype_code(t: PartitionType) -> f64 {
    match t {
        PartitionType::TypeI => 1.0,
        PartitionType::TypeII => 2.0,
        PartitionType::TypeIII => 3.0,
    }
}

fn ptype_from_code(c: f64) -> Option<PartitionType> {
    match c as i64 {
        1 => Some(PartitionType::TypeI),
        2 => Some(PartitionType::TypeII),
        3 => Some(PartitionType::TypeIII),
        _ => None,
    }
}

/// Ratios round-trip as hex-encoded IEEE-754 bits: a decimal rendering
/// would lose ulps and break the bit-identical-serving guarantee.
fn f64_bits_hex(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

fn f64_from_bits_hex(j: &Json) -> Option<f64> {
    let s = j.as_str()?;
    if s.len() != 16 {
        return None;
    }
    Some(f64::from_bits(u64::from_str_radix(s, 16).ok()?))
}

fn plan_to_json(tree: &PlanTree) -> Json {
    let layers: Vec<Json> = tree
        .plan()
        .layers()
        .iter()
        .map(|l| Json::Arr(vec![Json::Num(ptype_code(l.ptype)), f64_bits_hex(l.ratio.value())]))
        .collect();
    let mut fields = vec![("layers", Json::Arr(layers))];
    if let Some((l, r)) = tree.children() {
        fields.push(("children", Json::Arr(vec![plan_to_json(l), plan_to_json(r)])));
    }
    Json::obj(fields)
}

fn plan_from_json(j: &Json) -> Option<PlanTree> {
    let Json::Arr(layers) = j.get("layers")? else {
        return None;
    };
    let mut entries = Vec::with_capacity(layers.len());
    for layer in layers {
        let Json::Arr(pair) = layer else { return None };
        let [code, ratio_bits] = pair.as_slice() else {
            return None;
        };
        let ptype = ptype_from_code(code.as_f64()?)?;
        let ratio = Ratio::new(f64_from_bits_hex(ratio_bits)?).ok()?;
        entries.push(LayerPlan::new(ptype, ratio));
    }
    if entries.is_empty() {
        return None;
    }
    let plan = NetworkPlan::new(entries);
    match j.get("children") {
        None => Some(PlanTree::leaf(plan)),
        Some(Json::Arr(kids)) => {
            let [l, r] = kids.as_slice() else { return None };
            Some(PlanTree::branch(plan, plan_from_json(l)?, plan_from_json(r)?))
        }
        Some(_) => None,
    }
}

/// FNV-1a 64 over raw bytes — the per-record checksum. Deliberately a
/// *different* hash family than the FxHash key lanes, so a corruption
/// that happened to preserve one cannot be masked by the other.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders `value` (an object without a `crc` field) as one JSONL line
/// with the checksum over everything before `,"crc"` appended as the
/// final field.
fn seal_line(value: &Json) -> String {
    let body = value.compact();
    // `body` is `{...}`; splice the crc in before the closing brace.
    let prefix = &body[..body.len() - 1];
    format!("{prefix},\"crc\":\"{:016x}\"}}", fnv1a(prefix.as_bytes()))
}

/// Verifies and strips a sealed line's checksum, returning the parsed
/// object on success.
fn open_line(line: &str) -> Option<Json> {
    let at = line.rfind(",\"crc\":\"")?;
    let prefix = &line[..at];
    let rest = &line[at + ",\"crc\":\"".len()..];
    let hex = rest.strip_suffix("\"}")?;
    if hex.len() != 16 {
        return None;
    }
    let stored = u64::from_str_radix(hex, 16).ok()?;
    if fnv1a(prefix.as_bytes()) != stored {
        return None;
    }
    Json::parse(line).ok()
}

fn record_to_line(record: &PlanRecord) -> String {
    seal_line(&Json::obj(vec![
        ("key", Json::str(record.key.to_hex())),
        ("strategy", Json::str(strategy_label(record.strategy))),
        ("levels", Json::Num(record.levels as f64)),
        ("cost", f64_bits_hex(record.cost)),
        ("plan", plan_to_json(&record.plan)),
    ]))
}

fn record_from_line(line: &str) -> Option<PlanRecord> {
    let j = open_line(line)?;
    Some(PlanRecord {
        key: PlanKey::from_hex(j.get("key")?.as_str()?)?,
        strategy: strategy_from_label(j.get("strategy")?.as_str()?)?,
        levels: j.get("levels")?.as_f64()? as usize,
        cost: f64_from_bits_hex(j.get("cost")?)?,
        plan: plan_from_json(j.get("plan")?)?,
    })
}

fn header_line(generation: u64) -> String {
    seal_line(&Json::obj(vec![
        ("magic", Json::str("accpar-plan-cache")),
        ("version", Json::Num(FORMAT_VERSION as f64)),
        ("generation", Json::Num(generation as f64)),
    ]))
}

/// Parses and verifies a header line, returning its generation.
fn header_generation(line: &str) -> Option<u64> {
    let j = open_line(line)?;
    if j.get("magic")?.as_str()? != "accpar-plan-cache" {
        return None;
    }
    if j.get("version")?.as_f64()? as u64 != FORMAT_VERSION {
        return None;
    }
    Some(j.get("generation")?.as_f64()? as u64)
}

// --- the cache --------------------------------------------------------

/// Counter snapshot of a [`PlanCache`]; every field is cumulative since
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache (before admission validation).
    pub hits: u64,
    /// Lookups with no record.
    pub misses: u64,
    /// Records removed by LRU pressure or explicit eviction.
    pub evictions: u64,
    /// Persisted lines quarantined at warm load.
    pub quarantined: u64,
    /// Records whose stored cost disagreed with a fresh simulation
    /// (evicted via [`PlanCache::evict`] by the planner).
    pub poisoned: u64,
    /// Validated hits demoted to replan warm-starts (counted by the
    /// serving layer via [`PlanCache::note_demotion`]).
    pub demotions: u64,
    /// Persistence I/O errors absorbed (each one degrades the cache to
    /// memory-only serving).
    pub io_errors: u64,
}

#[derive(Debug)]
struct Entry {
    record: PlanRecord,
    tick: u64,
    /// The BSP cross-check report, memoized after the record first
    /// passes validation in this process. The key is value-complete and
    /// the simulator is pure, so a record proven once cannot go stale in
    /// memory — only disk bytes are hostile. Never persisted: every
    /// record loaded from disk starts unverified and pays the full
    /// cross-check on its first serve.
    verified: Option<SimReport>,
}

#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<PlanKey, Entry>,
}

/// What a warm load found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Records verified and admitted to memory.
    pub loaded: usize,
    /// Lines (or whole files) moved to the `.quarantine` sidecar.
    pub quarantined: usize,
}

/// The persistent, crash-safe plan-serving cache. See the
/// [module docs](self) for the design; thread-safe behind internal
/// sharded locks, shared via `Arc`.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    cap: usize,
    clock: AtomicU64,
    generation: AtomicU64,
    /// Persistence target; `None` for a memory-only cache.
    file: Option<PathBuf>,
    /// Cleared on the first I/O error: the cache keeps serving from
    /// memory and stops touching the disk.
    persist_ok: AtomicBool,
    load_report: LoadReport,
    obs: Obs,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    poisoned: AtomicU64,
    demotions: AtomicU64,
    io_errors: AtomicU64,
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("cap", &self.cap)
            .field("file", &self.file)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PlanCache {
    /// A memory-only cache holding at most `cap` plans (minimum 1).
    #[must_use]
    pub fn memory(cap: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cap: cap.max(1),
            clock: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            file: None,
            persist_ok: AtomicBool::new(true),
            load_report: LoadReport::default(),
            obs: Obs::off(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a persistent cache under `dir`, warm-loading
    /// `plans.jsonl` with per-record verification. Never fails: corrupt
    /// records are quarantined, I/O errors degrade to memory-only
    /// serving — both observable via [`PlanCache::load_report`] /
    /// [`PlanCache::stats`] and the attached [`Obs`].
    #[must_use]
    pub fn open(dir: &Path, cap: usize, obs: Obs) -> Self {
        let mut cache = Self::memory(cap);
        cache.obs = obs;
        cache.file = Some(dir.join("plans.jsonl"));
        if let Err(e) = fs::create_dir_all(dir) {
            cache.degrade("create cache dir", &e);
            return cache;
        }
        cache.warm_load();
        cache
    }

    /// Attaches an observability handle after construction (counters
    /// `cache.hit` / `cache.miss` / `cache.evict` / `cache.quarantine` /
    /// `cache.demote` / `cache.poisoned` / `cache.degraded` and the
    /// degrade/quarantine events). [`PlanCache::open`] takes the handle
    /// directly; this serves memory-only caches.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// What the warm load found (all zeros for a memory-only cache).
    #[must_use]
    pub const fn load_report(&self) -> LoadReport {
        self.load_report
    }

    /// The persistence generation: how many times the file has been
    /// rewritten over its lifetime (carried across restarts by the file
    /// header).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Whether the cache is still writing through to disk (`false` for
    /// memory-only caches and after an I/O degrade).
    #[must_use]
    pub fn persistent(&self) -> bool {
        self.file.is_some() && self.persist_ok.load(Ordering::Relaxed)
    }

    /// Records currently held in memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_unpoisoned(s).map.len()).sum()
    }

    /// Whether the cache holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        &self.shards[(key.hi as usize) & (SHARDS - 1)]
    }

    /// Looks a key up, counting hit/miss and touching the LRU clock.
    /// The returned record is a *candidate* — the caller must validate
    /// it before serving (see the [module docs](self)). The second slot
    /// carries the memoized cross-check report when the record already
    /// passed validation in this process ([`PlanCache::mark_verified`]).
    #[must_use]
    pub fn lookup(&self, key: &PlanKey) -> Option<(PlanRecord, Option<SimReport>)> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = lock_unpoisoned(self.shard(key));
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.obs.enabled() {
                    self.obs.counter("cache.hit").inc();
                }
                Some((entry.record.clone(), entry.verified.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if self.obs.enabled() {
                    self.obs.counter("cache.miss").inc();
                }
                None
            }
        }
    }

    /// Looks a key up without counting or touching the LRU clock —
    /// used by probes that must not skew the hit rate.
    #[must_use]
    pub fn peek(&self, key: &PlanKey) -> Option<PlanRecord> {
        lock_unpoisoned(self.shard(key))
            .map
            .get(key)
            .map(|e| e.record.clone())
    }

    /// A snapshot of every record currently held, in no particular
    /// order (diagnostics, tests, CLI inspection).
    #[must_use]
    pub fn records(&self) -> Vec<PlanRecord> {
        self.shards
            .iter()
            .flat_map(|s| {
                lock_unpoisoned(s)
                    .map
                    .values()
                    .map(|e| e.record.clone())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Inserts (or replaces) a record and writes the file through when
    /// persistence is healthy. LRU pressure evicts the stalest entry of
    /// the record's shard once the shard exceeds its slice of the cap.
    /// The record starts *unverified*: its first serve pays the full
    /// BSP cross-check ([`PlanCache::insert_verified`] skips that for
    /// records whose report the caller just computed).
    pub fn insert(&self, record: PlanRecord) {
        self.insert_entry(record, None);
    }

    /// [`PlanCache::insert`] for a record admitted straight from a
    /// fresh plan: the caller's own simulation report is memoized, so
    /// the record's first serve validates without re-simulating.
    pub fn insert_verified(&self, record: PlanRecord, report: SimReport) {
        self.insert_entry(record, Some(report));
    }

    /// Memoizes a passed cross-check for a resident record (no-op if it
    /// was evicted meanwhile). Subsequent [`PlanCache::lookup`] hits
    /// carry the report and skip the re-simulation.
    pub fn mark_verified(&self, key: &PlanKey, report: SimReport) {
        if let Some(entry) = lock_unpoisoned(self.shard(key)).map.get_mut(key) {
            entry.verified = Some(report);
        }
    }

    fn insert_entry(&self, record: PlanRecord, verified: Option<SimReport>) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let key = record.key;
        let shard_cap = self.cap.div_ceil(SHARDS).max(1);
        {
            let mut shard = lock_unpoisoned(self.shard(&key));
            shard.map.insert(
                key,
                Entry {
                    record,
                    tick,
                    verified,
                },
            );
            while shard.map.len() > shard_cap {
                let stalest = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(k, _)| *k)
                    .expect("non-empty shard has a minimum");
                shard.map.remove(&stalest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if self.obs.enabled() {
                    self.obs.counter("cache.evict").inc();
                }
            }
        }
        self.persist();
    }

    /// Removes a record (poisoning eviction). Returns whether it was
    /// present.
    pub fn evict(&self, key: &PlanKey) -> bool {
        let removed = lock_unpoisoned(self.shard(key)).map.remove(key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            if self.obs.enabled() {
                self.obs.counter("cache.evict").inc();
                self.obs.counter("cache.poisoned").inc();
            }
            self.persist();
        }
        removed
    }

    /// Counts a validated hit that was demoted to a replan warm-start
    /// (stale-hardware serving; the record itself stays cached for
    /// healthy requests).
    pub fn note_demotion(&self) {
        self.demotions.fetch_add(1, Ordering::Relaxed);
        if self.obs.enabled() {
            self.obs.counter("cache.demote").inc();
        }
    }

    // --- persistence --------------------------------------------------

    fn degrade(&self, what: &str, err: &io::Error) {
        // First error wins; later ones are already degraded.
        let first = self.persist_ok.swap(false, Ordering::Relaxed);
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        if first && self.obs.enabled() {
            self.obs.counter("cache.degraded").inc();
            self.obs.event(
                "cache.degraded",
                &[
                    ("op", what.to_owned().into()),
                    ("error", err.to_string().into()),
                ],
            );
        }
    }

    fn quarantine_line(&self, sidecar: &Path, line: &str, reason: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        if self.obs.enabled() {
            self.obs.counter("cache.quarantine").inc();
            self.obs.event(
                "cache.quarantine",
                &[
                    ("reason", reason.to_owned().into()),
                    ("bytes", line.len().into()),
                ],
            );
        }
        // Best-effort: losing the postmortem copy must not fail the
        // load (the bad line is dropped from the rewrite either way).
        let _ = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(sidecar)
            .and_then(|mut f| writeln!(f, "{line}"));
    }

    fn warm_load(&mut self) {
        let Some(file) = self.file.clone() else {
            return;
        };
        let sidecar = file.with_extension("jsonl.quarantine");
        let text = match fs::read_to_string(&file) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return,
            Err(e) => {
                self.degrade("read cache file", &e);
                return;
            }
        };
        let mut quarantined = 0usize;
        let mut loaded = 0usize;
        let mut lines = text.split_inclusive('\n');
        match lines.next() {
            None => {}
            Some(header) => match header.strip_suffix('\n').and_then(header_generation) {
                Some(generation) => {
                    self.generation.store(generation, Ordering::Relaxed);
                    for raw in lines {
                        let Some(line) = raw.strip_suffix('\n') else {
                            // Truncated tail: the crash interrupted this
                            // write mid-line.
                            self.quarantine_line(&sidecar, raw, "truncated-tail");
                            quarantined += 1;
                            continue;
                        };
                        if line.is_empty() {
                            continue;
                        }
                        match record_from_line(line) {
                            Some(record) => {
                                let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                                lock_unpoisoned(self.shard(&record.key)).map.insert(
                                    record.key,
                                    Entry {
                                        record,
                                        tick,
                                        verified: None,
                                    },
                                );
                                loaded += 1;
                            }
                            None => {
                                self.quarantine_line(&sidecar, line, "checksum-or-schema");
                                quarantined += 1;
                            }
                        }
                    }
                }
                None => {
                    // The header itself is unreadable: nothing below it
                    // can be trusted — quarantine the whole file.
                    self.quarantine_line(&sidecar, text.trim_end_matches('\n'), "bad-header");
                    quarantined += 1;
                }
            },
        }
        self.load_report = LoadReport { loaded, quarantined };
        if quarantined > 0 {
            // Rewrite immediately so the bad bytes cannot resurface.
            self.persist();
        }
    }

    /// Writes the full snapshot through temp-file + atomic rename.
    /// Called with no shard lock held; concurrent persists may
    /// interleave, but each writes a complete, checksummed snapshot, so
    /// the file is always wholly one generation.
    fn persist(&self) {
        let Some(file) = &self.file else { return };
        if !self.persist_ok.load(Ordering::Relaxed) {
            return;
        }
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let mut out = header_line(generation);
        out.push('\n');
        for shard in &self.shards {
            for entry in lock_unpoisoned(shard).map.values() {
                out.push_str(&record_to_line(&entry.record));
                out.push('\n');
            }
        }
        let tmp = file.with_extension("jsonl.tmp");
        let result = fs::write(&tmp, out.as_bytes()).and_then(|()| fs::rename(&tmp, file));
        if let Err(e) = result {
            self.degrade("persist cache file", &e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(hi: u64, cost: f64) -> PlanRecord {
        PlanRecord {
            key: PlanKey { hi, lo: hi ^ 0xabcd },
            strategy: Strategy::AccPar,
            levels: 2,
            cost,
            plan: PlanTree::uniform(&vec![
                NetworkPlan::uniform(
                    3,
                    LayerPlan::new(PartitionType::TypeII, Ratio::clamped(0.375)),
                );
                2
            ]),
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let r = record(7, 1.234e-3_f64 + f64::EPSILON);
        let line = record_to_line(&r);
        assert!(!line.contains('\n'));
        let back = record_from_line(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.cost.to_bits(), r.cost.to_bits());
    }

    #[test]
    fn any_tampered_byte_is_rejected() {
        let line = record_to_line(&record(9, 0.5));
        for i in 0..line.len() {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bytes) else {
                continue;
            };
            if s == line {
                continue;
            }
            // Either the checksum rejects the line, or (for a flip
            // inside the stored crc that still mismatches) it parses to
            // nothing — never to a *different* record.
            if let Some(r) = record_from_line(&s) {
                assert_eq!(r, record(9, 0.5), "flip at byte {i} changed the record");
            }
        }
    }

    #[test]
    fn header_round_trips_and_rejects_wrong_version() {
        let line = header_line(17);
        assert_eq!(header_generation(&line), Some(17));
        let forged = line.replace("\"version\":1", "\"version\":2");
        assert_eq!(header_generation(&forged), None);
    }

    #[test]
    fn lru_evicts_the_stalest_entry_of_a_full_shard() {
        let cache = PlanCache::memory(SHARDS); // one slot per shard
        let a = record(0, 0.1); // shard 0
        let b = record(SHARDS as u64, 0.2); // also shard 0
        cache.insert(a.clone());
        cache.insert(b.clone());
        assert!(cache.peek(&a.key).is_none());
        assert_eq!(cache.peek(&b.key).unwrap(), b);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lookup_counts_and_peek_does_not() {
        let cache = PlanCache::memory(4);
        let r = record(3, 0.3);
        cache.insert(r.clone());
        assert!(cache.peek(&r.key).is_some());
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        assert!(cache.lookup(&r.key).is_some());
        assert!(cache.lookup(&record(4, 0.0).key).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn verification_memo_is_in_memory_only() {
        let dummy_report = || SimReport {
            total_secs: 0.5,
            compute_secs: 0.5,
            psum_secs: 0.0,
            conversion_secs: 0.0,
            update_secs: 0.0,
            per_layer: Vec::new(),
            leaf_busy_secs: Vec::new(),
        };
        let dir = std::env::temp_dir().join(format!(
            "accpar-cache-memo-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cache = PlanCache::open(&dir, 16, Obs::off());
        // Plain insert starts unverified; mark_verified memoizes.
        let r = record(1, 0.5);
        cache.insert(r.clone());
        assert!(cache.lookup(&r.key).unwrap().1.is_none());
        cache.mark_verified(&r.key, dummy_report());
        assert!(cache.lookup(&r.key).unwrap().1.is_some());
        // insert_verified memoizes up front; replacing resets it.
        let s = record(2, 0.25);
        cache.insert_verified(s.clone(), dummy_report());
        assert!(cache.lookup(&s.key).unwrap().1.is_some());
        cache.insert(s.clone());
        assert!(cache.lookup(&s.key).unwrap().1.is_none());
        drop(cache);
        // Nothing verified survives the disk round-trip: reloaded
        // records must re-earn their cross-check.
        let reloaded = PlanCache::open(&dir, 16, Obs::off());
        assert!(reloaded.lookup(&r.key).unwrap().1.is_none());
        assert!(reloaded.lookup(&s.key).unwrap().1.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_and_warm_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "accpar-cache-rt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cache = PlanCache::open(&dir, 16, Obs::off());
        cache.insert(record(1, 0.25));
        cache.insert(record(2, 0.5));
        drop(cache);
        let reloaded = PlanCache::open(&dir, 16, Obs::off());
        assert_eq!(reloaded.load_report(), LoadReport { loaded: 2, quarantined: 0 });
        assert_eq!(reloaded.peek(&record(1, 0.25).key).unwrap(), record(1, 0.25));
        assert!(reloaded.generation() >= 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_degrades_to_memory_only() {
        let cache = PlanCache::open(Path::new("/proc/definitely/not/writable"), 4, Obs::off());
        assert!(!cache.persistent());
        cache.insert(record(5, 0.1));
        assert!(cache.peek(&record(5, 0.1).key).is_some());
        assert!(cache.stats().io_errors >= 1);
    }
}
