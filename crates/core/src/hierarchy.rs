//! Recursive hierarchical planning (§5.1): apply the layer-wise search
//! once per bisection level, shrinking the tensors by each level's chosen
//! shares on the way down.
//!
//! On a heterogeneous array the two halves of a cut differ, so the
//! sub-searches may select different plans inside each half — the result
//! is therefore a [`PlanTree`], not a flat per-level plan.

use crate::error::PlanError;
use crate::memo::{self, SearchCache};
use crate::search::{LevelSearcher, SearchConfig};
use accpar_cost::{CostModel, PairEnv};
use accpar_dnn::TrainView;
use accpar_hw::GroupNode;
use accpar_obs::Obs;
use accpar_partition::{LayerPlan, NetworkPlan, PlanTree, ShardScales};
use accpar_runtime::{Budget, Pool, StopReason};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// How much of a budgeted hierarchy walk was actually solved.
///
/// Levels are all-or-nothing: a level whose search the budget stopped
/// falls back — together with its entire subtree — to the data-parallel
/// baseline, so a partial plan is always feasible end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnytimeReport {
    /// Bisection levels solved to DP optimality.
    pub solved_levels: usize,
    /// Levels that fell back to the data-parallel baseline.
    pub fallback_levels: usize,
    /// Why the walk stopped early, if it did.
    pub stop: Option<StopReason>,
}

impl AnytimeReport {
    /// All levels the walk visited.
    #[must_use]
    pub const fn total_levels(&self) -> usize {
        self.solved_levels + self.fallback_levels
    }

    /// Fraction of levels solved to DP optimality (1.0 when there was
    /// nothing to solve).
    #[must_use]
    pub fn completeness(&self) -> f64 {
        if self.total_levels() == 0 {
            1.0
        } else {
            self.solved_levels as f64 / self.total_levels() as f64
        }
    }

    /// Whether every level was solved (no budget stop, no fallback).
    #[must_use]
    pub const fn is_complete(&self) -> bool {
        self.fallback_levels == 0 && self.stop.is_none()
    }
}

/// Shared mutable progress state for one budgeted walk: sibling levels
/// may run in parallel, so the counters are atomics. The stop reason is
/// first-writer-wins and, once set, makes every remaining level fall
/// back without touching the budget again.
#[derive(Debug, Default)]
struct Progress {
    solved: AtomicUsize,
    fallback: AtomicUsize,
    stop: AtomicU8,
}

impl Progress {
    fn note_stop(&self, reason: StopReason) {
        let code = match reason {
            StopReason::Deadline => 1,
            StopReason::NodeBudget => 2,
            StopReason::Cancelled => 3,
        };
        let _ = self
            .stop
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn stopped(&self) -> Option<StopReason> {
        match self.stop.load(Ordering::Relaxed) {
            1 => Some(StopReason::Deadline),
            2 => Some(StopReason::NodeBudget),
            3 => Some(StopReason::Cancelled),
            _ => None,
        }
    }

    fn report(&self) -> AnytimeReport {
        AnytimeReport {
            solved_levels: self.solved.load(Ordering::Relaxed),
            fallback_levels: self.fallback.load(Ordering::Relaxed),
            stop: self.stopped(),
        }
    }
}

/// Recursively plans every bisection level below `node`.
///
/// Returns `None` when `node` is a leaf (nothing to bisect). The
/// `scales` argument carries the per-layer shard scales accumulated from
/// the ancestors; pass `None` at the root.
///
/// # Errors
///
/// Propagates [`PlanError::EmptySearchSpace`] from the level searcher.
pub fn plan_node(
    view: &TrainView,
    node: &GroupNode,
    model: &CostModel,
    config: &SearchConfig,
    scales: Option<&[ShardScales]>,
) -> Result<Option<PlanTree>, PlanError> {
    plan_node_with(view, node, model, config, scales, Pool::serial(), None)
}

/// Like [`plan_node`], with a thread budget for the independent
/// left/right child recursions (split between them) and an optional
/// shared [`SearchCache`] memoizing cost cells, block transfer tables
/// and whole level outcomes across the tree.
///
/// With a serial pool and no cache this is exactly [`plan_node`]; with
/// either enabled the resulting [`PlanTree`] is bit-identical — the
/// cache keys canonicalize every `f64` input and the recursion order
/// does not influence any level's search.
///
/// # Errors
///
/// Propagates [`PlanError::EmptySearchSpace`] from the level searcher.
pub fn plan_node_with(
    view: &TrainView,
    node: &GroupNode,
    model: &CostModel,
    config: &SearchConfig,
    scales: Option<&[ShardScales]>,
    pool: Pool,
    cache: Option<&SearchCache>,
) -> Result<Option<PlanTree>, PlanError> {
    plan_node_traced(view, node, model, config, scales, pool, cache, &Obs::off(), None)
}

/// Like [`plan_node_with`], emitting one `plan.level` span per
/// bisection level (nested under `parent`) and feeding the
/// `planner.level_search_ns` histogram on every level that actually
/// searches. With a disabled [`Obs`] this is exactly
/// [`plan_node_with`]: instrumentation never influences the plan.
///
/// # Errors
///
/// Propagates [`PlanError::EmptySearchSpace`] from the level searcher.
#[allow(clippy::too_many_arguments)]
pub fn plan_node_traced(
    view: &TrainView,
    node: &GroupNode,
    model: &CostModel,
    config: &SearchConfig,
    scales: Option<&[ShardScales]>,
    pool: Pool,
    cache: Option<&SearchCache>,
    obs: &Obs,
    parent: Option<u64>,
) -> Result<Option<PlanTree>, PlanError> {
    plan_node_budgeted(
        view,
        node,
        model,
        config,
        scales,
        pool,
        cache,
        obs,
        parent,
        &Budget::unlimited(),
    )
    .map(|(tree, _)| tree)
}

/// Like [`plan_node_traced`], under a cooperative [`Budget`].
///
/// Every level charges one budget node per layer row (memo hits charge
/// the same amount, so budget semantics are cache-independent). When
/// the budget stops a level's search, that level and its whole subtree
/// fall back to the per-layer data-parallel baseline and planning of
/// the remaining tree continues without further budget charges — the
/// returned [`AnytimeReport`] says how many levels kept their
/// DP-optimal assignment and why the walk stopped.
///
/// Under a serial pool the solved set is deterministic: levels are
/// visited in pre-order, so a given budget always solves the same
/// prefix. Under a parallel pool sibling subtrees race for the shared
/// budget; the result is always feasible but which levels solved may
/// vary run to run.
///
/// # Errors
///
/// Propagates [`PlanError::EmptySearchSpace`],
/// [`PlanError::WorkerPanic`] and [`PlanError::NonFinite`] from the
/// level searcher. A budget stop is *not* an error — it is reported via
/// the [`AnytimeReport`].
#[allow(clippy::too_many_arguments)]
pub fn plan_node_budgeted(
    view: &TrainView,
    node: &GroupNode,
    model: &CostModel,
    config: &SearchConfig,
    scales: Option<&[ShardScales]>,
    pool: Pool,
    cache: Option<&SearchCache>,
    obs: &Obs,
    parent: Option<u64>,
    budget: &Budget,
) -> Result<(Option<PlanTree>, AnytimeReport), PlanError> {
    let progress = Progress::default();
    let ctx = Ctx {
        view,
        model,
        config,
        cache,
        obs,
        budget,
        progress: &progress,
        // Classification is a pure function of the view: compute it
        // once here and share it across every level of the tree.
        iso: config
            .collapse
            .then(|| accpar_dnn::iso::IsoClasses::of(view)),
        // The fingerprint only ever enters cache keys; without a cache
        // the whole walk is skipped.
        fp: match cache {
            Some(_) => {
                memo::view_fingerprint(view, &model.config())
                    ^ memo::context_hash(&model.config(), &config.solver, &config.types)
            }
            None => 0,
        },
    };
    let full;
    let scales = match scales {
        Some(s) => s,
        None => {
            full = vec![ShardScales::full(); view.weighted_len()];
            &full
        }
    };
    let tree = plan_rec(&ctx, node, scales, pool, parent, 0)?;
    Ok((tree, progress.report()))
}

/// Per-plan invariants threaded through the recursion.
struct Ctx<'a> {
    view: &'a TrainView,
    model: &'a CostModel,
    config: &'a SearchConfig,
    cache: Option<&'a SearchCache>,
    obs: &'a Obs,
    budget: &'a Budget,
    progress: &'a Progress,
    /// The per-plan isomorphism classification (`Some` iff
    /// [`SearchConfig::collapse`] is on), shared by every level.
    iso: Option<accpar_dnn::iso::IsoClasses>,
    /// View fingerprint ⊕ context hash — constant across the tree, so a
    /// level memo key only adds the (env, scales) bits that vary.
    fp: u64,
}

/// The per-level data-parallel baseline: Type-I, equal ratio, every
/// layer — always feasible, and exactly what `core::baselines` builds.
fn fallback_level(ctx: &Ctx<'_>) -> NetworkPlan {
    NetworkPlan::uniform(ctx.view.weighted_len(), LayerPlan::data_parallel())
}

/// Builds the data-parallel subtree for `node` (mirroring its shape)
/// and counts every level it covers as a fallback level.
fn fallback_rec(ctx: &Ctx<'_>, node: &GroupNode) -> Option<PlanTree> {
    node.children()?;
    ctx.progress.fallback.fetch_add(1, Ordering::Relaxed);
    let level = fallback_level(ctx);
    let (child_a, child_b) = node.children().expect("checked above");
    Some(match (fallback_rec(ctx, child_a), fallback_rec(ctx, child_b)) {
        (Some(l), Some(r)) => PlanTree::branch(level, l, r),
        _ => PlanTree::leaf(level),
    })
}

fn plan_rec(
    ctx: &Ctx<'_>,
    node: &GroupNode,
    scales: &[ShardScales],
    pool: Pool,
    parent: Option<u64>,
    depth: usize,
) -> Result<Option<PlanTree>, PlanError> {
    let Some(env) = PairEnv::from_node(node) else {
        return Ok(None);
    };
    // The span covers the level's search *and* its subtree, so nesting
    // in the trace mirrors the bisection hierarchy.
    let span = ctx.obs.span_at(
        "plan.level",
        parent,
        &[("depth", depth.into()), ("layers", scales.len().into())],
    );
    // Tier-1 memo: a whole level search. Symmetric sibling subtrees (a
    // homogeneous half split evenly) produce bitwise-equal keys. The key
    // is built once and reused for the miss-path insert.
    let key = ctx
        .cache
        .map(|_| memo::LevelKey::new(ctx.fp, &env, scales));
    let cached = match (ctx.cache, &key) {
        (Some(c), Some(k)) => c.level_lookup(k),
        _ => None,
    };
    let cached_hit = cached.is_some();
    // A level is all-or-nothing under the budget: either its search
    // completes and keeps the DP-optimal assignment, or the level (and
    // its whole subtree) falls back to the data-parallel baseline. Once
    // any level stops, the rest of the walk falls back without touching
    // the budget again, so a zero budget deterministically yields the
    // pure data-parallel plan.
    let searched: Result<_, StopReason> = if let Some(reason) = ctx.progress.stopped() {
        Err(reason)
    } else {
        match cached {
            Some(outcome) => {
                // The level's cost table was served wholesale from the
                // memo. Charge the same rows a cold build would have:
                // budget semantics must not depend on cache warmth.
                // Under isomorphism collapse a cold build charges one
                // node per equivalence class, so the hit does too.
                let rows = match &ctx.iso {
                    Some(iso) => crate::search::collapse_group_count(iso, scales),
                    None => scales.len() as u64,
                };
                ctx.budget
                    .try_charge(rows)
                    .map(|()| {
                        if let Some(c) = ctx.cache {
                            c.note_cells(ctx.config.types.len() as u64 * rows);
                        }
                        outcome
                    })
            }
            None => {
                let timer = ctx.obs.timer("planner.level_search_ns");
                let result = LevelSearcher::with_budget_iso(
                    ctx.view,
                    ctx.model,
                    ctx.config,
                    &env,
                    Some(scales),
                    pool,
                    ctx.cache,
                    ctx.budget,
                    ctx.obs,
                    ctx.iso.as_ref(),
                )
                .and_then(|searcher| {
                    searcher
                        .search_budgeted(ctx.budget)
                        .map_err(PlanError::Interrupted)
                });
                drop(timer);
                match result {
                    Ok(outcome) => {
                        if let (Some(c), Some(k)) = (ctx.cache, key) {
                            c.level_insert(k, outcome.clone());
                        }
                        Ok(outcome)
                    }
                    Err(PlanError::Interrupted(reason)) => Err(reason),
                    // Real failures (empty space, worker panic,
                    // non-finite costs) are not budget stops.
                    Err(other) => return Err(other),
                }
            }
        }
    };
    let outcome = match searched {
        Ok(outcome) => {
            ctx.progress.solved.fetch_add(1, Ordering::Relaxed);
            outcome
        }
        Err(reason) => {
            ctx.progress.note_stop(reason);
            span.event(
                "plan.level_fallback",
                &[("depth", depth.into()), ("reason", reason.label().into())],
            );
            // The fallback covers this level and its entire subtree.
            return Ok(fallback_rec(ctx, node));
        }
    };
    span.event(
        "plan.level_done",
        &[
            ("depth", depth.into()),
            ("memo_hit", cached_hit.into()),
            ("cost", outcome.cost.into()),
        ],
    );

    let (child_a, child_b) = node.children().expect("env implies children");
    let scales_a: Vec<ShardScales> = scales
        .iter()
        .zip(outcome.plan.layers())
        .map(|(s, entry)| s.shrink(entry.ptype, entry.ratio.value()))
        .collect();
    let scales_b: Vec<ShardScales> = scales
        .iter()
        .zip(outcome.plan.layers())
        .map(|(s, entry)| s.shrink(entry.ptype, entry.ratio.complement().value()))
        .collect();

    let child_parent = span.id();
    let (left, right) = if pool.is_serial() {
        (
            plan_rec(ctx, child_a, &scales_a, pool, child_parent, depth + 1)?,
            plan_rec(ctx, child_b, &scales_b, pool, child_parent, depth + 1)?,
        )
    } else {
        // The two children are independent: split the budget and run
        // them concurrently. Results are position-bound, so ordering
        // (and thus the plan) is unaffected.
        let (pool_a, pool_b) = pool.split();
        let (l, r) = pool.par_join(
            || plan_rec(ctx, child_a, &scales_a, pool_a, child_parent, depth + 1),
            || plan_rec(ctx, child_b, &scales_b, pool_b, child_parent, depth + 1),
        );
        (l?, r?)
    };
    Ok(Some(match (left, right) {
        (Some(l), Some(r)) => PlanTree::branch(outcome.plan, l, r),
        _ => PlanTree::leaf(outcome.plan),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_cost::CostConfig;
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::{AcceleratorArray, GroupTree};
    use accpar_tensor::FeatureShape;

    fn view() -> TrainView {
        NetworkBuilder::new("t", FeatureShape::fc(128, 512))
            .linear("fc1", 512, 1024)
            .linear("fc2", 1024, 256)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
    }

    #[test]
    fn plan_tree_matches_group_tree_depth() {
        let view = view();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 3).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let plan = plan_node(&view, tree.root(), &model, &config, None)
            .unwrap()
            .unwrap();
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.plan().len(), 2);
    }

    #[test]
    fn leaf_node_yields_no_plan() {
        let view = view();
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let (leaf, _) = tree.root().children().unwrap();
        assert!(plan_node(&view, leaf, &model, &config, None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn heterogeneous_halves_may_differ() {
        // Not a strict requirement, but the machinery must at least
        // produce independent children structures.
        let view = view();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 2).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let plan = plan_node(&view, tree.root(), &model, &config, None)
            .unwrap()
            .unwrap();
        let (l, r) = plan.children().unwrap();
        assert_eq!(l.depth(), 1);
        assert_eq!(r.depth(), 1);
    }
}
