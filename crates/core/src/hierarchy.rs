//! Recursive hierarchical planning (§5.1): apply the layer-wise search
//! once per bisection level, shrinking the tensors by each level's chosen
//! shares on the way down.
//!
//! On a heterogeneous array the two halves of a cut differ, so the
//! sub-searches may select different plans inside each half — the result
//! is therefore a [`PlanTree`], not a flat per-level plan.

use crate::error::PlanError;
use crate::search::{LevelSearcher, SearchConfig};
use accpar_cost::{CostModel, PairEnv};
use accpar_dnn::TrainView;
use accpar_hw::GroupNode;
use accpar_partition::{PlanTree, ShardScales};

/// Recursively plans every bisection level below `node`.
///
/// Returns `None` when `node` is a leaf (nothing to bisect). The
/// `scales` argument carries the per-layer shard scales accumulated from
/// the ancestors; pass `None` at the root.
///
/// # Errors
///
/// Propagates [`PlanError::EmptySearchSpace`] from the level searcher.
pub fn plan_node(
    view: &TrainView,
    node: &GroupNode,
    model: &CostModel,
    config: &SearchConfig,
    scales: Option<Vec<ShardScales>>,
) -> Result<Option<PlanTree>, PlanError> {
    let Some(env) = PairEnv::from_node(node) else {
        return Ok(None);
    };
    let scales = scales.unwrap_or_else(|| vec![ShardScales::full(); view.weighted_len()]);
    let searcher = LevelSearcher::new(view, model, config, &env, Some(scales.clone()))?;
    let outcome = searcher.search();

    let (child_a, child_b) = node.children().expect("env implies children");
    let scales_a: Vec<ShardScales> = scales
        .iter()
        .zip(outcome.plan.layers())
        .map(|(s, entry)| s.shrink(entry.ptype, entry.ratio.value()))
        .collect();
    let scales_b: Vec<ShardScales> = scales
        .iter()
        .zip(outcome.plan.layers())
        .map(|(s, entry)| s.shrink(entry.ptype, entry.ratio.complement().value()))
        .collect();

    let left = plan_node(view, child_a, model, config, Some(scales_a))?;
    let right = plan_node(view, child_b, model, config, Some(scales_b))?;
    Ok(Some(match (left, right) {
        (Some(l), Some(r)) => PlanTree::branch(outcome.plan, l, r),
        _ => PlanTree::leaf(outcome.plan),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_cost::CostConfig;
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::{AcceleratorArray, GroupTree};
    use accpar_tensor::FeatureShape;

    fn view() -> TrainView {
        NetworkBuilder::new("t", FeatureShape::fc(128, 512))
            .linear("fc1", 512, 1024)
            .linear("fc2", 1024, 256)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
    }

    #[test]
    fn plan_tree_matches_group_tree_depth() {
        let view = view();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 3).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let plan = plan_node(&view, tree.root(), &model, &config, None)
            .unwrap()
            .unwrap();
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.plan().len(), 2);
    }

    #[test]
    fn leaf_node_yields_no_plan() {
        let view = view();
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let (leaf, _) = tree.root().children().unwrap();
        assert!(plan_node(&view, leaf, &model, &config, None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn heterogeneous_halves_may_differ() {
        // Not a strict requirement, but the machinery must at least
        // produce independent children structures.
        let view = view();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 2).unwrap();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let plan = plan_node(&view, tree.root(), &model, &config, None)
            .unwrap()
            .unwrap();
        let (l, r) = plan.children().unwrap();
        assert_eq!(l.depth(), 1);
        assert_eq!(r.depth(), 1);
    }
}
