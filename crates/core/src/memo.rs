//! Cross-level memoization for the hierarchical planner.
//!
//! One [`SearchCache`] is shared across every level of a hierarchical
//! plan (and across replan candidates) and memoizes three tiers of the
//! search, coarsest first:
//!
//! 1. **Level outcomes** — a whole [`LevelSearcher`] run, keyed by the
//!    view's structural fingerprint, the level's [`PairEnv`] bits and
//!    the per-layer [`ShardScales`] bits. On a homogeneous half split
//!    exactly in two, both children see bitwise-identical environments
//!    and scales, so entire sibling subtrees resolve from the memo.
//! 2. **Block transfer tables** — the §5.2 multi-path optimization of
//!    one residual block between every (entry state, junction exit)
//!    pair, keyed by the branches' layer signatures/scales, the entry
//!    states, the fork size and the environment. Repeated ResNet
//!    blocks within one level hit this tier.
//! 3. **Layer table cells** — per-(layer, type) ratio/cost solves,
//!    delegated to [`accpar_cost::CostCache`]. Shape-identical VGG
//!    conv layers hit this tier.
//!
//! Every key canonicalizes `f64`s via [`f64::to_bits`], so a
//! `FaultModel`-degraded tree — whose group capabilities differ from the
//! healthy tree's in at least one bit — can never alias a healthy
//! entry, and cached values are bitwise identical to what a fresh
//! computation would produce. Lookups never iterate the maps, so
//! `HashMap`'s iteration order cannot leak into results.
//!
//! [`LevelSearcher`]: crate::search::LevelSearcher

use crate::search::SearchOutcome;
use accpar_cost::cache::{env_bits, scales_bits, FxHashMap, FxHasher, Row};
use accpar_cost::{CostCache, CostConfig, CostModel, LayerSig, Objective, PairEnv, RatioSolver};
use accpar_dnn::{TrainElem, TrainLayer, TrainView};
use accpar_partition::{PartitionType, Ratio, ShardScales};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A memoized block optimization: `table[entry][exit]` holds the summed
/// branch cost plus the per-slot type choices, where *slot* numbers the
/// block's branch layers branch-major (position-independent, so
/// shape-identical blocks elsewhere in the network can reuse the entry).
pub(crate) type BlockTransfer = Vec<Vec<(f64, Vec<(usize, usize)>)>>;

/// Canonical key of one block transfer table (tier 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct BlockKey {
    /// Every branch layer's signature and shard-scale bits,
    /// branch-major; `branch_lens` delimits the branches (flattened to
    /// keep the key a two-allocation build on the search's hot path).
    layers: Vec<(LayerSig, [u64; 4])>,
    branch_lens: Vec<u32>,
    /// The DP's predecessor states (`None` when the block opens the
    /// network): partition type and ratio bits per type index.
    entries: Option<Vec<(PartitionType, u64)>>,
    fork_elems: u64,
    env: [u64; 10],
    ctx: u64,
}

impl BlockKey {
    /// Builds the canonical key for a block at the given entry states.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        branches: &[Vec<TrainLayer>],
        scales: &[ShardScales],
        entries: Option<&[(PartitionType, Ratio)]>,
        fork_elems: u64,
        env: &PairEnv,
        ctx: u64,
        config: &CostConfig,
    ) -> Self {
        let mut layers = Vec::with_capacity(branches.iter().map(Vec::len).sum());
        let mut branch_lens = Vec::with_capacity(branches.len());
        for b in branches {
            branch_lens.push(b.len() as u32);
            layers.extend(
                b.iter()
                    .map(|l| (LayerSig::of(l, config), scales_bits(scales[l.index()]))),
            );
        }
        Self {
            layers,
            branch_lens,
            entries: entries.map(|es| {
                es.iter()
                    .map(|&(t, r)| (t, r.value().to_bits()))
                    .collect()
            }),
            fork_elems,
            env: env_bits(env),
            ctx,
        }
    }
}

/// Canonical key of one whole-level search (tier 1). Built once per
/// level request and reused for the miss-path insert.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct LevelKey {
    /// View fingerprint xor context hash (both constant per plan run).
    fp: u64,
    env: [u64; 10],
    scales: Vec<[u64; 4]>,
}

impl LevelKey {
    /// Builds the canonical key of one level search.
    pub(crate) fn new(fp: u64, env: &PairEnv, scales: &[ShardScales]) -> Self {
        Self {
            fp,
            env: env_bits(env),
            scales: scales.iter().map(|&s| scales_bits(s)).collect(),
        }
    }
}

/// Hit/miss counters of a [`SearchCache`], by tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Layer-table cells answered from the memo.
    pub layer_hits: u64,
    /// Layer-table cells that had to compute.
    pub layer_misses: u64,
    /// Block transfer tables answered from the memo.
    pub block_hits: u64,
    /// Block transfer tables that had to compute.
    pub block_misses: u64,
    /// Whole-level searches answered from the memo.
    pub level_hits: u64,
    /// Whole-level searches that had to run.
    pub level_misses: u64,
    /// Layer-table cells the planner *asked for* (`k · N` per level
    /// request, whether the level hit or missed).
    pub cells_requested: u64,
}

impl CacheStats {
    /// Fraction of requested layer-table cells served without
    /// recomputation: `1 − computed / requested`. A level-memo hit
    /// serves its whole table from cache, so this is the end-to-end
    /// service rate of the cost tables, not just the innermost map's
    /// lookup ratio.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.cells_requested == 0 {
            return 0.0;
        }
        let computed = self.layer_misses.min(self.cells_requested) as f64;
        1.0 - computed / self.cells_requested as f64
    }

    /// Plain lookup hit ratio across all three tiers.
    #[must_use]
    pub fn lookup_hit_rate(&self) -> f64 {
        let hits = self.layer_hits + self.block_hits + self.level_hits;
        let total = hits + self.layer_misses + self.block_misses + self.level_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layers {}/{} blocks {}/{} levels {}/{} (cell service rate {:.1}%)",
            self.layer_hits,
            self.layer_hits + self.layer_misses,
            self.block_hits,
            self.block_hits + self.block_misses,
            self.level_hits,
            self.level_hits + self.level_misses,
            self.hit_rate() * 100.0
        )
    }
}

/// The three-tier search memo (see the module docs above).
///
/// Thread-safe and shared by reference across the planner's workers.
/// Reuse across *different* networks or cost configurations is safe —
/// the view fingerprint and context hash key every tier — but pointless;
/// the intended scope is one [`Planner`](crate::Planner) (plans,
/// replans and candidate evaluations of one network).
#[derive(Default)]
pub struct SearchCache {
    layers: CostCache,
    blocks: Mutex<FxHashMap<BlockKey, Arc<BlockTransfer>>>,
    levels: Mutex<FxHashMap<LevelKey, SearchOutcome>>,
    block_hits: AtomicU64,
    block_misses: AtomicU64,
    level_hits: AtomicU64,
    level_misses: AtomicU64,
    cells_requested: AtomicU64,
}

impl SearchCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes the layer-cell tier's hit/miss/per-type counters and
    /// solve timings to `obs` (see
    /// [`CostCache::observe`](accpar_cost::CostCache::observe)). A
    /// no-op when `obs` is disabled; the first enabled registration
    /// wins for the cache's lifetime.
    pub fn observe(&self, obs: &accpar_obs::Obs) {
        self.layers.observe(obs);
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            layer_hits: self.layers.hits(),
            layer_misses: self.layers.misses(),
            block_hits: self.block_hits.load(Ordering::Relaxed),
            block_misses: self.block_misses.load(Ordering::Relaxed),
            level_hits: self.level_hits.load(Ordering::Relaxed),
            level_misses: self.level_misses.load(Ordering::Relaxed),
            cells_requested: self.cells_requested.load(Ordering::Relaxed),
        }
    }

    /// Tier-3 lookup: one layer's full row of (type → ratio/cost) cells.
    /// `None` when the type set is too wide for a row entry — fall back
    /// to [`SearchCache::layer_cell`].
    pub(crate) fn layer_row(
        &self,
        model: &CostModel,
        solver: &RatioSolver,
        layer: &TrainLayer,
        types: &[PartitionType],
        env: &PairEnv,
        scales: ShardScales,
    ) -> Option<Row> {
        self.layers
            .layer_row(model, solver, layer, types, env, scales)
    }

    /// Tier-3 lookup of a single (layer, type) cell.
    pub(crate) fn layer_cell(
        &self,
        model: &CostModel,
        solver: &RatioSolver,
        layer: &TrainLayer,
        ptype: PartitionType,
        env: &PairEnv,
        scales: ShardScales,
    ) -> (Ratio, f64) {
        self.layers
            .layer_ratio_cost(model, solver, layer, ptype, env, scales)
    }

    /// Records that a level request asked for `n` layer-table cells
    /// (whether they were then served from the level memo or computed).
    pub(crate) fn note_cells(&self, n: u64) {
        self.cells_requested.fetch_add(n, Ordering::Relaxed);
    }

    /// Tier-2 lookup.
    pub(crate) fn block_lookup(&self, key: &BlockKey) -> Option<Arc<BlockTransfer>> {
        let hit = lock(&self.blocks).get(key).cloned();
        match &hit {
            Some(_) => self.block_hits.fetch_add(1, Ordering::Relaxed),
            None => self.block_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Tier-2 insert; returns the stored table.
    pub(crate) fn block_insert(&self, key: BlockKey, table: BlockTransfer) -> Arc<BlockTransfer> {
        let table = Arc::new(table);
        lock(&self.blocks).insert(key, Arc::clone(&table));
        table
    }

    /// Tier-1 lookup.
    pub(crate) fn level_lookup(&self, key: &LevelKey) -> Option<SearchOutcome> {
        let hit = lock(&self.levels).get(key).cloned();
        match &hit {
            Some(_) => self.level_hits.fetch_add(1, Ordering::Relaxed),
            None => self.level_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Tier-1 insert.
    pub(crate) fn level_insert(&self, key: LevelKey, outcome: SearchOutcome) {
        lock(&self.levels).insert(key, outcome);
    }
}

impl fmt::Debug for SearchCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SearchCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic hash of everything that parameterizes the search
/// besides the layer/env/scale inputs: cost configuration, ratio policy
/// and the admissible type set.
pub(crate) fn context_hash(
    config: &CostConfig,
    solver: &RatioSolver,
    types: &[PartitionType],
) -> u64 {
    let mut h = FxHasher::default();
    config.format.hash(&mut h);
    (config.objective == Objective::CommOnly).hash(&mut h);
    config.roofline.hash(&mut h);
    config.skip_first_backward.hash(&mut h);
    match solver {
        RatioSolver::PaperLinear => 0u8.hash(&mut h),
        RatioSolver::BalancedExact => 1u8.hash(&mut h),
        RatioSolver::Fixed(r) => {
            2u8.hash(&mut h);
            r.value().to_bits().hash(&mut h);
        }
    }
    types.hash(&mut h);
    h.finish()
}

/// Deterministic structural fingerprint of a train view: element kinds,
/// layer signatures and indices, fork shapes and branch arrangements.
pub(crate) fn view_fingerprint(view: &TrainView, config: &CostConfig) -> u64 {
    let mut h = FxHasher::default();
    let iso = accpar_dnn::iso::IsoClasses::of(view);
    hash_view(&mut h, view, &iso, config);
    h.finish()
}

/// Feeds the canonical view structure into an arbitrary hasher state.
/// Shared between the single-lane [`view_fingerprint`] above and the
/// plan cache's two-lane content key, which primes each lane with a
/// different seed before hashing the same byte stream. Classification
/// is the expensive half of the fingerprint, so callers hashing more
/// than one lane pass the same [`IsoClasses`] to each.
///
/// The structure lane is the *canonical class multiset* of the view:
/// the element walk as a sequence of [`IsoClasses`] element class ids,
/// then each class's full content exactly once (via its representative
/// element). Raw layer indices never enter — they are determined by
/// walk order anyway — so the collapsed and uncollapsed planning paths
/// hash bit-identically by construction: the hash is a function of the
/// view alone, never of how the search will traverse it. A cache entry
/// written by either path therefore validates and hits from the other.
///
/// [`IsoClasses`]: accpar_dnn::iso::IsoClasses
pub(crate) fn hash_view(
    h: &mut impl std::hash::Hasher,
    view: &TrainView,
    iso: &accpar_dnn::iso::IsoClasses,
    config: &CostConfig,
) {
    let mut h = h;
    // The walk, collapsed to class ids (order-preserving).
    view.elems().len().hash(&mut h);
    for id in iso.elem_class_ids() {
        id.hash(&mut h);
    }
    // Each class's value-complete content, once, in class-id order.
    for class in 0..iso.elem_classes() {
        match &view.elems()[iso.elem_rep(class)] {
            TrainElem::Layer(l) => {
                0u8.hash(&mut h);
                LayerSig::of(l, config).hash(&mut h);
                l.heads().hash(&mut h);
            }
            TrainElem::Block { branches, fork, .. } => {
                1u8.hash(&mut h);
                fork.hash(&mut h);
                branches.len().hash(&mut h);
                for b in branches {
                    b.len().hash(&mut h);
                    for l in b {
                        LayerSig::of(l, config).hash(&mut h);
                        l.heads().hash(&mut h);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::CacheStats;

    #[test]
    fn empty_cache_rates_are_zero_not_nan() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.lookup_hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
        assert!(stats.lookup_hit_rate().is_finite());
    }

    #[test]
    fn rates_behave_once_lookups_arrive() {
        let stats = CacheStats {
            layer_hits: 3,
            layer_misses: 1,
            cells_requested: 4,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert!((stats.lookup_hit_rate() - 0.75).abs() < 1e-12);
    }
}
