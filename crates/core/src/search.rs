//! The layer-wise partition search of §5.1 (Eq. 9) with the multi-path
//! extension of §5.2.
//!
//! For one bisection level — a pair of accelerator groups described by a
//! [`PairEnv`] — the search assigns every weighted layer a basic
//! partition type `t ∈ 𝒯` and a partition ratio `α`, minimizing the
//! accumulated cost
//!
//! ```text
//! c(L_{i+1}, t) = min_{tt ∈ 𝒯} { c(L_i, tt) + E_cp(t) + E_cm(tt, t) }
//! ```
//!
//! by dynamic programming in `O(N·|𝒯|²)` instead of the brute-force
//! `O(|𝒯|^N)`. The brute-force enumeration is kept as
//! [`LevelSearcher::exhaustive`], the reference against which the DP's
//! optimality is certified in tests.
//!
//! **Multi-path blocks.** A ResNet residual block forks the trunk into
//! parallel branches that reconverge at an element-wise join. Following
//! Figure 4, the search enumerates the partition state on both sides of
//! the block and optimizes each branch independently between the two
//! states, summing branch costs (all branches must execute). The join
//! carries a *junction state*: a pseudo-layer of type `t` whose layout
//! semantics match a real type-`t` layer, so a single-branch block
//! degenerates exactly to the plain chain formula. Branch outputs are
//! re-laid-out into the junction state
//! ([`CostModel::relayout_cost`]); identity shortcuts pay the
//! fork-to-junction conversion.

use crate::error::PlanError;
use crate::memo::{BlockKey, BlockTransfer, SearchCache};
use accpar_cost::cache::{env_bits, scales_bits, FxHashMap, FxHasher};
use accpar_cost::{layer_ratio_cost, CostModel, PairEnv, RatioSolver};
use accpar_dnn::iso::IsoClasses;
use accpar_dnn::{TrainElem, TrainLayer, TrainView};
use accpar_partition::{LayerPlan, NetworkPlan, PartitionType, Ratio, ShardScales};
use accpar_runtime::{Budget, Pool, RetryPolicy, StopReason};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Packs a [`StopReason`] into an `AtomicU8` (0 = still running) so
/// parallel table-build workers can record the first reason they hit.
const fn stop_code(reason: StopReason) -> u8 {
    match reason {
        StopReason::Deadline => 1,
        StopReason::NodeBudget => 2,
        StopReason::Cancelled => 3,
    }
}

const fn decode_stop(code: u8) -> Option<StopReason> {
    match code {
        1 => Some(StopReason::Deadline),
        2 => Some(StopReason::NodeBudget),
        3 => Some(StopReason::Cancelled),
        _ => None,
    }
}

/// Configuration of a level search: the admissible partition types and
/// the ratio policy.
///
/// The type set is a [`Cow`] so the stock configurations
/// ([`accpar`](SearchConfig::accpar), [`hypar`](SearchConfig::hypar))
/// borrow `'static` slices — constructing one allocates nothing, which
/// matters on the replan and serve paths that build a fresh config per
/// request. Custom sets still work with `vec![...].into()`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// The admissible types (the DP's state set).
    pub types: Cow<'static, [PartitionType]>,
    /// How per-layer ratios are chosen.
    pub solver: RatioSolver,
    /// Isomorphism collapse: group the level's layers into structural
    /// equivalence classes ([`accpar_dnn::iso::IsoClasses`] refined by
    /// shard-scale bits), compute one cost-table row per class and
    /// stamp it across members, and share block transfer tables between
    /// identical blocks within the level. A row is a pure function of
    /// (layer signature, scales, env, context), so collapsed plans are
    /// bit-identical to uncollapsed ones; only the work — and the
    /// budget charge, one node per *class* — shrinks. On by default;
    /// disable for A/B debugging (`--no-iso` on the CLI).
    pub collapse: bool,
}

/// The HyPar state set: data/model parallelism only.
const HYPAR_TYPES: &[PartitionType] = &[PartitionType::TypeI, PartitionType::TypeII];

impl SearchConfig {
    /// AccPar: the complete three-type space with the Eq. 10 ratio
    /// solver (in its exact-balance form; see [`RatioSolver`]).
    #[must_use]
    pub fn accpar() -> Self {
        Self::accpar_with(RatioSolver::default())
    }

    /// AccPar's complete type space under a specific ratio solver.
    #[must_use]
    pub fn accpar_with(solver: RatioSolver) -> Self {
        Self {
            types: Cow::Borrowed(PartitionType::ALL_SLICE),
            solver,
            collapse: true,
        }
    }

    /// HyPar: data/model parallelism only (Type-I / Type-II), equal
    /// partitioning. Pair with [`accpar_cost::CostConfig::hypar`] for the
    /// communication-amount objective.
    #[must_use]
    pub fn hypar() -> Self {
        Self {
            types: Cow::Borrowed(HYPAR_TYPES),
            solver: RatioSolver::Fixed(Ratio::EQUAL),
            collapse: true,
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::accpar()
    }
}

/// The level-scope collapse partition: [`IsoClasses`] layer classes
/// refined by shard-scale bits (layers whose enclosing levels sharded
/// them differently must not share a row). Returns one group id per
/// weighted layer, first-occurrence numbered in layer-index order.
/// `iso` is precomputed by the caller — classification is a pure
/// function of the view, so the hierarchy computes it once per plan
/// and shares it across every level.
pub(crate) fn collapse_groups(iso: &IsoClasses, scales: &[ShardScales]) -> Vec<usize> {
    // Uniform fast path: when every layer carries bitwise-equal scales
    // (always at the root; at any child whose parent assigned one
    // (type, ratio) across the level), the scale refinement is a no-op
    // and the groups are exactly the class ids — which are already
    // first-occurrence numbered in walk order.
    if let Some((&first, rest)) = scales.split_first() {
        let bits = scales_bits(first);
        if rest.iter().all(|&s| scales_bits(s) == bits) {
            return iso.layer_class_ids().to_vec();
        }
    }
    // Per-class linear intern: within one level the members of a class
    // rarely see more than a couple of distinct shard scales (siblings
    // shrink a class's members through near-identical plan entries), so
    // a short scan beats hashing the (class, bits) pair per layer. Ids
    // are first-occurrence numbered in layer-index order, exactly as a
    // global intern would assign them.
    let mut per_class: Vec<Vec<([u64; 4], usize)>> = vec![Vec::new(); iso.layer_classes()];
    let mut next = 0usize;
    scales
        .iter()
        .zip(iso.layer_class_ids())
        .map(|(&s, &class)| {
            let bits = scales_bits(s);
            let seen = &mut per_class[class];
            match seen.iter().find(|&&(b, _)| b == bits) {
                Some(&(_, gid)) => gid,
                None => {
                    let gid = next;
                    next += 1;
                    seen.push((bits, gid));
                    gid
                }
            }
        })
        .collect()
}

/// Number of collapse groups one level search would charge its budget:
/// the budget-class rule's charge for a level-memo hit must equal what
/// the cold build would have charged.
pub(crate) fn collapse_group_count(iso: &IsoClasses, scales: &[ShardScales]) -> u64 {
    let mut per_class: Vec<Vec<[u64; 4]>> = vec![Vec::new(); iso.layer_classes()];
    let mut count = 0u64;
    for (l, &s) in scales.iter().enumerate() {
        let bits = scales_bits(s);
        let seen = &mut per_class[iso.layer_class(l)];
        if !seen.contains(&bits) {
            seen.push(bits);
            count += 1;
        }
    }
    count
}

/// The value-complete per-layer equivalence-class key of one level, in
/// weighted-layer-index order: two layers get equal keys exactly when
/// the collapsed search would share a cost-table row between them at
/// this level — same structural class ([`IsoClasses`], which folds in
/// kind, shapes, meta-dims, attention stage and fan-in context), same
/// shard scales, same pair environment (so a fault-degraded group
/// splits every class of the levels it touches) and same search
/// context (cost config, solver, type set).
#[must_use]
pub fn level_class_keys(
    view: &TrainView,
    model: &CostModel,
    config: &SearchConfig,
    env: &PairEnv,
    scales: Option<&[ShardScales]>,
) -> Vec<u64> {
    use std::hash::{Hash, Hasher};
    let iso = IsoClasses::of(view);
    let env_b = env_bits(env);
    let ctx = crate::memo::context_hash(&model.config(), &config.solver, &config.types);
    let full;
    let scales = match scales {
        Some(s) => s,
        None => {
            full = vec![ShardScales::full(); view.weighted_len()];
            &full
        }
    };
    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    layers
        .iter()
        .map(|l| {
            let mut h = FxHasher::default();
            iso.layer_class(l.index()).hash(&mut h);
            accpar_cost::LayerSig::of(l, &model.config()).hash(&mut h);
            l.heads().hash(&mut h);
            scales_bits(scales[l.index()]).hash(&mut h);
            env_b.hash(&mut h);
            ctx.hash(&mut h);
            h.finish()
        })
        .collect()
}

/// The result of a level search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The chosen per-layer plan.
    pub plan: NetworkPlan,
    /// The accumulated objective value (seconds for the full model,
    /// elements for the communication-only proxy).
    pub cost: f64,
}

/// A layer state: its partition type and solved ratio.
pub(crate) type State = (PartitionType, Ratio);

/// Backpointer sentinel: "no predecessor" (the first trunk element, or
/// no finite transition). Backtracking leaves the state index unchanged
/// when it meets one, exactly like the old `Option::None`.
const NO_PREV: u32 = u32::MAX;

/// The chain DP of one branch up to (excluding) the junction re-layout:
/// per-type accumulated cost at the last layer plus the flat
/// backtracking table (`back[w * k + ti]` = the type index chosen at
/// window `w`'s first layer when its second is `ti`). Empty for
/// identity branches. Both vectors come from (and return to) the
/// searcher's [`Scratch`] pool.
struct BranchDp {
    cost: Vec<f64>,
    back: Vec<u32>,
}

/// Entry-independent tables of one branch, hoisted out of the per-entry
/// DP of a block transfer build (see
/// [`LevelSearcher::block_transfer`]). Flat, scratch-pooled layouts.
struct BranchPre {
    /// `trans[w*k*k + ti*k + tt]`: window `w`'s transition cost from its
    /// first layer at type index `tt` into its second at `ti`.
    trans: Vec<f64>,
    /// `exit_relay[e*k + ti]`: re-layout from the branch's last layer at
    /// type index `ti` into the junction state of exit index `e`.
    /// Empty for identity branches.
    exit_relay: Vec<f64>,
    /// The branch's (scaled) contribution to the join tensor.
    exit_elems: u64,
}

/// Backtracking record for one trunk element. Predecessor choices live
/// in the trunk's flat backpointer table (`back[step*k + ti]`, stride
/// `k`); a block's chosen branch assignments per exit state are
/// `(offset, len)` ranges into the flat assignment pool.
enum StepKind {
    /// A trunk layer.
    Layer { index: usize },
    /// A block: `ranges[range_base + ti]` locates exit state `ti`'s
    /// `(layer index, type index)` assignment list in the pool.
    Block { range_base: usize },
}

/// Reusable buffers behind every DP table the searcher builds: trunk
/// cost/state rows, flat backpointer tables, branch transition tables
/// and assignment pools. Buffers are taken out for the duration of one
/// table build and returned cleared, so repeated searches and
/// `evaluate_plan` sweeps on one searcher run allocation-free in steady
/// state. Interior mutability keeps the public `&self` search API; the
/// searcher is used from one thread at a time (the table *build* in
/// `with_budget` parallelizes before `Self` exists).
#[derive(Debug, Default)]
struct Scratch {
    f64s: Vec<Vec<f64>>,
    u32s: Vec<Vec<u32>>,
    states: Vec<Vec<State>>,
    pairs: Vec<Vec<(u32, u32)>>,
}

/// The per-level searcher: precomputes per-(layer, type) ratios and
/// costs, then runs the DP (or the exhaustive reference).
///
/// # Example
///
/// ```
/// use accpar_core::{LevelSearcher, SearchConfig};
/// use accpar_cost::{CostConfig, CostModel, PairEnv};
/// use accpar_dnn::zoo;
/// use accpar_hw::{AcceleratorArray, GroupTree};
///
/// let net = zoo::alexnet(512)?;
/// let view = net.train_view()?;
/// let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(128, 128), 1)?;
/// let env = PairEnv::from_node(tree.root()).unwrap();
/// let model = CostModel::new(CostConfig::default());
/// let config = SearchConfig::accpar();
///
/// let searcher = LevelSearcher::new(&view, &model, &config, &env, None)?;
/// let outcome = searcher.search();
/// assert_eq!(outcome.plan.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LevelSearcher<'a> {
    view: &'a TrainView,
    layers: Vec<&'a TrainLayer>,
    model: &'a CostModel,
    config: &'a SearchConfig,
    env: &'a PairEnv,
    scales: Cow<'a, [ShardScales]>,
    /// `group_of[layer]` → row group. Identity when collapse is off;
    /// under collapse, class members share their representative's group
    /// so stamping is an index lookup, not a row copy.
    group_of: Vec<usize>,
    /// `ratios[group][type index]` — read through [`Self::ratio_of`].
    ratios: Vec<Vec<Ratio>>,
    /// `layer_costs[group][type index]`, scalarized — read through
    /// [`Self::cost_of`].
    layer_costs: Vec<Vec<f64>>,
    /// Shared memo (block transfer tables); `None` disables memoization.
    cache: Option<&'a SearchCache>,
    /// Context hash for cache keys (cost config + solver + type set).
    ctx: u64,
    /// Pooled DP buffers (see [`Scratch`]).
    scratch: RefCell<Scratch>,
    /// Searcher-local block transfer memo for the collapse path when no
    /// shared [`SearchCache`] is attached: identical blocks within one
    /// level (the 48 q|k|v blocks of a deep stack) compute one table.
    /// With a shared cache the shared tier already dedupes.
    local_blocks: RefCell<FxHashMap<LocalBlockKey, std::sync::Arc<BlockTransfer>>>,
    /// Element index → interned block shape id (collapse path only;
    /// empty when collapse is off). Interned once at build so the DP
    /// hot path keys its block memo without re-walking the branches.
    block_shape: Vec<u32>,
    /// Memoized [`Self::consume_cost`] evaluations (collapse path
    /// only), keyed `(prev ratio bits, prev type | ti | group of to)`.
    trans_memo: RefCell<FxHashMap<(u64, u64), f64>>,
}

/// Key of the searcher-local block memo. Value-complete *within one
/// searcher*: env, ctx and the model config are constant across the
/// level, and a row-group id fixes both the member's layer class (which
/// pins its [`accpar_cost::LayerSig`]) and its shard-scale bits — so
/// branch structure over group ids plus entry states and fork size pin
/// the transfer table exactly as the shared cache's `BlockKey` would,
/// at a fraction of the build cost on the DP hot path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LocalBlockKey {
    /// Interned block shape id (see `LevelSearcher::block_shape`): two
    /// blocks share an id iff their branch-major row-group id sequences
    /// and branch delimitation are equal.
    shape: u32,
    /// Entry states as `(type, ratio bits)` per type index; `None` when
    /// the block opens the network.
    entries: Option<Vec<(PartitionType, u64)>>,
    fork_elems: u64,
}

impl<'a> LevelSearcher<'a> {
    /// Prepares a searcher. `scales` carries the per-layer shard scales
    /// from the enclosing hierarchy levels (defaults to the full tensor).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptySearchSpace`] when the configuration
    /// admits no types, and [`PlanError::Mismatch`] when `scales` does
    /// not carry one entry per weighted layer.
    pub fn new(
        view: &'a TrainView,
        model: &'a CostModel,
        config: &'a SearchConfig,
        env: &'a PairEnv,
        scales: Option<&'a [ShardScales]>,
    ) -> Result<Self, PlanError> {
        Self::with_cache(view, model, config, env, scales, Pool::serial(), None)
    }

    /// Like [`LevelSearcher::new`], with a thread budget for the cost
    /// table construction and an optional shared [`SearchCache`].
    ///
    /// With `Pool::serial()` and no cache this is exactly `new`: the two
    /// paths share one code path and produce bit-identical tables.
    ///
    /// # Errors
    ///
    /// As [`LevelSearcher::new`].
    pub fn with_cache(
        view: &'a TrainView,
        model: &'a CostModel,
        config: &'a SearchConfig,
        env: &'a PairEnv,
        scales: Option<&'a [ShardScales]>,
        pool: Pool,
        cache: Option<&'a SearchCache>,
    ) -> Result<Self, PlanError> {
        Self::with_budget(
            view,
            model,
            config,
            env,
            scales,
            pool,
            cache,
            &Budget::unlimited(),
            &accpar_obs::Obs::off(),
        )
    }

    /// Like [`LevelSearcher::with_cache`], under a cooperative
    /// [`Budget`]: the cost-table build charges one budget node per
    /// layer row, worker closures run panic-isolated (retried with
    /// seeded backoff, then degraded to the serial path), and every
    /// scalarized cost is checked finite before it can enter a DP `min`.
    ///
    /// # Errors
    ///
    /// As [`LevelSearcher::new`], plus [`PlanError::Interrupted`] when
    /// the budget stops the build, [`PlanError::WorkerPanic`] when a
    /// row's closure panics through every retry *and* the serial
    /// fallback, and [`PlanError::NonFinite`] when a cost table entry
    /// is NaN or infinite.
    #[allow(clippy::too_many_arguments)]
    pub fn with_budget(
        view: &'a TrainView,
        model: &'a CostModel,
        config: &'a SearchConfig,
        env: &'a PairEnv,
        scales: Option<&'a [ShardScales]>,
        pool: Pool,
        cache: Option<&'a SearchCache>,
        budget: &Budget,
        obs: &accpar_obs::Obs,
    ) -> Result<Self, PlanError> {
        Self::with_budget_iso(view, model, config, env, scales, pool, cache, budget, obs, None)
    }

    /// [`LevelSearcher::with_budget`] with an optionally precomputed
    /// isomorphism classification. Classification is a pure function of
    /// the view, so the hierarchy computes it once per plan and shares
    /// it across every level instead of re-deriving it per searcher.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_budget_iso(
        view: &'a TrainView,
        model: &'a CostModel,
        config: &'a SearchConfig,
        env: &'a PairEnv,
        scales: Option<&'a [ShardScales]>,
        pool: Pool,
        cache: Option<&'a SearchCache>,
        budget: &Budget,
        obs: &accpar_obs::Obs,
        iso: Option<&IsoClasses>,
    ) -> Result<Self, PlanError> {
        if config.types.is_empty() {
            return Err(PlanError::EmptySearchSpace);
        }
        let mut layers: Vec<&TrainLayer> = view.layers().collect();
        layers.sort_by_key(|l| l.index());
        let scales: Cow<'a, [ShardScales]> = match scales {
            Some(s) => Cow::Borrowed(s),
            None => Cow::Owned(vec![ShardScales::full(); layers.len()]),
        };
        if scales.len() != layers.len() {
            return Err(PlanError::Mismatch(format!(
                "{} shard scales for {} weighted layers",
                scales.len(),
                layers.len()
            )));
        }
        // Isomorphism collapse: the units the table build iterates are
        // equivalence classes, not layers. A row is a pure function of
        // (LayerSig, scales, env, ctx), and two class members agree on
        // all four, so stamping the representative's row onto every
        // member is bitwise identical to recomputing it. Budget-class
        // rule: one node is charged per *class* (before its memo
        // consult), members stamp for free — so an armed budget travels
        // exactly as far through the level whether the memo is warm or
        // cold, but further than an uncollapsed build would.
        let owned_iso;
        let groups: Option<Vec<usize>> = if config.collapse {
            let iso = match iso {
                Some(shared) => shared,
                None => {
                    owned_iso = IsoClasses::of(view);
                    &owned_iso
                }
            };
            Some(collapse_groups(iso, &scales))
        } else {
            None
        };
        let units: Vec<usize> = match &groups {
            Some(g) => {
                let mut reps = Vec::new();
                for (l, &gid) in g.iter().enumerate() {
                    if gid == reps.len() {
                        reps.push(l);
                    }
                }
                reps
            }
            None => (0..layers.len()).collect(),
        };
        // One row per unit: solve the ratio and scalarize the cost for
        // every admissible type, through the shared memo when present.
        // The fallible map returns rows in unit order, so the tables
        // are identical to a serial build. Each row charges one budget
        // node *before* consulting the memo — budget semantics must not
        // depend on cache warmth.
        let stop = AtomicU8::new(0);
        let build_row = |l: usize, layer: &&'a TrainLayer| -> Option<(Vec<Ratio>, Vec<f64>)> {
            if stop.load(Ordering::Relaxed) != 0 {
                return None;
            }
            if let Err(reason) = budget.try_charge(1) {
                let _ = stop.compare_exchange(
                    0,
                    stop_code(reason),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return None;
            }
            Some(match cache {
                Some(c) => match c.layer_row(
                    model,
                    &config.solver,
                    layer,
                    &config.types,
                    env,
                    scales[l],
                ) {
                    // A row hit is a stack copy — no heap traffic.
                    Some(row) => row[..config.types.len()].iter().copied().unzip(),
                    // Type sets wider than a row entry memoize per cell.
                    None => config
                        .types
                        .iter()
                        .map(|&t| c.layer_cell(model, &config.solver, layer, t, env, scales[l]))
                        .unzip(),
                },
                None => config
                    .types
                    .iter()
                    .map(|&t| layer_ratio_cost(model, &config.solver, layer, t, env, scales[l]))
                    .unzip(),
            })
        };
        let build_unit = |_u: usize, l: &usize| build_row(*l, &layers[*l]);
        let rows = match pool.try_par_map(&units, &RetryPolicy::default(), obs, build_unit) {
            Ok(rows) => rows,
            // A unit that panicked through every retry: degrade to the
            // serial path once before giving up with the typed error.
            Err(panic) => {
                if obs.enabled() {
                    obs.counter("pool.serial_degrades").inc();
                }
                match Pool::serial().try_par_map(&units, &RetryPolicy::none(), obs, build_unit) {
                    Ok(rows) => rows,
                    Err(_) => return Err(panic.into()),
                }
            }
        };
        if let Some(reason) = decode_stop(stop.load(Ordering::Relaxed)) {
            return Err(PlanError::Interrupted(reason));
        }
        let rows: Vec<(Vec<Ratio>, Vec<f64>)> = rows
            .into_iter()
            .map(|row| row.expect("no stop reason was recorded, so every row completed"))
            .collect();
        if let Some(c) = cache {
            c.note_cells((config.types.len() * units.len()) as u64);
        }
        // Stamp class rows across members by indirection: rows stay one
        // per group and `group_of` maps every member onto its
        // representative's row — bit-identical to a per-layer copy by
        // purity (see above), without the O(layers) clone traffic.
        let (ratios, layer_costs): (Vec<Vec<Ratio>>, Vec<Vec<f64>>) = rows.into_iter().unzip();
        let group_of: Vec<usize> = match groups {
            Some(g) => {
                let stamped = layers.len() - units.len();
                if stamped > 0 && obs.enabled() {
                    obs.counter("iso.stamped_rows").add(stamped as u64);
                }
                g
            }
            None => (0..layers.len()).collect(),
        };
        // Non-finite guard: a NaN would silently lose every `min`
        // comparison in the DP; reject it up front with a typed error.
        for (l, &gid) in group_of.iter().enumerate() {
            for (ti, &c) in layer_costs[gid].iter().enumerate() {
                if !c.is_finite() {
                    return Err(PlanError::NonFinite(format!(
                        "layer {} scalarized to {c} under {}",
                        layers[l].index(),
                        config.types[ti]
                    )));
                }
            }
        }
        // Intern each block element's branch-major group-id shape once:
        // two blocks share a shape id iff their branches list the same
        // row groups in the same arrangement, which (groups folding
        // class + scales, env/ctx constant per searcher) is exactly the
        // sharing condition of the shared cache's `BlockKey`.
        let block_shape: Vec<u32> = if config.collapse {
            let mut ids: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            view.elems()
                .iter()
                .map(|elem| match elem {
                    TrainElem::Block { branches, .. } => {
                        let slots: usize = branches.iter().map(Vec::len).sum();
                        let mut shape = Vec::with_capacity(branches.len() + slots);
                        for b in branches {
                            shape.push(b.len() as u32);
                            shape.extend(b.iter().map(|l| group_of[l.index()] as u32));
                        }
                        let next = ids.len() as u32;
                        *ids.entry(shape).or_insert(next)
                    }
                    TrainElem::Layer(_) => 0,
                })
                .collect()
        } else {
            Vec::new()
        };
        let ctx = crate::memo::context_hash(&model.config(), &config.solver, &config.types);
        Ok(Self {
            view,
            layers,
            model,
            config,
            env,
            scales,
            group_of,
            ratios,
            layer_costs,
            cache,
            ctx,
            scratch: RefCell::new(Scratch::default()),
            local_blocks: RefCell::new(FxHashMap::default()),
            block_shape,
            trans_memo: RefCell::new(FxHashMap::default()),
        })
    }

    /// Solved ratio for layer `l` under type index `ti`, through the
    /// group indirection.
    #[inline]
    fn ratio_of(&self, l: usize, ti: usize) -> Ratio {
        self.ratios[self.group_of[l]][ti]
    }

    /// Scalarized cost for layer `l` under type index `ti`, through the
    /// group indirection.
    #[inline]
    fn cost_of(&self, l: usize, ti: usize) -> f64 {
        self.layer_costs[self.group_of[l]][ti]
    }

    /// Builds the searcher-local block memo key for the block at
    /// element index `e` (see [`LocalBlockKey`]).
    fn local_block_key(
        &self,
        e: usize,
        entries: Option<&[State]>,
        fork_elems: u64,
    ) -> LocalBlockKey {
        LocalBlockKey {
            shape: self.block_shape[e],
            entries: entries
                .map(|es| es.iter().map(|&(t, r)| (t, r.value().to_bits())).collect()),
            fork_elems,
        }
    }

    // Scratch-pool accessors. Each borrow is momentary (a pop or a
    // push), so table-building code can hold any number of taken
    // buffers without aliasing hazards.
    fn take_f64(&self) -> Vec<f64> {
        self.scratch.borrow_mut().f64s.pop().unwrap_or_default()
    }

    fn put_f64(&self, mut v: Vec<f64>) {
        v.clear();
        self.scratch.borrow_mut().f64s.push(v);
    }

    fn take_u32(&self) -> Vec<u32> {
        self.scratch.borrow_mut().u32s.pop().unwrap_or_default()
    }

    fn put_u32(&self, mut v: Vec<u32>) {
        v.clear();
        self.scratch.borrow_mut().u32s.push(v);
    }

    fn take_states(&self) -> Vec<State> {
        self.scratch.borrow_mut().states.pop().unwrap_or_default()
    }

    fn put_states(&self, mut v: Vec<State>) {
        v.clear();
        self.scratch.borrow_mut().states.push(v);
    }

    fn take_pairs(&self) -> Vec<(u32, u32)> {
        self.scratch.borrow_mut().pairs.pop().unwrap_or_default()
    }

    fn put_pairs(&self, mut v: Vec<(u32, u32)>) {
        v.clear();
        self.scratch.borrow_mut().pairs.push(v);
    }

    /// Returns a finished [`BranchDp`]'s buffers to the pool.
    fn recycle_dp(&self, dp: BranchDp) {
        self.put_f64(dp.cost);
        self.put_u32(dp.back);
    }

    /// Returns a finished [`BranchPre`]'s buffers to the pool.
    fn recycle_pre(&self, pre: BranchPre) {
        self.put_f64(pre.trans);
        self.put_f64(pre.exit_relay);
    }

    /// Number of admissible types.
    fn k(&self) -> usize {
        self.config.types.len()
    }

    /// The state of layer `l` under type index `ti`.
    fn state(&self, l: usize, ti: usize) -> State {
        (self.config.types[ti], self.ratio_of(l, ti))
    }

    /// Conversion cost from a producer state into layer `to` at type
    /// index `ti` (Table 5, consumer-boundary convention).
    ///
    /// Under collapse the result is memoized per
    /// `(prev state, row group of to, ti)`: the group pins the
    /// consumer's boundary (class fixes `in_fmap`, the group folds the
    /// scale bits) and its `(type, ratio)` row entry, and env/model are
    /// constant per searcher — so a memo hit returns the exact `f64` a
    /// fresh evaluation would. A deep stack's trunk repeats the same
    /// handful of transitions hundreds of times per level.
    fn consume_cost(&self, prev: State, to: usize, ti: usize) -> f64 {
        if self.config.collapse {
            let key = (
                prev.1.value().to_bits(),
                prev.0 as u64 | ((ti as u64) << 8) | ((self.group_of[to] as u64) << 32),
            );
            if let Some(&c) = self.trans_memo.borrow().get(&key) {
                return c;
            }
            let c = self.consume_cost_raw(prev, to, ti);
            self.trans_memo.borrow_mut().insert(key, c);
            return c;
        }
        self.consume_cost_raw(prev, to, ti)
    }

    /// The unmemoized [`Self::consume_cost`] evaluation.
    fn consume_cost_raw(&self, prev: State, to: usize, ti: usize) -> f64 {
        let boundary =
            (self.layers[to].in_fmap().size() as f64 * self.scales[to].f_in).round() as u64;
        let (t, r) = self.state(to, ti);
        self.model.scalarize(self.model.edge_cost(
            prev.0, prev.1, t, r, boundary, boundary, self.env,
        ))
    }

    /// Re-layout cost from a producer state into a junction state over a
    /// boundary of `elems` elements.
    fn relayout_cost(&self, from: State, to: State, elems: u64) -> f64 {
        self.model.scalarize(self.model.relayout_cost(
            from.0, from.1, to.0, to.1, elems, elems, self.env,
        ))
    }

    /// The junction state of a block for type index `ti`: the type plus
    /// the ratio solved for the block's representative layer (the last
    /// layer of its first non-empty branch).
    fn junction_state(&self, branches: &[Vec<TrainLayer>], ti: usize) -> State {
        let rep = branches
            .iter()
            .find_map(|b| b.last())
            .expect("a block has at least one weighted layer");
        self.state(rep.index(), ti)
    }

    /// The (scaled) element count a branch contributes to the block's
    /// join tensor: its own last layer's output (which equals the join
    /// tensor for element-wise `Add` joins, and the branch's channel
    /// slice for `Concat` joins). Identity branches carry the fork
    /// tensor through unchanged.
    fn branch_exit_elems(&self, branch: &[TrainLayer], fork_elems: u64) -> u64 {
        match branch.last() {
            Some(last) => {
                (last.out_fmap().size() as f64 * self.scales[last.index()].f_out).round() as u64
            }
            // Identity (or unweighted) shortcut: the fork tensor flows
            // through unchanged; `fork_elems` arrives pre-scaled.
            None => fork_elems,
        }
    }

    /// The fork tensor's element count scaled like the block's first
    /// weighted layer's input (the shard the ancestors left this pair).
    fn scaled_fork_elems(&self, branches: &[Vec<TrainLayer>], fork_size: u64) -> u64 {
        let rep = branches
            .iter()
            .find_map(|b| b.first())
            .expect("a block has at least one weighted layer");
        (fork_size as f64 * self.scales[rep.index()].f_in).round() as u64
    }

    /// Optimal cost and per-layer type choices for one branch between a
    /// (possibly absent) entry state and a junction exit state.
    fn branch_best(
        &self,
        branch: &[TrainLayer],
        entry: Option<State>,
        exit: State,
        exit_elems: u64,
    ) -> (f64, Vec<(usize, usize)>) {
        let dp = self.branch_dp(branch, entry);
        let result = self.branch_finish(branch, &dp, entry, exit, exit_elems);
        self.recycle_dp(dp);
        result
    }

    /// The entry-dependent part of [`branch_best`](Self::branch_best):
    /// the chain DP along the branch. Independent of the exit state, so
    /// one DP serves every junction exit of the block.
    #[allow(clippy::needless_range_loop)]
    fn branch_dp(&self, branch: &[TrainLayer], entry: Option<State>) -> BranchDp {
        let k = self.k();
        let mut cost = self.take_f64();
        let back = self.take_u32();
        let Some(first) = branch.first() else {
            return BranchDp { cost, back };
        };
        cost.extend((0..k).map(|ti| {
            let edge = entry.map_or(0.0, |e| self.consume_cost(e, first.index(), ti));
            edge + self.cost_of(first.index(), ti)
        }));
        let mut dp = BranchDp { cost, back };
        let mut next_cost = self.take_f64();
        for pair in branch.windows(2) {
            let cur = pair[1].index();
            let prev_layer = pair[0].index();
            next_cost.clear();
            next_cost.resize(k, f64::INFINITY);
            let row = dp.back.len();
            dp.back.resize(row + k, 0);
            for ti in 0..k {
                for tt in 0..k {
                    let c = dp.cost[tt]
                        + self.consume_cost(self.state(prev_layer, tt), cur, ti)
                        + self.cost_of(cur, ti);
                    if c < next_cost[ti] {
                        next_cost[ti] = c;
                        dp.back[row + ti] = tt as u32;
                    }
                }
            }
            std::mem::swap(&mut dp.cost, &mut next_cost);
        }
        self.put_f64(next_cost);
        dp
    }

    /// The exit-dependent part of [`branch_best`](Self::branch_best):
    /// re-layout into the junction state, min over the last layer's
    /// type and backtrack. Splitting the DP off changes no arithmetic —
    /// the exit only ever entered the final min loop.
    fn branch_finish(
        &self,
        branch: &[TrainLayer],
        dp: &BranchDp,
        entry: Option<State>,
        exit: State,
        exit_elems: u64,
    ) -> (f64, Vec<(usize, usize)>) {
        let k = self.k();
        if branch.is_empty() {
            // Identity shortcut: the fork tensor is re-laid-out into the
            // junction state (free when the entry already matches).
            let cost = entry.map_or(0.0, |e| self.relayout_cost(e, exit, exit_elems));
            return (cost, Vec::new());
        }
        // Exit re-layout from the branch's last layer.
        let last = branch.last().expect("non-empty").index();
        let (mut best, mut best_ti) = (f64::INFINITY, 0);
        for ti in 0..k {
            let c = dp.cost[ti] + self.relayout_cost(self.state(last, ti), exit, exit_elems);
            if c < best {
                best = c;
                best_ti = ti;
            }
        }
        // Backtrack type choices along the branch over the flat table.
        let assignment = self.backtrack_branch(branch, dp, best_ti);
        (best, assignment)
    }

    /// Walks a branch DP's flat backpointer table from the last layer's
    /// chosen type index back to the first, returning the per-layer
    /// `(layer index, type index)` assignment in forward order.
    fn backtrack_branch(
        &self,
        branch: &[TrainLayer],
        dp: &BranchDp,
        best_ti: usize,
    ) -> Vec<(usize, usize)> {
        let k = self.k();
        let windows = dp.back.len() / k.max(1);
        let mut assignment = vec![(0usize, 0usize); branch.len()];
        let mut ti = best_ti;
        assignment[branch.len() - 1] = (branch[branch.len() - 1].index(), ti);
        for w in (0..windows).rev() {
            ti = dp.back[w * k + ti] as usize;
            assignment[w] = (branch[w].index(), ti);
        }
        assignment
    }

    /// The full block transfer table: `table[entry][exit]` (one pseudo
    /// entry when the block opens the network) with assignments recorded
    /// as branch-major *slots*, position-independent for the memo. Each
    /// branch's chain DP runs once per entry and is reused across exits;
    /// the arithmetic per cell is identical to `branch_best`.
    fn block_transfer(
        &self,
        branches: &[Vec<TrainLayer>],
        entries: Option<&[State]>,
        fork_elems: u64,
    ) -> BlockTransfer {
        let k = self.k();
        let entry_list: Vec<Option<State>> = match entries {
            None => vec![None],
            Some(es) => es.iter().map(|&e| Some(e)).collect(),
        };
        // Everything entry-independent is computed once per block, not
        // once per entry: the interior chain transitions, the exit
        // re-layouts of each branch's last layer and the junction
        // states. The per-entry DP then runs over pure floats. Each
        // sum below is assembled in the exact order `branch_best`
        // would produce, so the table stays bitwise identical.
        let exits: Vec<State> = (0..k).map(|ti| self.junction_state(branches, ti)).collect();
        let pres: Vec<BranchPre> = branches
            .iter()
            .map(|b| self.branch_pre(b, &exits, fork_elems))
            .collect();
        let table = entry_list
            .iter()
            .map(|&entry| {
                let dps: Vec<BranchDp> = branches
                    .iter()
                    .zip(&pres)
                    .map(|(b, pre)| self.branch_dp_pre(b, pre, entry))
                    .collect();
                let row = (0..k)
                    .map(|ti| {
                        let mut total = 0.0;
                        let mut slots: Vec<(usize, usize)> = Vec::new();
                        let mut slot_base = 0;
                        for ((dp, branch), pre) in dps.iter().zip(branches).zip(&pres) {
                            let (c, a) =
                                self.branch_finish_pre(branch, pre, dp, entry, exits[ti], ti);
                            total += c;
                            slots.extend(
                                a.iter()
                                    .enumerate()
                                    .map(|(p, &(_, t))| (slot_base + p, t)),
                            );
                            slot_base += branch.len();
                        }
                        (total, slots)
                    })
                    .collect();
                for dp in dps {
                    self.recycle_dp(dp);
                }
                row
            })
            .collect();
        for pre in pres {
            self.recycle_pre(pre);
        }
        table
    }

    /// Entry-independent tables of one branch: interior transition
    /// costs, exit re-layout costs and the branch's exit element count.
    fn branch_pre(&self, branch: &[TrainLayer], exits: &[State], fork_elems: u64) -> BranchPre {
        let k = self.k();
        let exit_elems = self.branch_exit_elems(branch, fork_elems);
        // trans[w*k*k + ti*k + tt]: from window w's first layer at type
        // tt into its second at type ti (the order `branch_dp`'s loops
        // visit).
        let mut trans = self.take_f64();
        for pair in branch.windows(2) {
            let cur = pair[1].index();
            let prev_layer = pair[0].index();
            for ti in 0..k {
                for tt in 0..k {
                    trans.push(self.consume_cost(self.state(prev_layer, tt), cur, ti));
                }
            }
        }
        // exit_relay[e*k + ti]: from the branch's last layer at type ti
        // into the junction state `exits[e]`. Empty for identity
        // branches, whose re-layout starts at the (entry-dependent)
        // fork state instead.
        let mut exit_relay = self.take_f64();
        if let Some(last) = branch.last() {
            for &exit in exits {
                for ti in 0..k {
                    exit_relay
                        .push(self.relayout_cost(self.state(last.index(), ti), exit, exit_elems));
                }
            }
        }
        BranchPre {
            trans,
            exit_relay,
            exit_elems,
        }
    }

    /// [`branch_dp`](Self::branch_dp) over precomputed transitions —
    /// identical arithmetic, no `edge_cost` evaluations in the loop.
    #[allow(clippy::needless_range_loop)]
    fn branch_dp_pre(
        &self,
        branch: &[TrainLayer],
        pre: &BranchPre,
        entry: Option<State>,
    ) -> BranchDp {
        let k = self.k();
        let mut cost = self.take_f64();
        let back = self.take_u32();
        let Some(first) = branch.first() else {
            return BranchDp { cost, back };
        };
        cost.extend((0..k).map(|ti| {
            let edge = entry.map_or(0.0, |e| self.consume_cost(e, first.index(), ti));
            edge + self.cost_of(first.index(), ti)
        }));
        let mut dp = BranchDp { cost, back };
        let mut next_cost = self.take_f64();
        for (w, pair) in branch.windows(2).enumerate() {
            let cur = pair[1].index();
            next_cost.clear();
            next_cost.resize(k, f64::INFINITY);
            let row = dp.back.len();
            dp.back.resize(row + k, 0);
            for ti in 0..k {
                for tt in 0..k {
                    let c =
                        dp.cost[tt] + pre.trans[(w * k + ti) * k + tt] + self.cost_of(cur, ti);
                    if c < next_cost[ti] {
                        next_cost[ti] = c;
                        dp.back[row + ti] = tt as u32;
                    }
                }
            }
            std::mem::swap(&mut dp.cost, &mut next_cost);
        }
        self.put_f64(next_cost);
        dp
    }

    /// [`branch_finish`](Self::branch_finish) over the precomputed exit
    /// re-layout row — identical arithmetic.
    fn branch_finish_pre(
        &self,
        branch: &[TrainLayer],
        pre: &BranchPre,
        dp: &BranchDp,
        entry: Option<State>,
        exit: State,
        exit_ti: usize,
    ) -> (f64, Vec<(usize, usize)>) {
        let k = self.k();
        if branch.is_empty() {
            // Identity shortcut: re-layout from the (entry-dependent)
            // fork state into the junction state.
            let cost = entry.map_or(0.0, |e| self.relayout_cost(e, exit, pre.exit_elems));
            return (cost, Vec::new());
        }
        let (mut best, mut best_ti) = (f64::INFINITY, 0);
        for ti in 0..k {
            let c = dp.cost[ti] + pre.exit_relay[exit_ti * k + ti];
            if c < best {
                best = c;
                best_ti = ti;
            }
        }
        let assignment = self.backtrack_branch(branch, dp, best_ti);
        (best, assignment)
    }

    /// Block cost between an entry state and a junction exit state: the
    /// sum over branches of each branch's optimal internal path (§5.2).
    fn block_cost(
        &self,
        branches: &[Vec<TrainLayer>],
        entry: Option<State>,
        exit: State,
        fork_elems: u64,
        forced: Option<&[usize]>,
    ) -> (f64, Vec<(usize, usize)>) {
        let mut total = 0.0;
        let mut assignment = Vec::new();
        for branch in branches {
            let exit_elems = self.branch_exit_elems(branch, fork_elems);
            let (c, a) = match forced {
                None => self.branch_best(branch, entry, exit, exit_elems),
                Some(f) => {
                    if branch.is_empty() {
                        self.branch_best(branch, entry, exit, exit_elems)
                    } else {
                        let types: Vec<usize> =
                            branch.iter().map(|l| f[l.index()]).collect();
                        let cost =
                            self.branch_cost_fixed(branch, &types, entry, exit, exit_elems);
                        let assignment = branch
                            .iter()
                            .zip(&types)
                            .map(|(l, &ti)| (l.index(), ti))
                            .collect();
                        (cost, assignment)
                    }
                }
            };
            total += c;
            assignment.extend(a);
        }
        (total, assignment)
    }

    /// Runs the dynamic program (Eq. 9) and returns the optimal plan for
    /// this level.
    #[must_use]
    pub fn search(&self) -> SearchOutcome {
        match self.search_constrained(None, &Budget::unlimited()) {
            Ok(outcome) => outcome,
            Err(_) => unreachable!("an unlimited budget never stops the DP"),
        }
    }

    /// [`search`](LevelSearcher::search) under a cooperative budget:
    /// the trunk scan checks for cancellation and deadline expiry at
    /// every element (the per-row node charges were already paid in
    /// [`with_budget`](LevelSearcher::with_budget)).
    ///
    /// # Errors
    ///
    /// The [`StopReason`] when the budget stops the scan; the level is
    /// then all-or-nothing — callers fall back to the data-parallel
    /// baseline for the whole level.
    pub fn search_budgeted(&self, budget: &Budget) -> Result<SearchOutcome, StopReason> {
        self.search_constrained(None, budget)
    }

    /// Evaluates a *fixed* per-layer type assignment under the search's
    /// objective: every layer's type is forced to `plan`'s choice (the
    /// ratio is re-solved — ratios are a function of the type under this
    /// searcher's solver), and only the blocks' internal junction states
    /// remain free. By construction
    /// `search().cost <= evaluate_plan(p)` for every plan `p`, which the
    /// random-plan property tests assert.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Mismatch`] if `plan` has the wrong number of
    /// layers or uses a type outside this searcher's configured space.
    pub fn evaluate_plan(&self, plan: &NetworkPlan) -> Result<f64, PlanError> {
        if plan.len() != self.layers.len() {
            return Err(PlanError::Mismatch(format!(
                "plan has {} entries for {} weighted layers",
                plan.len(),
                self.layers.len()
            )));
        }
        let forced: Vec<usize> = plan
            .layers()
            .iter()
            .map(|entry| {
                self.config
                    .types
                    .iter()
                    .position(|&t| t == entry.ptype)
                    .ok_or_else(|| {
                        PlanError::Mismatch(format!(
                            "plan type {:?} is outside the configured search space",
                            entry.ptype
                        ))
                    })
            })
            .collect::<Result<_, _>>()?;
        match self.search_constrained(Some(&forced), &Budget::unlimited()) {
            Ok(outcome) => Ok(outcome.cost),
            Err(_) => unreachable!("an unlimited budget never stops the DP"),
        }
    }

    /// The DP with an optional per-layer forced type assignment, under
    /// a cooperative budget (checked once per trunk element).
    ///
    /// Every table is flat and scratch-pooled: the cost and
    /// producer-state rows ping-pong between two `k`-wide buffers, the
    /// backpointers live in one step-major `u32` table
    /// ([`NO_PREV`]-sentinelled), and block assignments are
    /// `(offset, len)` ranges into a shared pool — repeated searches on
    /// one searcher allocate nothing new in steady state, with arithmetic
    /// and comparison order identical to the nested-`Vec` formulation.
    fn search_constrained(
        &self,
        forced: Option<&[usize]>,
        budget: &Budget,
    ) -> Result<SearchOutcome, StopReason> {
        let k = self.k();
        let allowed = |l: usize, ti: usize| forced.is_none_or(|f| f[l] == ti);
        let mut cur = self.take_f64();
        let mut next = self.take_f64();
        let mut cur_info = self.take_states();
        let mut next_info = self.take_states();
        let mut back = self.take_u32();
        let mut ranges = self.take_pairs();
        let mut assign_pool = self.take_pairs();
        let mut slot_layers = self.take_u32();
        let mut steps: Vec<StepKind> = Vec::with_capacity(self.view.elems().len());
        // Whether no element has been processed yet (the old
        // `Option<Vec<f64>>` None state).
        let mut first = true;

        for (e, elem) in self.view.elems().iter().enumerate() {
            // A budget stop abandons the taken buffers to the allocator
            // (not the pool) — correct, merely unthrifty on a path that
            // ends the whole level search anyway.
            budget.check()?;
            next.clear();
            next.resize(k, f64::INFINITY);
            let row = back.len();
            back.resize(row + k, NO_PREV);
            match elem {
                TrainElem::Layer(layer) => {
                    let l = layer.index();
                    for ti in 0..k {
                        if !allowed(l, ti) {
                            continue;
                        }
                        if first {
                            next[ti] = self.cost_of(l, ti);
                        } else {
                            for tt in 0..k {
                                if cur[tt].is_infinite() {
                                    continue;
                                }
                                let v = cur[tt]
                                    + self.consume_cost(cur_info[tt], l, ti)
                                    + self.cost_of(l, ti);
                                if v < next[ti] {
                                    next[ti] = v;
                                    back[row + ti] = tt as u32;
                                }
                            }
                        }
                    }
                    steps.push(StepKind::Layer { index: l });
                    next_info.clear();
                    next_info.extend((0..k).map(|ti| self.state(l, ti)));
                }
                TrainElem::Block { branches, fork, .. } => {
                    let fork_elems = self.scaled_fork_elems(branches, fork.size());
                    let range_base = ranges.len();
                    ranges.resize(range_base + k, (0, 0));
                    // The memoized path is only taken for free searches:
                    // a forced assignment changes branch costs without
                    // entering the key, so it always recomputes.
                    let table = match (self.cache, forced) {
                        (Some(cache), None) => {
                            let entries = (!first).then_some(cur_info.as_slice());
                            let key = BlockKey::new(
                                branches,
                                &self.scales,
                                entries,
                                fork_elems,
                                self.env,
                                self.ctx,
                                &self.model.config(),
                            );
                            Some(cache.block_lookup(&key).unwrap_or_else(|| {
                                cache.block_insert(
                                    key,
                                    self.block_transfer(branches, entries, fork_elems),
                                )
                            }))
                        }
                        // Collapse without a shared cache: identical
                        // blocks within this level share one table via
                        // the searcher-local memo (same value-complete
                        // key, same table build — bit-identical to both
                        // the shared-cache and the direct path).
                        (None, None) if self.config.collapse => {
                            let entries = (!first).then_some(cur_info.as_slice());
                            let key = self.local_block_key(e, entries, fork_elems);
                            let hit = self.local_blocks.borrow().get(&key).cloned();
                            Some(hit.unwrap_or_else(|| {
                                let table = std::sync::Arc::new(self.block_transfer(
                                    branches, entries, fork_elems,
                                ));
                                self.local_blocks
                                    .borrow_mut()
                                    .insert(key, std::sync::Arc::clone(&table));
                                table
                            }))
                        }
                        _ => None,
                    };
                    // Slot → weighted-layer-index map for memoized
                    // assignments (branch-major, matching the table).
                    slot_layers.clear();
                    if table.is_some() {
                        slot_layers
                            .extend(branches.iter().flatten().map(|l| l.index() as u32));
                    }
                    // Records exit state `ti`'s winning assignment as a
                    // fresh pool range; superseded candidates leave dead
                    // entries behind (bounded by k·k per block).
                    let mut record =
                        |pool: &mut Vec<(u32, u32)>, ti: usize, a: &[(usize, usize)], remap: bool| {
                            let off = pool.len() as u32;
                            pool.extend(a.iter().map(|&(s, t)| {
                                let layer = if remap { slot_layers[s] } else { s as u32 };
                                (layer, t as u32)
                            }));
                            ranges[range_base + ti] = (off, a.len() as u32);
                        };
                    for ti in 0..k {
                        if first {
                            match &table {
                                Some(t) => {
                                    let (c, a) = &t[0][ti];
                                    next[ti] = *c;
                                    record(&mut assign_pool, ti, a, true);
                                }
                                None => {
                                    let exit = self.junction_state(branches, ti);
                                    let (c, a) =
                                        self.block_cost(branches, None, exit, fork_elems, forced);
                                    next[ti] = c;
                                    record(&mut assign_pool, ti, &a, false);
                                }
                            }
                        } else {
                            for tt in 0..k {
                                if cur[tt].is_infinite() {
                                    continue;
                                }
                                match &table {
                                    Some(t) => {
                                        let (c, a) = &t[tt][ti];
                                        let v = cur[tt] + c;
                                        if v < next[ti] {
                                            next[ti] = v;
                                            back[row + ti] = tt as u32;
                                            record(&mut assign_pool, ti, a, true);
                                        }
                                    }
                                    None => {
                                        let exit = self.junction_state(branches, ti);
                                        let (c, a) = self.block_cost(
                                            branches,
                                            Some(cur_info[tt]),
                                            exit,
                                            fork_elems,
                                            forced,
                                        );
                                        let v = cur[tt] + c;
                                        if v < next[ti] {
                                            next[ti] = v;
                                            back[row + ti] = tt as u32;
                                            record(&mut assign_pool, ti, &a, false);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    steps.push(StepKind::Block { range_base });
                    next_info.clear();
                    next_info.extend((0..k).map(|ti| self.junction_state(branches, ti)));
                }
            }
            std::mem::swap(&mut cur, &mut next);
            std::mem::swap(&mut cur_info, &mut next_info);
            first = false;
        }

        assert!(!first, "a train view has at least one element");
        // `total_cmp` orders identically to `partial_cmp` on the finite
        // values the constructor guarantees, and cannot panic if a NaN
        // ever slipped through (it sorts last instead of losing `min`).
        let (mut ti, best) = cur
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, c))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one state");

        // Backtrack over the flat tables.
        let n_layers = self.layers.len();
        let mut plan = vec![LayerPlan::data_parallel(); n_layers];
        for (s, step) in steps.iter().enumerate().rev() {
            match step {
                StepKind::Layer { index } => {
                    plan[*index] = LayerPlan::new(self.config.types[ti], self.ratio_of(*index, ti));
                }
                StepKind::Block { range_base } => {
                    let (off, len) = ranges[range_base + ti];
                    for &(layer_idx, a_ti) in
                        &assign_pool[off as usize..(off + len) as usize]
                    {
                        let (layer_idx, a_ti) = (layer_idx as usize, a_ti as usize);
                        plan[layer_idx] =
                            LayerPlan::new(self.config.types[a_ti], self.ratio_of(layer_idx, a_ti));
                    }
                }
            }
            let p = back[s * k + ti];
            if p != NO_PREV {
                ti = p as usize;
            }
        }

        self.put_f64(cur);
        self.put_f64(next);
        self.put_states(cur_info);
        self.put_states(next_info);
        self.put_u32(back);
        self.put_u32(slot_layers);
        self.put_pairs(ranges);
        self.put_pairs(assign_pool);
        Ok(SearchOutcome {
            plan: NetworkPlan::new(plan),
            cost: best,
        })
    }

    /// Brute-force reference: enumerates every combination of trunk
    /// states and block-internal types and returns the best. Exponential —
    /// use only on small networks (tests and sanity checks).
    #[must_use]
    pub fn exhaustive(&self) -> SearchOutcome {
        let k = self.k();
        let elems = self.view.elems();
        let mut best_cost = f64::INFINITY;
        let mut best_plan: Vec<LayerPlan> = Vec::new();

        // Recursively enumerate per-elem exit states and block internals.
        #[allow(clippy::too_many_arguments)]
        fn recurse(
            s: &LevelSearcher<'_>,
            elems: &[TrainElem],
            entry: Option<State>,
            acc: f64,
            plan: &mut Vec<LayerPlan>,
            best_cost: &mut f64,
            best_plan: &mut Vec<LayerPlan>,
            k: usize,
        ) {
            let Some((elem, rest)) = elems.split_first() else {
                if acc < *best_cost {
                    *best_cost = acc;
                    *best_plan = plan.clone();
                }
                return;
            };
            match elem {
                TrainElem::Layer(layer) => {
                    let l = layer.index();
                    for ti in 0..k {
                        let edge = entry.map_or(0.0, |e| s.consume_cost(e, l, ti));
                        let c = acc + edge + s.cost_of(l, ti);
                        plan[l] = LayerPlan::new(s.config.types[ti], s.ratio_of(l, ti));
                        recurse(s, rest, Some(s.state(l, ti)), c, plan, best_cost, best_plan, k);
                    }
                }
                TrainElem::Block { branches, fork, .. } => {
                    let fork_elems = s.scaled_fork_elems(branches, fork.size());
                    for ti in 0..k {
                        let exit = s.junction_state(branches, ti);
                        // Enumerate every branch-internal assignment.
                        enumerate_branches(
                            s, branches, 0, entry, exit, fork_elems, acc, plan, best_cost,
                            best_plan, rest, k,
                        );
                    }
                }
            }
        }

        /// Enumerates internal type assignments branch by branch, then
        /// continues with the remaining trunk.
        #[allow(clippy::too_many_arguments)]
        fn enumerate_branches(
            s: &LevelSearcher<'_>,
            branches: &[Vec<TrainLayer>],
            b: usize,
            entry: Option<State>,
            exit: State,
            fork_elems: u64,
            acc: f64,
            plan: &mut Vec<LayerPlan>,
            best_cost: &mut f64,
            best_plan: &mut Vec<LayerPlan>,
            rest: &[TrainElem],
            k: usize,
        ) {
            if b == branches.len() {
                recurse(s, rest, Some(exit), acc, plan, best_cost, best_plan, k);
                return;
            }
            let branch = &branches[b];
            let exit_elems = s.branch_exit_elems(branch, fork_elems);
            if branch.is_empty() {
                let c = entry.map_or(0.0, |e| s.relayout_cost(e, exit, exit_elems));
                enumerate_branches(
                    s, branches, b + 1, entry, exit, fork_elems, acc + c, plan, best_cost,
                    best_plan, rest, k,
                );
                return;
            }
            // Enumerate this branch's type vector.
            let mut assignment = vec![0usize; branch.len()];
            loop {
                let c = s.branch_cost_fixed(branch, &assignment, entry, exit, exit_elems);
                for (layer, &ti) in branch.iter().zip(&assignment) {
                    plan[layer.index()] =
                        LayerPlan::new(s.config.types[ti], s.ratio_of(layer.index(), ti));
                }
                enumerate_branches(
                    s, branches, b + 1, entry, exit, fork_elems, acc + c, plan, best_cost,
                    best_plan, rest, k,
                );
                // Next assignment (odometer).
                let mut pos = 0;
                loop {
                    if pos == assignment.len() {
                        return;
                    }
                    assignment[pos] += 1;
                    if assignment[pos] < k {
                        break;
                    }
                    assignment[pos] = 0;
                    pos += 1;
                }
            }
        }

        let n_layers = self.layers.len();
        let mut plan = vec![LayerPlan::data_parallel(); n_layers];
        recurse(
            self,
            elems,
            None,
            0.0,
            &mut plan,
            &mut best_cost,
            &mut best_plan,
            k,
        );
        SearchOutcome {
            plan: NetworkPlan::new(best_plan),
            cost: best_cost,
        }
    }

    /// Cost of one branch under a fixed internal type assignment.
    fn branch_cost_fixed(
        &self,
        branch: &[TrainLayer],
        assignment: &[usize],
        entry: Option<State>,
        exit: State,
        exit_elems: u64,
    ) -> f64 {
        let mut cost = 0.0;
        let first = &branch[0];
        if let Some(e) = entry {
            cost += self.consume_cost(e, first.index(), assignment[0]);
        }
        cost += self.cost_of(first.index(), assignment[0]);
        for (i, pair) in branch.windows(2).enumerate() {
            let prev = self.state(pair[0].index(), assignment[i]);
            cost += self.consume_cost(prev, pair[1].index(), assignment[i + 1]);
            cost += self.cost_of(pair[1].index(), assignment[i + 1]);
        }
        let last = branch.last().expect("non-empty");
        let last_state = self.state(last.index(), assignment[assignment.len() - 1]);
        cost + self.relayout_cost(last_state, exit, exit_elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_cost::CostConfig;
    use accpar_dnn::{Layer, NetworkBuilder};
    use accpar_hw::{AcceleratorArray, GroupTree};
    use accpar_tensor::{ConvGeometry, FeatureShape};

    fn hetero_env() -> PairEnv {
        let tree =
            GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 1).unwrap();
        PairEnv::from_node(tree.root()).unwrap()
    }

    fn fc_view(batch: usize, dims: &[usize]) -> TrainView {
        let mut b = NetworkBuilder::new("t", FeatureShape::fc(batch, dims[0]));
        for (i, pair) in dims.windows(2).enumerate() {
            b = b.linear(format!("fc{i}"), pair[0], pair[1]);
        }
        b.build().unwrap().train_view().unwrap()
    }

    fn res_view() -> TrainView {
        NetworkBuilder::new("r", FeatureShape::conv(16, 8, 8, 8))
            .conv2d("stem", 8, 8, ConvGeometry::same(3))
            .residual(
                vec![
                    Layer::conv2d("b1", 8, 8, ConvGeometry::same(3)),
                    Layer::conv2d("b2", 8, 8, ConvGeometry::same(3)),
                ],
                vec![],
            )
            .residual(vec![Layer::conv2d("c1", 8, 8, ConvGeometry::same(3))], vec![])
            .flatten("f")
            .linear("fc", 8 * 64, 10)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
    }

    #[test]
    fn dp_matches_exhaustive_on_chains() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        for dims in [
            vec![64, 32, 16],
            vec![100, 200, 50, 25],
            vec![32, 32, 32, 32, 32],
        ] {
            let view = fc_view(64, &dims);
            let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
            let dp = s.search();
            let brute = s.exhaustive();
            assert!(
                (dp.cost - brute.cost).abs() / brute.cost < 1e-12,
                "dims {dims:?}: dp {} vs brute {}",
                dp.cost,
                brute.cost
            );
            assert_eq!(dp.plan, brute.plan, "dims {dims:?}");
        }
    }

    #[test]
    fn dp_matches_exhaustive_with_blocks() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let view = res_view();
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let dp = s.search();
        let brute = s.exhaustive();
        assert!(
            (dp.cost - brute.cost).abs() / brute.cost < 1e-12,
            "dp {} vs brute {}",
            dp.cost,
            brute.cost
        );
    }

    #[test]
    fn dp_matches_exhaustive_on_lowered_attention() {
        // An encoder block lowers to a q|k|v block plus the o projection
        // and FFN pair — the same multi-path machinery exercised by
        // residual networks, now with attention-stage terms in the layer
        // costs. DP must still agree with brute force over the full
        // 3^layers space.
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let view = NetworkBuilder::new("enc", FeatureShape::seq(4, 16, 32))
            .multi_head_attention("attn", 4, 32, 8)
            .linear("ffn_up", 32, 128)
            .relu("gelu")
            .linear("ffn_down", 128, 32)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let dp = s.search();
        let brute = s.exhaustive();
        assert!(
            (dp.cost - brute.cost).abs() / brute.cost < 1e-12,
            "dp {} vs brute {}",
            dp.cost,
            brute.cost
        );
        assert_eq!(dp.plan, brute.plan);
        assert_eq!(dp.plan.len(), 6);
    }

    #[test]
    fn dp_matches_exhaustive_under_hypar_config() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::hypar());
        let config = SearchConfig::hypar();
        let view = fc_view(128, &[256, 512, 128, 64]);
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let dp = s.search();
        let brute = s.exhaustive();
        assert!((dp.cost - brute.cost).abs() <= 1e-9 * brute.cost.max(1.0));
        // HyPar plans only use Types I and II.
        assert_eq!(dp.plan.count(PartitionType::TypeIII), 0);
    }

    #[test]
    fn search_beats_static_data_parallelism() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        // An MLP with huge weights: model partitioning must win somewhere.
        let view = fc_view(64, &[4096, 4096, 4096]);
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let found = s.search();

        // Evaluate all-Type-I-at-equal-ratio with the same cost tables.
        let dp_types = [0usize; 2];
        let mut dp_cost = 0.0;
        let equal_config = SearchConfig {
            types: vec![PartitionType::TypeI].into(),
            solver: RatioSolver::Fixed(Ratio::EQUAL),
            collapse: true,
        };
        let dp_search = LevelSearcher::new(&view, &model, &equal_config, &env, None).unwrap();
        for (l, &ti) in dp_types.iter().enumerate() {
            dp_cost += dp_search.cost_of(l, ti);
            if l > 0 {
                dp_cost += dp_search.consume_cost(dp_search.state(l - 1, ti), l, ti);
            }
        }
        assert!(found.cost < dp_cost, "{} vs {}", found.cost, dp_cost);
    }

    #[test]
    fn empty_search_space_is_rejected() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig {
            types: Vec::new().into(),
            solver: RatioSolver::PaperLinear,
            collapse: true,
        };
        let view = fc_view(8, &[4, 4]);
        let err = LevelSearcher::new(&view, &model, &config, &env, None).unwrap_err();
        assert_eq!(err, PlanError::EmptySearchSpace);
    }

    #[test]
    fn restricting_the_space_never_helps() {
        // AccPar's complete space must be at least as good as any subset
        // (§3.5's argument against HyPar's incompleteness).
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let view = fc_view(128, &[512, 1024, 256]);
        let full = SearchConfig::accpar();
        let full_cost = LevelSearcher::new(&view, &model, &full, &env, None)
            .unwrap()
            .search()
            .cost;
        for subset in [
            vec![PartitionType::TypeI],
            vec![PartitionType::TypeI, PartitionType::TypeII],
            vec![PartitionType::TypeII, PartitionType::TypeIII],
        ] {
            let config = SearchConfig {
                types: subset.clone().into(),
                solver: RatioSolver::PaperLinear,
                collapse: true,
            };
            let cost = LevelSearcher::new(&view, &model, &config, &env, None)
                .unwrap()
                .search()
                .cost;
            assert!(full_cost <= cost * (1.0 + 1e-12), "subset {subset:?}");
        }
    }

    #[test]
    fn plans_cover_every_weighted_layer() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let view = res_view();
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let outcome = s.search();
        assert_eq!(outcome.plan.len(), view.weighted_len());
    }

    #[test]
    fn evaluate_plan_matches_search_on_its_own_result() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        for view in [fc_view(64, &[100, 200, 50]), res_view()] {
            let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
            let outcome = s.search();
            let evaluated = s.evaluate_plan(&outcome.plan).unwrap();
            assert!(
                (evaluated - outcome.cost).abs() <= 1e-12 * outcome.cost,
                "search {} vs evaluate {}",
                outcome.cost,
                evaluated
            );
        }
    }

    #[test]
    fn search_is_no_worse_than_any_random_plan() {
        use accpar_partition::NetworkPlan;
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        for view in [fc_view(128, &[512, 256, 384, 128]), res_view()] {
            let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
            let best = s.search().cost;
            // A deterministic pseudo-random sweep over assignments.
            let n = view.weighted_len();
            for seed in 0..81usize {
                let plan: NetworkPlan = (0..n)
                    .map(|l| {
                        let t = PartitionType::ALL[(seed / 3usize.pow((l % 4) as u32)) % 3];
                        LayerPlan::new(t, Ratio::EQUAL)
                    })
                    .collect();
                let cost = s.evaluate_plan(&plan).unwrap();
                assert!(
                    best <= cost * (1.0 + 1e-12),
                    "seed {seed}: search {best} vs plan {cost}"
                );
            }
        }
    }

    #[test]
    fn evaluate_plan_rejects_types_outside_the_space() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::hypar());
        let config = SearchConfig::hypar(); // no Type-III
        let view = fc_view(8, &[4, 4]);
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let plan = NetworkPlan::uniform(1, LayerPlan::new(PartitionType::TypeIII, Ratio::EQUAL));
        let err = s.evaluate_plan(&plan).unwrap_err();
        assert!(matches!(err, PlanError::Mismatch(_)), "{err}");
        assert!(err.to_string().contains("search space"), "{err}");
    }

    #[test]
    fn evaluate_plan_rejects_wrong_layer_counts_and_bad_scales() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let view = fc_view(8, &[4, 4, 4]);
        let s = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        let short = NetworkPlan::uniform(1, LayerPlan::data_parallel());
        let err = s.evaluate_plan(&short).unwrap_err();
        assert!(matches!(err, PlanError::Mismatch(_)), "{err}");

        let bad_scales = vec![ShardScales::full(); 1];
        let err =
            LevelSearcher::new(&view, &model, &config, &env, Some(&bad_scales)).unwrap_err();
        assert!(matches!(err, PlanError::Mismatch(_)), "{err}");
        assert!(err.to_string().contains("shard scales"), "{err}");
    }

    #[test]
    fn scaled_search_costs_shrink() {
        let env = hetero_env();
        let model = CostModel::new(CostConfig::default());
        let config = SearchConfig::accpar();
        let view = fc_view(128, &[512, 512, 512]);
        let full = LevelSearcher::new(&view, &model, &config, &env, None)
            .unwrap()
            .search()
            .cost;
        let quarter = vec![
            ShardScales {
                f_in: 0.25,
                f_out: 0.25,
                weight: 0.25,
                flops: 0.25
            };
            view.weighted_len()
        ];
        let scaled = LevelSearcher::new(&view, &model, &config, &env, Some(&quarter))
            .unwrap()
            .search()
            .cost;
        assert!(scaled < full);
    }
}
