use accpar_dnn::NetworkError;
use accpar_hw::HwError;
use accpar_sim::SimError;
use std::fmt;

/// Errors produced while planning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The network could not be analyzed.
    Network(NetworkError),
    /// The array could not be bisected as requested.
    Hw(HwError),
    /// The produced plan failed simulation-time validation (indicates a
    /// planner bug).
    Sim(SimError),
    /// The search was configured with an empty set of partition types.
    EmptySearchSpace,
    /// No plan fits the array's HBM, even with every weight sharded.
    Infeasible {
        /// Peak per-leaf bytes of the best attempt.
        required_bytes: f64,
        /// Peak occupancy (bytes / capacity) of the best attempt.
        occupancy: f64,
    },
    /// The hardware surviving a fault scenario cannot host a plan at
    /// all (e.g. too few boards left to bisect).
    ReplanInfeasible(String),
    /// An input does not line up with the search: wrong number of shard
    /// scales or plan entries, or a plan type outside the configured
    /// space.
    Mismatch(String),
    /// A planner was configured with invalid knobs (zero thread budget,
    /// zero hierarchy depth); reported by
    /// [`PlannerBuilder::build`](crate::PlannerBuilder::build).
    Config(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Network(e) => write!(f, "network error: {e}"),
            PlanError::Hw(e) => write!(f, "hardware error: {e}"),
            PlanError::Sim(e) => write!(f, "simulation error: {e}"),
            PlanError::EmptySearchSpace => {
                write!(f, "search space must contain at least one partition type")
            }
            PlanError::Infeasible {
                required_bytes,
                occupancy,
            } => write!(
                f,
                "no plan fits the array's memory: peak {:.2} GB per leaf ({:.0}% of HBM)",
                required_bytes / 1e9,
                occupancy * 100.0
            ),
            PlanError::ReplanInfeasible(msg) => {
                write!(f, "cannot re-plan on the surviving hardware: {msg}")
            }
            PlanError::Mismatch(msg) => {
                write!(f, "input does not match the search: {msg}")
            }
            PlanError::Config(msg) => {
                write!(f, "invalid planner configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Network(e) => Some(e),
            PlanError::Hw(e) => Some(e),
            PlanError::Sim(e) => Some(e),
            PlanError::EmptySearchSpace
            | PlanError::Infeasible { .. }
            | PlanError::ReplanInfeasible(_)
            | PlanError::Mismatch(_)
            | PlanError::Config(_) => None,
        }
    }
}

impl From<NetworkError> for PlanError {
    fn from(e: NetworkError) -> Self {
        PlanError::Network(e)
    }
}

impl From<HwError> for PlanError {
    fn from(e: HwError) -> Self {
        PlanError::Hw(e)
    }
}

impl From<SimError> for PlanError {
    fn from(e: SimError) -> Self {
        PlanError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanError>();
    }

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: PlanError = HwError::EmptyArray.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("hardware"));
        assert!(PlanError::EmptySearchSpace.source().is_none());
    }
}
