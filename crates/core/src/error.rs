use accpar_dnn::NetworkError;
use accpar_hw::HwError;
use accpar_sim::SimError;
use std::fmt;

/// Errors produced while planning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The network could not be analyzed.
    Network(NetworkError),
    /// The array could not be bisected as requested.
    Hw(HwError),
    /// The produced plan failed simulation-time validation (indicates a
    /// planner bug).
    Sim(SimError),
    /// The search was configured with an empty set of partition types.
    EmptySearchSpace,
    /// No plan fits the array's HBM, even with every weight sharded.
    Infeasible {
        /// Peak per-leaf bytes of the best attempt.
        required_bytes: f64,
        /// Peak occupancy (bytes / capacity) of the best attempt.
        occupancy: f64,
    },
    /// The hardware surviving a fault scenario cannot host a plan at
    /// all (e.g. too few boards left to bisect).
    ReplanInfeasible(String),
    /// An input does not line up with the search: wrong number of shard
    /// scales or plan entries, or a plan type outside the configured
    /// space.
    Mismatch(String),
    /// A planner was configured with invalid knobs (zero thread budget,
    /// zero hierarchy depth); reported by
    /// [`PlannerBuilder::build`](crate::PlannerBuilder::build).
    Config(String),
    /// A [`Budget`](accpar_runtime::Budget) stopped the search before
    /// any plan could be assembled. The planner converts this into a
    /// partial result internally; it only surfaces from direct
    /// level-searcher use.
    Interrupted(accpar_runtime::StopReason),
    /// A worker closure panicked through every retry attempt and the
    /// serial fallback; the panic was isolated instead of unwinding
    /// through the planner.
    WorkerPanic {
        /// Total attempts made on the failing unit (retries + 1).
        attempts: u32,
        /// Panic payload, when it was a string.
        message: String,
    },
    /// A cost table produced a non-finite value (NaN or infinity, e.g.
    /// from a zero-bandwidth link under the full objective): the DP
    /// `min` comparisons would silently drop such entries, so the
    /// search refuses to run on them.
    NonFinite(String),
    /// A batch-serving request was shed because the queue exceeded the
    /// configured bound (see [`ServeConfig`](crate::ServeConfig)).
    Overloaded {
        /// Requests in the submitted batch.
        depth: usize,
        /// Configured queue bound.
        bound: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Network(e) => write!(f, "network error: {e}"),
            PlanError::Hw(e) => write!(f, "hardware error: {e}"),
            PlanError::Sim(e) => write!(f, "simulation error: {e}"),
            PlanError::EmptySearchSpace => {
                write!(f, "search space must contain at least one partition type")
            }
            PlanError::Infeasible {
                required_bytes,
                occupancy,
            } => write!(
                f,
                "no plan fits the array's memory: peak {:.2} GB per leaf ({:.0}% of HBM)",
                required_bytes / 1e9,
                occupancy * 100.0
            ),
            PlanError::ReplanInfeasible(msg) => {
                write!(f, "cannot re-plan on the surviving hardware: {msg}")
            }
            PlanError::Mismatch(msg) => {
                write!(f, "input does not match the search: {msg}")
            }
            PlanError::Config(msg) => {
                write!(f, "invalid planner configuration: {msg}")
            }
            PlanError::Interrupted(reason) => {
                write!(f, "search interrupted by its budget: {reason}")
            }
            PlanError::WorkerPanic { attempts, message } => {
                write!(f, "worker panicked after {attempts} attempt(s): {message}")
            }
            PlanError::NonFinite(msg) => {
                write!(f, "non-finite cost in the search space: {msg}")
            }
            PlanError::Overloaded { depth, bound } => {
                write!(
                    f,
                    "request shed: queue depth {depth} exceeds the bound of {bound}"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Network(e) => Some(e),
            PlanError::Hw(e) => Some(e),
            PlanError::Sim(e) => Some(e),
            PlanError::EmptySearchSpace
            | PlanError::Infeasible { .. }
            | PlanError::ReplanInfeasible(_)
            | PlanError::Mismatch(_)
            | PlanError::Config(_)
            | PlanError::Interrupted(_)
            | PlanError::WorkerPanic { .. }
            | PlanError::NonFinite(_)
            | PlanError::Overloaded { .. } => None,
        }
    }
}

impl From<NetworkError> for PlanError {
    fn from(e: NetworkError) -> Self {
        PlanError::Network(e)
    }
}

impl From<HwError> for PlanError {
    fn from(e: HwError) -> Self {
        PlanError::Hw(e)
    }
}

impl From<SimError> for PlanError {
    fn from(e: SimError) -> Self {
        PlanError::Sim(e)
    }
}

impl From<accpar_runtime::StopReason> for PlanError {
    fn from(reason: accpar_runtime::StopReason) -> Self {
        PlanError::Interrupted(reason)
    }
}

impl From<accpar_runtime::WorkerPanic> for PlanError {
    fn from(e: accpar_runtime::WorkerPanic) -> Self {
        PlanError::WorkerPanic {
            attempts: e.attempts,
            message: e.message,
        }
    }
}

impl From<accpar_cost::NonFiniteCost> for PlanError {
    fn from(e: accpar_cost::NonFiniteCost) -> Self {
        PlanError::NonFinite(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanError>();
    }

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: PlanError = HwError::EmptyArray.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("hardware"));
        assert!(PlanError::EmptySearchSpace.source().is_none());
    }
}
