//! Graceful degradation: re-run the layer-wise search against faulted
//! hardware and report how the plan (and its cost) shifts.
//!
//! Given a plan produced for the healthy array and a
//! [`FaultModel`], [`replan`](fn@replan) folds the rate
//! faults into a degraded [`GroupTree`], re-runs AccPar's dynamic
//! program (the same [`plan_node`](crate::hierarchy::plan_node)
//! machinery the healthy planner uses) against the degraded
//! capabilities, and adopts the new plan only when it simulates at least
//! as fast as the old plan on the *same* degraded hardware — the
//! replanner never makes things worse.
//!
//! Dropout changes the tree's shape: the dropped leaves' boards are
//! removed ([`GroupTree::without_leaves`]) and the search runs on the
//! reduced array. Leaf-targeted faults are carried over by board
//! identity; cut-targeted faults cannot survive a re-bisection (the cut
//! numbering belongs to the old shape) and are reported in
//! [`ReplanOutcome::discarded`].

use crate::error::PlanError;
use crate::hierarchy::plan_node_budgeted;
use crate::memo::SearchCache;
use crate::search::SearchConfig;
use accpar_cost::{CostConfig, CostModel, RatioSolver};
use accpar_dnn::TrainView;
use accpar_hw::{AcceleratorArray, Fault, FaultKind, FaultModel, FaultTarget, GroupTree};
use accpar_obs::Obs;
use accpar_partition::{LayerPlan, PlanTree};
use accpar_runtime::{Budget, Pool};
use accpar_sim::{SimConfig, Simulator};
use std::fmt;

/// Configuration of the replanner: the same knobs as
/// [`Planner`](crate::Planner), plus whether to compute the (more
/// expensive) per-fault sensitivity summary.
#[derive(Debug, Clone)]
pub struct ReplanConfig {
    /// Cost-model configuration for the degraded search.
    pub cost_config: CostConfig,
    /// Ratio solver for the degraded search.
    pub solver: RatioSolver,
    /// Simulator configuration used to compare old and new plans.
    pub sim_config: SimConfig,
    /// Compute [`ReplanOutcome::sensitivity`] (one extra simulation — or,
    /// for dropout, one extra replan — per injected fault).
    pub sensitivity: bool,
    /// Thread budget for the degraded search and the sensitivity sweep
    /// (`None`: the `ACCPAR_THREADS` environment variable, falling back
    /// to the machine's available parallelism). Results are
    /// budget-independent.
    pub threads: Option<usize>,
    /// Observability handle: counts replans, reports adoption and
    /// degradation metrics, and emits a `replan.outcome` event. The
    /// default ([`Obs::off`]) is inert; instrumentation never changes
    /// the outcome.
    pub obs: Obs,
    /// Isomorphism collapse in the degraded search (default: enabled).
    /// Bit-identical either way — degraded capabilities enter the class
    /// keys through the environment, so only the classes a fault
    /// actually touches re-split. See [`SearchConfig::collapse`].
    pub iso: bool,
    /// Execution budget for the degraded search (default: unlimited).
    /// A budget stop is not an error: stopped levels fall back to the
    /// data-parallel baseline and the never-worse gate still applies to
    /// whatever the search produced. Budget clones share counters, so
    /// pass a *fresh* capped budget per call rather than reusing one
    /// config across replans.
    pub budget: Budget,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        Self {
            cost_config: CostConfig::default(),
            solver: RatioSolver::default(),
            sim_config: SimConfig::cost_model_aligned(),
            sensitivity: true,
            threads: None,
            obs: Obs::off(),
            iso: true,
            budget: Budget::unlimited(),
        }
    }
}

/// One per-layer difference between the old and the adopted plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanDelta {
    /// Pre-order index of the plan-tree node the entry lives in.
    pub node: usize,
    /// Weighted-layer index.
    pub layer: usize,
    /// The healthy plan's entry.
    pub old: LayerPlan,
    /// The adopted plan's entry.
    pub new: LayerPlan,
}

impl fmt::Display for PlanDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} layer {}: {} -> {}",
            self.node, self.layer, self.old, self.new
        )
    }
}

/// How much one fault alone slows the original plan down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultImpact {
    /// The injected fault.
    pub fault: Fault,
    /// Degraded step time over nominal step time (`>= 1` unless the
    /// fault is somehow beneficial; dropout impacts are measured after a
    /// solo replan, so they can be `< 1` on pathological inputs).
    pub slowdown: f64,
}

impl fmt::Display for FaultImpact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:.3}x step time", self.fault, self.slowdown)
    }
}

/// The result of re-planning against faulted hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanOutcome {
    /// The adopted plan (the old plan when it was not beaten).
    pub plan: PlanTree,
    /// Whether the adopted plan differs from the old one.
    pub replanned: bool,
    /// The surviving array (a clone of the input unless leaves dropped).
    pub array: AcceleratorArray,
    /// The surviving healthy tree (rebuilt after dropout).
    pub tree: GroupTree,
    /// The effective fault model on the surviving tree (dropouts removed,
    /// leaf faults re-targeted by board identity).
    pub faults: FaultModel,
    /// Faults that could not be carried over to the surviving tree.
    pub discarded: Vec<Fault>,
    /// Step time of the old plan on the healthy hardware.
    pub nominal_secs: f64,
    /// Step time of the old plan on the degraded hardware — `None` when
    /// dropout made the old plan unrunnable.
    pub degraded_old_secs: Option<f64>,
    /// Step time of the adopted plan on the degraded hardware. Never
    /// greater than `degraded_old_secs` when that is `Some`.
    pub degraded_secs: f64,
    /// Whether the degraded search ran to DP optimality on every level.
    /// `false` when a [`ReplanConfig::budget`] stop forced some levels
    /// onto the data-parallel fallback.
    pub complete: bool,
    /// Layer-wise differences between the old and adopted plans (empty
    /// when the tree changed shape and entries are not comparable).
    pub deltas: Vec<PlanDelta>,
    /// Per-fault solo slowdowns of the original plan (empty unless
    /// [`ReplanConfig::sensitivity`] is set).
    pub sensitivity: Vec<FaultImpact>,
}

impl ReplanOutcome {
    /// Speedup of the adopted plan over the old plan on the degraded
    /// hardware (`None` when the old plan cannot run there).
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        self.degraded_old_secs.map(|old| old / self.degraded_secs)
    }

    /// Slowdown of the degraded (adopted) step versus the nominal step.
    #[must_use]
    pub fn degradation(&self) -> f64 {
        if self.nominal_secs > 0.0 {
            self.degraded_secs / self.nominal_secs
        } else {
            1.0
        }
    }
}

impl fmt::Display for ReplanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nominal {:.3} ms, degraded {:.3} ms ({:.2}x)",
            self.nominal_secs * 1e3,
            self.degraded_secs * 1e3,
            self.degradation()
        )?;
        match self.speedup() {
            Some(s) if self.replanned => write!(f, "; replanned, {s:.2}x over stale plan")?,
            Some(_) => write!(f, "; stale plan kept")?,
            None => write!(f, "; replanned after dropout")?,
        }
        if !self.discarded.is_empty() {
            write!(f, "; {} fault(s) discarded", self.discarded.len())?;
        }
        Ok(())
    }
}

/// Re-plans `plan` for `view` on the faulted version of `array`/`tree`.
///
/// See the [module docs](self) for the algorithm. The adopted plan's
/// degraded step time is guaranteed to be at most the old plan's
/// degraded step time whenever the old plan can still run.
///
/// # Errors
///
/// Propagates search and simulation errors; [`PlanError::Hw`] with
/// [`HwError::EmptyArray`](accpar_hw::HwError::EmptyArray) when every
/// board dropped out; [`PlanError::ReplanInfeasible`] when the surviving
/// array cannot host a hierarchical plan at all.
pub fn replan(
    view: &TrainView,
    array: &AcceleratorArray,
    tree: &GroupTree,
    plan: &PlanTree,
    faults: &FaultModel,
    config: &ReplanConfig,
) -> Result<ReplanOutcome, PlanError> {
    replan_with(view, array, tree, plan, faults, config, None)
}

/// Like [`replan`], sharing an existing [`SearchCache`] with the
/// degraded search — typically the cache the healthy plan was built
/// with, so unchanged subtrees of the hierarchy resolve from the memo.
/// Degraded group capabilities differ bitwise from healthy ones, so
/// faulted levels can never alias cached healthy entries.
///
/// # Errors
///
/// See [`replan`].
pub fn replan_with(
    view: &TrainView,
    array: &AcceleratorArray,
    tree: &GroupTree,
    plan: &PlanTree,
    faults: &FaultModel,
    config: &ReplanConfig,
    cache: Option<&SearchCache>,
) -> Result<ReplanOutcome, PlanError> {
    let pool = config
        .threads
        .map_or_else(Pool::from_env, Pool::new);
    let span = config.obs.span(
        "replan",
        &[
            ("faults", faults.faults().len().into()),
            ("sensitivity", config.sensitivity.into()),
        ],
    );
    let outcome = replan_inner(
        view,
        array,
        tree,
        plan,
        faults,
        config,
        config.sensitivity,
        pool,
        cache,
    )?;
    if config.obs.enabled() {
        let obs = &config.obs;
        obs.counter("replan.runs").inc();
        if outcome.replanned {
            obs.counter("replan.adopted").inc();
        }
        obs.counter("replan.deltas").add(outcome.deltas.len() as u64);
        obs.counter("replan.discarded_faults")
            .add(outcome.discarded.len() as u64);
        obs.gauge("replan.degradation").set(outcome.degradation());
        span.event(
            "replan.outcome",
            &[
                ("replanned", outcome.replanned.into()),
                ("deltas", outcome.deltas.len().into()),
                ("nominal_ms", (outcome.nominal_secs * 1e3).into()),
                ("degraded_ms", (outcome.degraded_secs * 1e3).into()),
                (
                    "speedup",
                    outcome.speedup().unwrap_or(f64::NAN).into(),
                ),
            ],
        );
    }
    Ok(outcome)
}

#[allow(clippy::too_many_arguments)]
fn replan_inner(
    view: &TrainView,
    array: &AcceleratorArray,
    tree: &GroupTree,
    plan: &PlanTree,
    faults: &FaultModel,
    config: &ReplanConfig,
    with_sensitivity: bool,
    pool: Pool,
    cache: Option<&SearchCache>,
) -> Result<ReplanOutcome, PlanError> {
    let sim = Simulator::new(config.sim_config);
    let nominal_secs = sim.simulate(view, plan, tree, None)?.total_secs;

    // Survive dropout: remove dropped boards and carry the remaining
    // faults over to the rebuilt tree.
    let dropped = faults.dropped_leaves();
    let (surv_array, surv_tree, eff_faults, discarded) = survive(array, tree, faults)?;

    let degraded_old_secs = if dropped.is_empty() {
        Some(
            sim.simulate(view, plan, &surv_tree, Some(&eff_faults))?
                .total_secs,
        )
    } else {
        None
    };

    // Re-run the layer-wise DP against the degraded capabilities.
    let degraded_tree = surv_tree.degraded(&eff_faults).map_err(PlanError::Hw)?;
    let model = CostModel::new(config.cost_config);
    let mut search = SearchConfig::accpar_with(config.solver);
    search.collapse = config.iso;
    let (candidate, report) = plan_node_budgeted(
        view,
        degraded_tree.root(),
        &model,
        &search,
        None,
        pool,
        cache,
        &Obs::off(),
        None,
        &config.budget,
    )?;
    let candidate = candidate.ok_or_else(|| {
        PlanError::ReplanInfeasible(
            "the surviving array cannot be bisected into a hierarchy".into(),
        )
    })?;
    let candidate_secs = sim
        .simulate(view, &candidate, &surv_tree, Some(&eff_faults))?
        .total_secs;

    // Never-worse guarantee: keep the stale plan unless the fresh search
    // actually beats it on the degraded hardware.
    let (adopted, degraded_secs) = match degraded_old_secs {
        Some(old) if old <= candidate_secs => (plan.clone(), old),
        _ => (candidate, candidate_secs),
    };
    let replanned = adopted != *plan;
    let deltas = diff_plans(plan, &adopted);

    let sensitivity = if with_sensitivity {
        // Each fault's solo impact is independent of the others: sweep
        // them with the pool. `par_map` keeps fault order, and every
        // nested dropout replan runs serially inside its worker.
        pool.par_map(faults.faults(), |_, fault| -> Result<FaultImpact, PlanError> {
            let solo = FaultModel::with_seed(faults.seed()).push(*fault)?;
            let secs = match fault.kind {
                FaultKind::Dropout => {
                    replan_inner(
                        view,
                        array,
                        tree,
                        plan,
                        &solo,
                        config,
                        false,
                        Pool::serial(),
                        cache,
                    )?
                    .degraded_secs
                }
                _ => {
                    sim.simulate(view, plan, tree, Some(&solo))?
                        .total_secs
                }
            };
            let slowdown = if nominal_secs > 0.0 {
                secs / nominal_secs
            } else {
                1.0
            };
            Ok(FaultImpact {
                fault: *fault,
                slowdown,
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?
    } else {
        Vec::new()
    };

    Ok(ReplanOutcome {
        plan: adopted,
        replanned,
        array: surv_array,
        tree: surv_tree,
        faults: eff_faults,
        discarded,
        nominal_secs,
        degraded_old_secs,
        degraded_secs,
        complete: report.is_complete(),
        deltas,
        sensitivity,
    })
}

/// Folds dropout out of a fault model: removes the dropped boards from
/// the array/tree and carries the remaining faults over to the rebuilt
/// shape. With no dropout this is a plain clone. Returns the surviving
/// array, tree, effective faults, and the faults discarded because they
/// could not be re-targeted.
pub(crate) fn survive(
    array: &AcceleratorArray,
    tree: &GroupTree,
    faults: &FaultModel,
) -> Result<(AcceleratorArray, GroupTree, FaultModel, Vec<Fault>), PlanError> {
    let dropped = faults.dropped_leaves();
    if dropped.is_empty() {
        return Ok((array.clone(), tree.clone(), faults.clone(), Vec::new()));
    }
    let (reduced, rebuilt) = tree.without_leaves(array, &dropped)?;
    let (eff, discarded) = carry_over(tree, &rebuilt, faults, &dropped)?;
    Ok((reduced, rebuilt, eff, discarded))
}

/// Carries the non-dropout faults of `faults` over from `old` to the
/// rebuilt `new` tree. Leaf faults follow their board: the fault lands
/// on whichever new leaf owns the old leaf's first board. Faults on
/// dropped leaves and all cut faults (the pre-order numbering died with
/// the old shape) are returned as discarded.
fn carry_over(
    old: &GroupTree,
    new: &GroupTree,
    faults: &FaultModel,
    dropped: &[usize],
) -> Result<(FaultModel, Vec<Fault>), PlanError> {
    let old_leaves: Vec<_> = old.root().leaves().collect();
    let dropped_boards: Vec<usize> = dropped
        .iter()
        .flat_map(|&l| old_leaves[l].group().shares().iter().map(|s| s.board))
        .collect();
    let mut eff = FaultModel::with_seed(faults.seed());
    let mut discarded = Vec::new();
    for fault in faults.faults() {
        let carried = match fault.target {
            FaultTarget::Leaf(leaf) if !dropped.contains(&leaf) => {
                old_leaves
                    .get(leaf)
                    .and_then(|node| node.group().shares().first())
                    .and_then(|share| {
                        // The board's index in the reduced array: shifted
                        // down by the dropped boards numbered below it.
                        let below = dropped_boards.iter().filter(|&&b| b < share.board).count();
                        leaf_of_board(new, share.board - below)
                    })
                    .map(|new_leaf| Fault {
                        target: FaultTarget::Leaf(new_leaf),
                        kind: fault.kind,
                    })
            }
            FaultTarget::Leaf(_) | FaultTarget::Cut(_) => None,
        };
        match carried {
            Some(f) if !matches!(f.kind, FaultKind::Dropout) => {
                eff = eff.push(f)?;
            }
            _ => discarded.push(*fault),
        }
    }
    Ok((eff, discarded))
}

/// The leaf index (left to right) owning `board` in `tree`.
fn leaf_of_board(tree: &GroupTree, board: usize) -> Option<usize> {
    tree.root()
        .leaves()
        .position(|leaf| leaf.group().shares().iter().any(|s| s.board == board))
}

/// Layer-wise differences between two plan trees of the same shape
/// (pre-order over nodes). Trees of different shapes — e.g. after
/// dropout shrank the hierarchy — are not comparable entry by entry, so
/// only the common prefix of the structure is diffed.
fn diff_plans(old: &PlanTree, new: &PlanTree) -> Vec<PlanDelta> {
    fn rec(old: &PlanTree, new: &PlanTree, node: &mut usize, out: &mut Vec<PlanDelta>) {
        let idx = *node;
        *node += 1;
        for (layer, (o, n)) in old
            .plan()
            .layers()
            .iter()
            .zip(new.plan().layers())
            .enumerate()
        {
            if o.ptype != n.ptype || (o.ratio.value() - n.ratio.value()).abs() > 1e-12 {
                out.push(PlanDelta {
                    node: idx,
                    layer,
                    old: *o,
                    new: *n,
                });
            }
        }
        if let (Some((ol, or)), Some((nl, nr))) = (old.children(), new.children()) {
            rec(ol, nl, node, out);
            rec(or, nr, node, out);
        }
    }
    let mut out = Vec::new();
    rec(old, new, &mut 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Planner, Strategy};
    use accpar_dnn::zoo;
    use accpar_hw::HwError;

    fn setup(
        v2: usize,
        v3: usize,
        levels: usize,
    ) -> (TrainView, AcceleratorArray, GroupTree, PlanTree) {
        let net = zoo::lenet(256).unwrap();
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
        let tree = GroupTree::bisect(&array, levels).unwrap();
        let plan = Planner::builder(&net, &array)
            .levels(levels).build().unwrap()
            .plan(Strategy::AccPar)
            .unwrap()
            .plan()
            .clone();
        (view, array, tree, plan)
    }

    #[test]
    fn replan_never_worse_under_straggler_and_link_faults() {
        let (view, array, tree, plan) = setup(2, 2, 2);
        // The acceptance scenario: one TPU-v2 leaf at half compute, one
        // cut at quarter bandwidth.
        let faults = FaultModel::with_seed(7)
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(1, 0.25)
            .unwrap();
        let outcome = replan(&view, &array, &tree, &plan, &faults, &ReplanConfig::default())
            .unwrap();
        let old = outcome.degraded_old_secs.unwrap();
        assert!(
            outcome.degraded_secs <= old * (1.0 + 1e-12),
            "replanned {} vs stale {}",
            outcome.degraded_secs,
            old
        );
        // The stale plan on strictly weaker hardware is at least as slow
        // as on healthy hardware (the adopted plan may beat the nominal
        // time though — the search optimizes the model, not the sim).
        assert!(old >= outcome.nominal_secs * (1.0 - 1e-12));
        assert_eq!(outcome.sensitivity.len(), 2);
        for impact in &outcome.sensitivity {
            assert!(impact.slowdown >= 1.0 - 1e-12, "{impact}");
        }
        assert_eq!(outcome.replanned, !outcome.deltas.is_empty());
        // Determinism: the whole pipeline is seeded and analytic.
        let again = replan(&view, &array, &tree, &plan, &faults, &ReplanConfig::default())
            .unwrap();
        assert_eq!(outcome, again);
    }

    #[test]
    fn replan_with_no_faults_keeps_the_plan() {
        let (view, array, tree, plan) = setup(1, 1, 1);
        let outcome = replan(
            &view,
            &array,
            &tree,
            &plan,
            &FaultModel::new(),
            &ReplanConfig::default(),
        )
        .unwrap();
        assert!(!outcome.replanned);
        assert_eq!(outcome.plan, plan);
        assert!(outcome.deltas.is_empty());
        assert_eq!(outcome.degraded_old_secs, Some(outcome.degraded_secs));
        assert!((outcome.degradation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn severe_straggler_forces_a_ratio_shift() {
        // Table 7 arrays are network-bound, where a straggler hides
        // behind link time — use a compute-bound array (fat 1 TB/s
        // links, 1 TFLOPS boards) so the slowdown actually bites.
        use accpar_hw::AcceleratorSpec;
        let net = zoo::lenet(256).unwrap();
        let view = net.train_view().unwrap();
        let spec = AcceleratorSpec::new("cb", 1e12, 1 << 34, 100e9, 1e12, 8, 1e12).unwrap();
        let array = AcceleratorArray::homogeneous(spec, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let plan = Planner::builder(&net, &array)
            .levels(1).build().unwrap()
            .plan(Strategy::AccPar)
            .unwrap()
            .plan()
            .clone();
        // One board collapses to 10% of its compute: the balanced split
        // is now badly wrong and the replanner must move work over.
        let faults = FaultModel::new().slow_leaf(1, 0.1).unwrap();
        let outcome = replan(&view, &array, &tree, &plan, &faults, &ReplanConfig::default())
            .unwrap();
        assert!(outcome.replanned, "expected a new plan");
        assert!(!outcome.deltas.is_empty());
        assert!(outcome.speedup().unwrap() > 1.0);
    }

    #[test]
    fn dropout_replans_on_the_reduced_array() {
        let (view, array, tree, plan) = setup(2, 2, 2);
        let faults = FaultModel::new()
            .drop_leaf(3)
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(0, 0.5)
            .unwrap();
        let outcome = replan(&view, &array, &tree, &plan, &faults, &ReplanConfig::default())
            .unwrap();
        assert!(outcome.replanned);
        assert_eq!(outcome.degraded_old_secs, None);
        assert_eq!(outcome.array.len(), 3);
        // The straggler fault survives (board identity preserved); the
        // cut fault dies with the old shape.
        assert_eq!(outcome.faults.faults().len(), 1);
        assert_eq!(outcome.discarded.len(), 2);
        assert!(outcome.degraded_secs > 0.0);
        assert!(outcome.to_string().contains("dropout"));
        // The adopted plan actually runs on the surviving hardware.
        let report = Simulator::new(ReplanConfig::default().sim_config)
            .simulate(&view, &outcome.plan, &outcome.tree, Some(&outcome.faults))
            .unwrap();
        assert!((report.total_secs - outcome.degraded_secs).abs() < 1e-15);
    }

    #[test]
    fn dropping_every_leaf_is_infeasible() {
        let (view, array, tree, plan) = setup(1, 1, 1);
        let faults = FaultModel::new().drop_leaf(0).drop_leaf(1);
        let err = replan(&view, &array, &tree, &plan, &faults, &ReplanConfig::default())
            .unwrap_err();
        assert_eq!(err, PlanError::Hw(HwError::EmptyArray));
    }

    #[test]
    fn sensitivity_ranks_the_heavier_fault_higher() {
        let (view, array, tree, plan) = setup(1, 1, 1);
        let faults = FaultModel::new()
            .slow_leaf(0, 0.9)
            .unwrap()
            .slow_leaf(1, 0.3)
            .unwrap();
        let outcome = replan(&view, &array, &tree, &plan, &faults, &ReplanConfig::default())
            .unwrap();
        assert_eq!(outcome.sensitivity.len(), 2);
        // Slowing the (more loaded) v3 board to 30% must hurt more than
        // shaving 10% off the v2 board.
        assert!(outcome.sensitivity[1].slowdown > outcome.sensitivity[0].slowdown);
    }

    #[test]
    fn sensitivity_can_be_disabled() {
        let (view, array, tree, plan) = setup(1, 1, 1);
        let faults = FaultModel::new().slow_leaf(0, 0.5).unwrap();
        let config = ReplanConfig {
            sensitivity: false,
            ..ReplanConfig::default()
        };
        let outcome = replan(&view, &array, &tree, &plan, &faults, &config).unwrap();
        assert!(outcome.sensitivity.is_empty());
    }
}
