//! Memory-feasibility repair: make a plan fit the array's HBM.
//!
//! §2.3 motivates coarse-grained partitioning with models whose
//! "computation and memory requirement … typically cannot be satisfied by
//! a single accelerator". A data-parallel plan replicates the whole model
//! (and its gradients and optimizer state) on every leaf; when that does
//! not fit, the repair here flips the heaviest still-replicated layers to
//! Type-II — which shards the weight at every hierarchy level — until the
//! footprint fits, or reports the deficit if even a fully model-sharded
//! plan cannot fit.

use crate::error::PlanError;
use accpar_dnn::{TrainLayer, TrainView};
use accpar_hw::GroupTree;
use accpar_partition::{LayerPlan, PartitionType, PlanTree};
use accpar_sim::{memory_report, MemoryReport, Optimizer, SimConfig};

/// Flips layers to Type-II (heaviest weight first) until the plan's
/// footprint fits every leaf's HBM. Returns the repaired plan and its
/// memory report.
///
/// # Errors
///
/// * [`PlanError::Infeasible`] when even the fully weight-sharded plan
///   does not fit;
/// * simulation validation errors for mismatched inputs.
pub fn fit_to_memory(
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    config: &SimConfig,
    optimizer: Optimizer,
) -> Result<(PlanTree, MemoryReport), PlanError> {
    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    // Heaviest weights first.
    let mut order: Vec<usize> = (0..layers.len()).collect();
    order.sort_by_key(|&l| std::cmp::Reverse(layers[l].weight().size()));

    let mut current = plan.clone();
    let mut flipped = 0usize;
    loop {
        let report = memory_report(view, &current, tree, config, optimizer)?;
        if report.fits() {
            return Ok((current, report));
        }
        // Find the next heaviest layer that still uses Type-I anywhere.
        let counts = current.per_layer_type_counts();
        let target = order
            .iter()
            .copied()
            .find(|&l| counts[l][0] > 0);
        let Some(target) = target else {
            return Err(PlanError::Infeasible {
                required_bytes: report.peak_bytes(),
                occupancy: report.peak_occupancy,
            });
        };
        current = current.map_layers(&|l, entry| {
            if l == target {
                LayerPlan::new(PartitionType::TypeII, entry.ratio)
            } else {
                entry
            }
        });
        flipped += 1;
        debug_assert!(flipped <= layers.len() * 2, "repair must terminate");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::data_parallel_plan;
    use accpar_dnn::zoo;
    use accpar_hw::{AcceleratorArray, AcceleratorSpec};

    fn tiny_array(hbm_mib: u64, n: usize) -> AcceleratorArray {
        let spec = AcceleratorSpec::new(
            "tiny",
            10e12,
            hbm_mib << 20,
            100e9,
            1e9,
            2,
            10e9,
        )
        .unwrap();
        AcceleratorArray::homogeneous(spec, n)
    }

    #[test]
    fn already_feasible_plans_are_untouched() {
        let net = zoo::lenet(32).unwrap();
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let plan = data_parallel_plan(&view, 1);
        let (fixed, report) =
            fit_to_memory(&view, &plan, &tree, &SimConfig::default(), Optimizer::Sgd).unwrap();
        assert_eq!(fixed, plan);
        assert!(report.fits());
    }

    #[test]
    fn replicated_vgg_is_repaired_by_sharding_weights() {
        // VGG-16 with Adam needs >1.1 GB of replicated weight state; give
        // each of 4 leaves 768 MiB so DP cannot fit but sharding can.
        let net = zoo::vgg16(8).unwrap();
        let view = net.train_view().unwrap();
        let array = tiny_array(768, 4);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let plan = data_parallel_plan(&view, 2);
        let config = SimConfig::default();

        let before = memory_report(&view, &plan, &tree, &config, Optimizer::Adam).unwrap();
        assert!(!before.fits(), "premise: DP must not fit ({before})");

        let (fixed, report) =
            fit_to_memory(&view, &plan, &tree, &config, Optimizer::Adam).unwrap();
        assert!(report.fits(), "{report}");
        // The repair flipped at least the classifier monsters.
        assert!(fixed.count(PartitionType::TypeII) > 0);
        assert!(report.peak_bytes() < before.peak_bytes());
    }

    #[test]
    fn truly_impossible_models_are_reported() {
        let net = zoo::vgg16(8).unwrap();
        let view = net.train_view().unwrap();
        // 16 MiB per leaf: nothing fits.
        let array = tiny_array(16, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let plan = data_parallel_plan(&view, 1);
        let err = fit_to_memory(
            &view,
            &plan,
            &tree,
            &SimConfig::default(),
            Optimizer::Adam,
        )
        .unwrap_err();
        match err {
            PlanError::Infeasible { occupancy, .. } => assert!(occupancy > 1.0),
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn repair_preserves_tree_shape() {
        let net = zoo::alexnet(8).unwrap();
        let view = net.train_view().unwrap();
        let array = tiny_array(512, 4);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let plan = data_parallel_plan(&view, 2);
        if let Ok((fixed, _)) =
            fit_to_memory(&view, &plan, &tree, &SimConfig::default(), Optimizer::Adam)
        {
            assert_eq!(fixed.depth(), plan.depth());
            assert_eq!(fixed.plan().len(), plan.plan().len());
        }
    }
}
