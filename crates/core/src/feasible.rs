//! Memory-feasibility repair: make a plan fit the array's HBM.
//!
//! §2.3 motivates coarse-grained partitioning with models whose
//! "computation and memory requirement … typically cannot be satisfied by
//! a single accelerator". A data-parallel plan replicates the whole model
//! (and its gradients and optimizer state) on every leaf; when that does
//! not fit, the repair here flips the heaviest still-replicated layers to
//! Type-II — which shards the weight at every hierarchy level — until the
//! footprint fits, or reports the deficit if even a fully model-sharded
//! plan cannot fit.

use crate::error::PlanError;
use accpar_dnn::{TrainLayer, TrainView};
use accpar_hw::GroupTree;
use accpar_partition::{LayerPlan, PartitionType, PlanTree, Ratio};
use accpar_sim::{memory_report, MemoryReport, Optimizer, SimConfig};

/// Tolerance for treating a ratio as sitting on a whole-head boundary.
const HEAD_EPS: f64 = 1e-9;

/// Per-layer head counts of the view's attention projections, indexed by
/// layer position (`None` for layers without a head axis).
fn head_counts(view: &TrainView) -> Vec<Option<usize>> {
    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    layers.iter().map(|l| l.heads()).collect()
}

/// Whether `entry` must fall on a whole-head boundary: channel-axis
/// splits (Types II/III) of a projection with `heads` heads. Token-axis
/// splits (Type-I) never touch the head dimension.
fn needs_alignment(entry: LayerPlan, heads: Option<usize>) -> Option<usize> {
    match (entry.ptype, heads) {
        (PartitionType::TypeII | PartitionType::TypeIII, Some(h)) if h >= 2 => Some(h),
        _ => None,
    }
}

/// Whether every channel-axis split of an attention projection in `plan`
/// falls on a whole-head boundary (a multiple of `1/heads`).
///
/// Types II and III partition an attention projection's `heads·d_head`
/// channel axis; the score/softmax/context stage is head-local only if
/// the cut never slices through a head. Type-I splits the token axis and
/// is unconstrained. Layers without a head annotation are ignored.
#[must_use]
pub fn head_aligned(view: &TrainView, plan: &PlanTree) -> bool {
    fn node_aligned(tree: &PlanTree, heads: &[Option<usize>]) -> bool {
        let aligned = heads.iter().enumerate().all(|(l, &h)| {
            let Some(h) = needs_alignment(tree.plan().layer(l), h) else {
                return true;
            };
            let steps = tree.plan().layer(l).ratio.value() * h as f64;
            (steps - steps.round()).abs() < HEAD_EPS
        });
        aligned
            && tree
                .children()
                .is_none_or(|(a, b)| node_aligned(a, heads) && node_aligned(b, heads))
    }
    node_aligned(plan, &head_counts(view))
}

/// Snaps every channel-axis split of an attention projection to the
/// nearest whole-head boundary, leaving all other entries untouched. The
/// result always satisfies [`head_aligned`].
///
/// This is an **opt-in** post-pass: the analytic cost model is exact at
/// any real-valued ratio, so the default planner keeps the unconstrained
/// optimum; apply this when the execution backend requires whole-head
/// sharding.
#[must_use]
pub fn snap_to_heads(view: &TrainView, plan: &PlanTree) -> PlanTree {
    let heads = head_counts(view);
    plan.map_layers(&|l, entry| {
        let Some(h) = needs_alignment(entry, heads.get(l).copied().flatten()) else {
            return entry;
        };
        let steps = (entry.ratio.value() * h as f64)
            .round()
            .clamp(1.0, (h - 1) as f64);
        let snapped = Ratio::new(steps / h as f64).expect("interior multiple of 1/h");
        LayerPlan::new(entry.ptype, snapped)
    })
}

/// Flips layers to Type-II (heaviest weight first) until the plan's
/// footprint fits every leaf's HBM. Returns the repaired plan and its
/// memory report.
///
/// # Errors
///
/// * [`PlanError::Infeasible`] when even the fully weight-sharded plan
///   does not fit;
/// * simulation validation errors for mismatched inputs.
pub fn fit_to_memory(
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    config: &SimConfig,
    optimizer: Optimizer,
) -> Result<(PlanTree, MemoryReport), PlanError> {
    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    // Heaviest weights first.
    let mut order: Vec<usize> = (0..layers.len()).collect();
    order.sort_by_key(|&l| std::cmp::Reverse(layers[l].weight().size()));

    let mut current = plan.clone();
    let mut flipped = 0usize;
    loop {
        let report = memory_report(view, &current, tree, config, optimizer)?;
        if report.fits() {
            return Ok((current, report));
        }
        // Find the next heaviest layer that still uses Type-I anywhere.
        let counts = current.per_layer_type_counts();
        let target = order
            .iter()
            .copied()
            .find(|&l| counts[l][0] > 0);
        let Some(target) = target else {
            return Err(PlanError::Infeasible {
                required_bytes: report.peak_bytes(),
                occupancy: report.peak_occupancy,
            });
        };
        current = current.map_layers(&|l, entry| {
            if l == target {
                LayerPlan::new(PartitionType::TypeII, entry.ratio)
            } else {
                entry
            }
        });
        flipped += 1;
        debug_assert!(flipped <= layers.len() * 2, "repair must terminate");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::data_parallel_plan;
    use accpar_dnn::{zoo, NetworkBuilder};
    use accpar_hw::{AcceleratorArray, AcceleratorSpec};
    use accpar_partition::NetworkPlan;
    use accpar_tensor::FeatureShape;

    /// One 4-head attention (q, k, v, o) followed by a plain FC: five
    /// weighted layers, of which the first four carry a head axis.
    fn attn_then_fc() -> accpar_dnn::Network {
        NetworkBuilder::new("t", FeatureShape::seq(2, 8, 64))
            .multi_head_attention("attn", 4, 64, 16)
            .linear("fc", 64, 64)
            .build()
            .unwrap()
    }

    fn single_level(entries: Vec<LayerPlan>) -> PlanTree {
        let level: NetworkPlan = entries.into_iter().collect();
        PlanTree::uniform(&[level])
    }

    #[test]
    fn snap_moves_channel_splits_to_head_boundaries() {
        let view = attn_then_fc().train_view().unwrap();
        // 0.55 of 4 heads = 2.2 heads: off-boundary for II/III.
        let off = LayerPlan::new(PartitionType::TypeII, Ratio::new(0.55).unwrap());
        let plan = single_level(vec![off; view.weighted_len()]);
        assert!(!head_aligned(&view, &plan));

        let snapped = snap_to_heads(&view, &plan);
        assert!(head_aligned(&view, &snapped));
        for l in 0..4 {
            assert!((snapped.plan().layer(l).ratio.value() - 0.5).abs() < 1e-12);
        }
        // The plain FC has no head axis and keeps its ratio.
        assert!((snapped.plan().layer(4).ratio.value() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn token_axis_splits_are_unconstrained() {
        let view = attn_then_fc().train_view().unwrap();
        // Type-I partitions batch·seq, not heads: any ratio is aligned.
        let token = LayerPlan::new(PartitionType::TypeI, Ratio::new(0.37).unwrap());
        let plan = single_level(vec![token; view.weighted_len()]);
        assert!(head_aligned(&view, &plan));
        assert_eq!(snap_to_heads(&view, &plan), plan);
    }

    #[test]
    fn snap_keeps_at_least_one_head_per_side() {
        let view = attn_then_fc().train_view().unwrap();
        // 0.05 of 4 heads rounds to 0 whole heads; the snap must clamp to
        // 1/4 so both groups keep a non-empty shard.
        let sliver = LayerPlan::new(PartitionType::TypeIII, Ratio::new(0.05).unwrap());
        let plan = single_level(vec![sliver; view.weighted_len()]);
        let snapped = snap_to_heads(&view, &plan);
        assert!(head_aligned(&view, &snapped));
        for l in 0..4 {
            assert!((snapped.plan().layer(l).ratio.value() - 0.25).abs() < 1e-12);
            assert_eq!(snapped.plan().layer(l).ptype, PartitionType::TypeIII);
        }
    }

    #[test]
    fn alignment_is_checked_at_every_tree_level() {
        let view = attn_then_fc().train_view().unwrap();
        let good = LayerPlan::new(PartitionType::TypeII, Ratio::new(0.25).unwrap());
        let bad = LayerPlan::new(PartitionType::TypeII, Ratio::new(0.3).unwrap());
        let aligned: NetworkPlan = vec![good; view.weighted_len()].into_iter().collect();
        let misaligned: NetworkPlan = vec![bad; view.weighted_len()].into_iter().collect();
        let plan = PlanTree::uniform(&[aligned, misaligned]);
        assert!(!head_aligned(&view, &plan));
        assert!(head_aligned(&view, &snap_to_heads(&view, &plan)));
    }

    fn tiny_array(hbm_mib: u64, n: usize) -> AcceleratorArray {
        let spec = AcceleratorSpec::new(
            "tiny",
            10e12,
            hbm_mib << 20,
            100e9,
            1e9,
            2,
            10e9,
        )
        .unwrap();
        AcceleratorArray::homogeneous(spec, n)
    }

    #[test]
    fn already_feasible_plans_are_untouched() {
        let net = zoo::lenet(32).unwrap();
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let plan = data_parallel_plan(&view, 1);
        let (fixed, report) =
            fit_to_memory(&view, &plan, &tree, &SimConfig::default(), Optimizer::Sgd).unwrap();
        assert_eq!(fixed, plan);
        assert!(report.fits());
    }

    #[test]
    fn replicated_vgg_is_repaired_by_sharding_weights() {
        // VGG-16 with Adam needs >1.1 GB of replicated weight state; give
        // each of 4 leaves 768 MiB so DP cannot fit but sharding can.
        let net = zoo::vgg16(8).unwrap();
        let view = net.train_view().unwrap();
        let array = tiny_array(768, 4);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let plan = data_parallel_plan(&view, 2);
        let config = SimConfig::default();

        let before = memory_report(&view, &plan, &tree, &config, Optimizer::Adam).unwrap();
        assert!(!before.fits(), "premise: DP must not fit ({before})");

        let (fixed, report) =
            fit_to_memory(&view, &plan, &tree, &config, Optimizer::Adam).unwrap();
        assert!(report.fits(), "{report}");
        // The repair flipped at least the classifier monsters.
        assert!(fixed.count(PartitionType::TypeII) > 0);
        assert!(report.peak_bytes() < before.peak_bytes());
    }

    #[test]
    fn truly_impossible_models_are_reported() {
        let net = zoo::vgg16(8).unwrap();
        let view = net.train_view().unwrap();
        // 16 MiB per leaf: nothing fits.
        let array = tiny_array(16, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let plan = data_parallel_plan(&view, 1);
        let err = fit_to_memory(
            &view,
            &plan,
            &tree,
            &SimConfig::default(),
            Optimizer::Adam,
        )
        .unwrap_err();
        match err {
            PlanError::Infeasible { occupancy, .. } => assert!(occupancy > 1.0),
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn repair_preserves_tree_shape() {
        let net = zoo::alexnet(8).unwrap();
        let view = net.train_view().unwrap();
        let array = tiny_array(512, 4);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let plan = data_parallel_plan(&view, 2);
        if let Ok((fixed, _)) =
            fit_to_memory(&view, &plan, &tree, &SimConfig::default(), Optimizer::Adam)
        {
            assert_eq!(fixed.depth(), plan.depth());
            assert_eq!(fixed.plan().len(), plan.plan().len());
        }
    }
}
