//! Live replanning: a supervisor that owns the serving plan for one
//! model and reacts to a stream of hardware health events.
//!
//! A [`Supervisor`] plans a network once against healthy hardware, then
//! consumes [`HealthEvent`]s ([`observe`](Supervisor::observe)) —
//! degradations, failures, recoveries, bandwidth jitter — folding each
//! into a running [`FaultModel`] with set semantics (the latest event
//! per target wins, so recovery is the exact inverse of degradation).
//!
//! # The degradation ladder
//!
//! Event bursts are **debounced**: events closer together than
//! [`SuperviseConfig::debounce`] batch into one decision, so a replan
//! storm collapses into one replan. Each decision walks a ladder:
//!
//! 1. **Hold** — if the incumbent plan still runs on the surviving
//!    hardware and stays within
//!    [`tolerance`](SuperviseConfig::tolerance) of the nominal step
//!    time, keep serving it and skip the search entirely. A purely
//!    multiplicative fault set is first checked against the analytic
//!    bound `healthy / `[`worst_factor`](FaultModel::worst_factor) —
//!    when even the bound sits inside the band the event is absorbed
//!    without running the simulator, so steady-state jitter costs
//!    microseconds; only bound misses pay for an exact simulation.
//! 2. **Replan** — warm-start the never-worse
//!    [`replan`](crate::replan::replan) machinery from the *healthy
//!    baseline plan* through a persistent [`SearchCache`], bounded by
//!    [`replan_nodes`](SuperviseConfig::replan_nodes) /
//!    [`replan_deadline`](SuperviseConfig::replan_deadline) (a budget
//!    stop yields a feasible partial plan, not an error). For batches
//!    that can only *improve* health, the fresh plan is **promoted**
//!    only when it beats the incumbent by
//!    [`promote_margin`](SuperviseConfig::promote_margin) — the
//!    asymmetry between the hold band and the promote margin is the
//!    hysteresis that keeps borderline hardware from flapping the plan.
//! 3. **Fallback** — if the search itself fails (after
//!    [`retry`](SuperviseConfig::retry) attempts with deterministic
//!    backoff, panics included), serve the incumbent if it still runs;
//!    otherwise serve a pure data-parallel plan on the surviving array.
//! 4. **Shed** — only when even data parallelism is infeasible (every
//!    board dropped) does the supervisor stop serving; a later
//!    `Recover` brings it back.
//!
//! The supervisor never panics on a health event and never abandons a
//! servable plan: every failure mode lands on a rung above "crash".
//!
//! # Terminal convergence
//!
//! [`settle`](Supervisor::settle) flushes pending events and runs one
//! final *reconciling* replan that ignores the hold band and the
//! promote margin. Because the running fault model is a pure function
//! of the latest event per target, the settled plan is bit-identical to
//! planning directly against the terminal fault set — the soak suite
//! asserts exactly that.
//!
//! # Example
//!
//! ```
//! use accpar_core::supervise::{Supervisor, SuperviseConfig};
//! use accpar_dnn::zoo;
//! use accpar_hw::{AcceleratorArray, HealthSchedule};
//!
//! let network = zoo::lenet(64)?;
//! let array = AcceleratorArray::heterogeneous_tpu(2, 2);
//! let mut sup = Supervisor::new(&network, &array, None, SuperviseConfig::default())?;
//! let schedule = HealthSchedule::random(7, sup.leaf_count(), sup.cut_count(), 12)?;
//! let report = sup.run(&schedule)?;
//! assert!(sup.plan().is_some());
//! assert!(report.availability > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::baselines::data_parallel_plan;
use crate::error::PlanError;
use crate::hierarchy::plan_node_budgeted;
use crate::memo::SearchCache;
use crate::replan::{replan_with, survive, ReplanConfig, ReplanOutcome};
use crate::search::SearchConfig;
use crate::serve::payload_message;
use accpar_cost::{CostConfig, CostModel, RatioSolver};
use accpar_dnn::{Network, TrainView};
use accpar_hw::{AcceleratorArray, FaultModel, GroupTree, HealthEvent, HealthSchedule};
use accpar_obs::Obs;
use accpar_partition::PlanTree;
use accpar_runtime::{Budget, Pool, RetryPolicy};
use accpar_sim::{SimConfig, Simulator};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a [`Supervisor`].
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Hold band: keep serving the incumbent while it simulates within
    /// `tolerance` × the nominal step time (default 1.25, i.e. accept
    /// up to 25% degradation without replanning). Must be ≥ 1.
    pub tolerance: f64,
    /// Re-promotion margin for recovery-only batches: a fresh plan
    /// replaces the incumbent only when it is at least this fraction
    /// faster (default 0.02). Together with the hold band this forms
    /// the hysteresis that prevents plan flapping. Must be in `[0, 1)`.
    pub promote_margin: f64,
    /// Debounce window in schedule-time units: events closer together
    /// than this batch into one decision (default 0.05). Must be ≥ 0.
    pub debounce: f64,
    /// Node cap for each replan's search (default: none). A budget stop
    /// is not a failure — stopped levels fall back to data parallelism
    /// and the never-worse gate still applies.
    pub replan_nodes: Option<u64>,
    /// Wall-clock deadline for each replan's search (default: none).
    /// Note that deadline stops are timing-dependent; leave this off
    /// where bit-reproducibility across machines matters.
    pub replan_deadline: Option<Duration>,
    /// Retry policy for supervisor-internal replan failures, panics
    /// included (default: two retries with deterministic backoff).
    pub retry: RetryPolicy,
    /// Cost-model configuration for every search.
    pub cost_config: CostConfig,
    /// Ratio solver for every search.
    pub solver: RatioSolver,
    /// Simulator configuration for every cost comparison.
    pub sim_config: SimConfig,
    /// Thread budget for searches (`None`: the environment default).
    /// Decisions are thread-count-independent.
    pub threads: Option<usize>,
    /// Observability handle (`health.*` / `supervise.*` vocabulary);
    /// inert by default and never part of a decision.
    pub obs: Obs,
    /// Isomorphism collapse in the searches (default: enabled).
    pub iso: bool,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self {
            tolerance: 1.25,
            promote_margin: 0.02,
            debounce: 0.05,
            replan_nodes: None,
            replan_deadline: None,
            retry: RetryPolicy::default(),
            cost_config: CostConfig::default(),
            solver: RatioSolver::default(),
            sim_config: SimConfig::cost_model_aligned(),
            threads: None,
            obs: Obs::off(),
            iso: true,
        }
    }
}

impl SuperviseConfig {
    /// Rejects thresholds that would break the ladder's invariants.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Config`] when `tolerance` is below 1 or not
    /// finite, `promote_margin` is outside `[0, 1)`, or `debounce` is
    /// negative or not finite.
    pub fn validate(&self) -> Result<(), PlanError> {
        if !self.tolerance.is_finite() || self.tolerance < 1.0 {
            return Err(PlanError::Config(format!(
                "supervise tolerance must be finite and >= 1, got {}",
                self.tolerance
            )));
        }
        if !self.promote_margin.is_finite() || !(0.0..1.0).contains(&self.promote_margin) {
            return Err(PlanError::Config(format!(
                "supervise promote_margin must be in [0, 1), got {}",
                self.promote_margin
            )));
        }
        if !self.debounce.is_finite() || self.debounce < 0.0 {
            return Err(PlanError::Config(format!(
                "supervise debounce must be finite and >= 0, got {}",
                self.debounce
            )));
        }
        Ok(())
    }
}

/// The rung of the ladder one decision landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuperviseAction {
    /// Kept serving the incumbent without a search (within the band).
    Hold,
    /// Searched, and adopted the fresh plan.
    Adopt,
    /// Searched, but the incumbent was at least as good — kept it.
    Keep,
    /// Recovery-only batch: the fresh plan beat the incumbent by the
    /// promote margin and replaced it.
    Promote,
    /// The search failed; serving the incumbent or the data-parallel
    /// baseline instead.
    Fallback,
    /// Nothing servable remains (every board dropped).
    Shed,
}

impl SuperviseAction {
    /// Stable label for logs and trace events.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            SuperviseAction::Hold => "hold",
            SuperviseAction::Adopt => "adopt",
            SuperviseAction::Keep => "keep",
            SuperviseAction::Promote => "promote",
            SuperviseAction::Fallback => "fallback",
            SuperviseAction::Shed => "shed",
        }
    }
}

impl fmt::Display for SuperviseAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One debounced batch of events and what the supervisor did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Schedule time of the batch's last event (or of
    /// [`settle`](Supervisor::settle) for the reconciling decision).
    pub at: f64,
    /// Events folded in this batch (0 for a pure reconcile).
    pub events: usize,
    /// The rung the ladder landed on.
    pub action: SuperviseAction,
    /// Whether a search actually ran for this decision.
    pub replanned: bool,
    /// Simulated step time of the plan now serving (`None` when shed).
    pub serving_secs: Option<f64>,
    /// Step time of the *healthy baseline* plan on the same degraded
    /// hardware, when it can still run there — the never-worse
    /// reference: `serving_secs` never exceeds it.
    pub stale_secs: Option<f64>,
    /// `serving_secs` over the nominal step time
    /// ([`f64::INFINITY`] when shed).
    pub degradation: f64,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:.3}: {} ({} event(s), {:.2}x nominal)",
            self.at, self.action, self.events, self.degradation
        )
    }
}

/// Aggregate metrics over one supervised timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperviseReport {
    /// Every decision, in time order (the event log).
    pub decisions: Vec<Decision>,
    /// Health events observed.
    pub events: usize,
    /// Searches actually run (debouncing and holds make this smaller
    /// than `events`).
    pub replans: usize,
    /// Retry attempts consumed by failing searches.
    pub retries: usize,
    /// Time-weighted fraction of the timeline spent serving *some*
    /// plan, i.e. not shed (1.0 for an empty timeline).
    pub availability: f64,
    /// Mean time from leaving the tolerance band to re-entering it,
    /// in schedule-time units (`None` when no excursion closed).
    pub mttr: Option<f64>,
    /// Degradation of the final serving plan over nominal
    /// ([`f64::INFINITY`] when the timeline ended shed).
    pub steady_degradation: f64,
}

impl fmt::Display for SuperviseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events -> {} decisions, {} replans; availability {:.4}, steady {:.3}x",
            self.events,
            self.decisions.len(),
            self.replans,
            self.availability,
            self.steady_degradation
        )?;
        if let Some(mttr) = self.mttr {
            write!(f, ", MTTR {mttr:.3}")?;
        }
        Ok(())
    }
}

/// Owns the serving plan for one model and reacts to health events.
///
/// See the [module docs](self) for the ladder and its invariants.
#[derive(Debug)]
pub struct Supervisor {
    view: TrainView,
    array: AcceleratorArray,
    tree: GroupTree,
    config: SuperviseConfig,
    cache: SearchCache,
    /// The plan built against healthy hardware: every replan
    /// warm-starts from it, never from the evolved incumbent, so the
    /// supervisor's trajectory is a pure function of the fault set.
    healthy: PlanTree,
    nominal_secs: f64,
    /// The running fault model — at most one fault per target.
    faults: FaultModel,
    /// The serving plan (`None` only when shed).
    plan: Option<PlanTree>,
    serving_secs: Option<f64>,
    /// The incumbent's fault-free step time on the surviving tree,
    /// refreshed whenever a plan is installed. Combined with
    /// [`FaultModel::worst_factor`] it bounds the incumbent's degraded
    /// step time analytically, so within-band events hold without a
    /// simulation.
    incumbent_healthy_secs: Option<f64>,
    /// Dropped-leaf set the serving plan was shaped for; the incumbent
    /// can only run on hardware with exactly this surviving shape.
    plan_dropped: Vec<usize>,
    pending: Vec<HealthEvent>,
    decisions: Vec<Decision>,
    events_seen: usize,
    replans: usize,
    retries: usize,
}

impl Supervisor {
    /// Plans `network` on healthy `array` hardware and starts serving.
    ///
    /// `levels` is the hierarchy depth (`None`: bisect to single
    /// boards, matching [`Planner`](crate::Planner)'s default).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Config`] for invalid thresholds (see
    /// [`SuperviseConfig::validate`]) and propagates planning,
    /// hardware, and simulation errors from the initial healthy plan.
    pub fn new(
        network: &Network,
        array: &AcceleratorArray,
        levels: Option<usize>,
        config: SuperviseConfig,
    ) -> Result<Self, PlanError> {
        config.validate()?;
        let view = network.train_view()?;
        let levels = levels.unwrap_or_else(|| {
            let boards = array.len().max(1);
            (usize::BITS as usize - 1 - boards.leading_zeros() as usize).max(1)
        });
        let tree = GroupTree::bisect(array, levels)?;
        let cache = SearchCache::new();
        let pool = config.threads.map_or_else(Pool::from_env, Pool::new);
        let model = CostModel::new(config.cost_config);
        let mut search = SearchConfig::accpar_with(config.solver);
        search.collapse = config.iso;
        let (healthy, _) = plan_node_budgeted(
            &view,
            tree.root(),
            &model,
            &search,
            None,
            pool,
            Some(&cache),
            &Obs::off(),
            None,
            &Budget::unlimited(),
        )?;
        let healthy = healthy.ok_or_else(|| {
            PlanError::Config("the array cannot host a hierarchical plan".into())
        })?;
        let nominal_secs = Simulator::new(config.sim_config)
            .simulate(&view, &healthy, &tree, None)?
            .total_secs;
        Ok(Self {
            view,
            array: array.clone(),
            tree,
            config,
            cache,
            plan: Some(healthy.clone()),
            serving_secs: Some(nominal_secs),
            incumbent_healthy_secs: Some(nominal_secs),
            plan_dropped: Vec::new(),
            healthy,
            nominal_secs,
            faults: FaultModel::new(),
            pending: Vec::new(),
            decisions: Vec::new(),
            events_seen: 0,
            replans: 0,
            retries: 0,
        })
    }

    /// Feeds one health event. Events are debounced: a decision fires
    /// only once the stream goes quiet for longer than
    /// [`SuperviseConfig::debounce`] (or on [`settle`](Self::settle)).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Hw`] for an event targeting a leaf/cut the
    /// tree does not have, and propagates decision errors — though the
    /// ladder converts search failures into fallbacks, so decision
    /// errors are limited to malformed inputs.
    pub fn observe(&mut self, event: HealthEvent) -> Result<(), PlanError> {
        event.kind.validate().map_err(PlanError::Hw)?;
        let (bound, ok) = match event.kind {
            accpar_hw::HealthEventKind::BandwidthJitter { cut, .. } => {
                (self.tree.cut_count(), cut < self.tree.cut_count())
            }
            kind => (self.tree.leaf_count(), kind.target() < self.tree.leaf_count()),
        };
        if !ok {
            return Err(PlanError::Hw(accpar_hw::HwError::InvalidFault(format!(
                "health event `{}` targets index {} but the tree has {bound}",
                event.kind.label(),
                event.kind.target()
            ))));
        }
        if self
            .pending
            .last()
            .is_some_and(|last| event.at - last.at > self.config.debounce)
        {
            self.decide(false)?;
        }
        self.pending.push(event);
        Ok(())
    }

    /// Flushes pending events and runs one final reconciling decision
    /// that ignores the hold band and the promote margin, leaving the
    /// serving plan bit-identical to planning directly against the
    /// terminal fault set.
    ///
    /// # Errors
    ///
    /// See [`observe`](Self::observe).
    pub fn settle(&mut self) -> Result<(), PlanError> {
        self.decide(true)
    }

    /// Replays a whole schedule — [`observe`](Self::observe) for every
    /// event, then [`settle`](Self::settle) — and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Hw`] when the schedule targets leaves/cuts
    /// the tree does not have; see [`observe`](Self::observe).
    pub fn run(&mut self, schedule: &HealthSchedule) -> Result<SuperviseReport, PlanError> {
        schedule
            .validate_for(self.tree.leaf_count(), self.tree.cut_count())
            .map_err(PlanError::Hw)?;
        for &event in schedule.events() {
            self.observe(event)?;
        }
        self.settle()?;
        Ok(self.report())
    }

    /// One debounced decision over the pending batch. `reconcile`
    /// forces a search and unconditional adoption (the terminal
    /// convergence contract); it also decides on an *empty* batch.
    fn decide(&mut self, reconcile: bool) -> Result<(), PlanError> {
        let batch = std::mem::take(&mut self.pending);
        if batch.is_empty() && !reconcile {
            return Ok(());
        }
        let started = Instant::now();
        let obs = self.config.obs.clone();
        let at = batch
            .last()
            .map_or_else(|| self.decisions.last().map_or(0.0, |d| d.at), |e| e.at);
        let span = obs.span(
            "supervise.decide",
            &[("events", batch.len().into()), ("reconcile", reconcile.into())],
        );
        let mut recovery_only = !batch.is_empty();
        for event in &batch {
            self.faults = event.kind.fold_into(self.faults.clone()).map_err(PlanError::Hw)?;
            recovery_only &= event.kind.is_recovery();
            self.events_seen += 1;
            if obs.enabled() {
                obs.counter("supervise.events").inc();
                span.event(
                    "health.event",
                    &[
                        ("kind", event.kind.label().into()),
                        ("target", event.kind.target().into()),
                        ("at", event.at.into()),
                    ],
                );
            }
        }
        if obs.enabled() && batch.len() > 1 {
            obs.counter("supervise.debounced").add(batch.len() as u64 - 1);
        }

        let sim = Simulator::new(self.config.sim_config);
        // Surviving topology under the current fault set. If nothing
        // survives, the only rung left is shedding.
        let survived = survive(&self.array, &self.tree, &self.faults);
        let decision = match survived {
            Err(_) => {
                self.plan = None;
                self.serving_secs = None;
                self.incumbent_healthy_secs = None;
                self.plan_dropped = self.faults.dropped_leaves();
                Decision {
                    at,
                    events: batch.len(),
                    action: SuperviseAction::Shed,
                    replanned: false,
                    serving_secs: None,
                    stale_secs: None,
                    degradation: f64::INFINITY,
                }
            }
            Ok((_, surv_tree, eff_faults, _)) => {
                let dropped = self.faults.dropped_leaves();
                let shape_ok = self.plan.is_some() && dropped == self.plan_dropped;
                // Fast hold: a purely multiplicative fault set bounds
                // the incumbent's step time at `healthy / worst`
                // analytically. When even the bound sits inside the
                // tolerance band the event is absorbed without running
                // the simulator — the common case under jitter.
                let bound_secs = match (self.incumbent_healthy_secs, eff_faults.worst_factor()) {
                    (Some(healthy), Some(worst)) if shape_ok => Some(healthy / worst),
                    _ => None,
                };
                let fast_hold = !reconcile
                    && !recovery_only
                    && bound_secs
                        .is_some_and(|secs| secs <= self.config.tolerance * self.nominal_secs);
                // The incumbent's step time on the current hardware —
                // defined only while the surviving shape matches the
                // shape it was planned for. The analytic bound stands
                // in for the simulated value when the fast hold fires.
                let incumbent_secs = if fast_hold {
                    bound_secs
                } else {
                    match &self.plan {
                        Some(plan) if shape_ok => sim
                            .simulate(&self.view, plan, &surv_tree, Some(&eff_faults))
                            .ok()
                            .map(|r| r.total_secs),
                        _ => None,
                    }
                };

                // Rung 1: hold inside the tolerance band. Skipped for
                // reconciles and for batches that can only have
                // improved health (those go to the promote check).
                let hold = !reconcile
                    && !recovery_only
                    && incumbent_secs
                        .is_some_and(|secs| secs <= self.config.tolerance * self.nominal_secs);
                if hold {
                    let secs = incumbent_secs.unwrap_or(self.nominal_secs);
                    self.serving_secs = Some(secs);
                    Decision {
                        at,
                        events: batch.len(),
                        action: SuperviseAction::Hold,
                        replanned: false,
                        serving_secs: Some(secs),
                        stale_secs: None,
                        degradation: self.degradation_of(secs),
                    }
                } else {
                    // Rung 2: budget-capped never-worse replan from the
                    // healthy baseline, with retry-with-backoff.
                    match self.attempt_replan(&obs) {
                        Ok(outcome) => {
                            self.replans += 1;
                            if obs.enabled() {
                                obs.counter("supervise.replans").inc();
                            }
                            let cand_secs = outcome.degraded_secs;
                            let promote_floor = incumbent_secs
                                .map(|inc| inc * (1.0 - self.config.promote_margin));
                            let (action, secs, plan) = if reconcile {
                                // Terminal convergence: adopt whatever
                                // replanning against the terminal fault
                                // set produced.
                                (SuperviseAction::Adopt, cand_secs, Some(outcome.plan))
                            } else if recovery_only {
                                match (incumbent_secs, promote_floor) {
                                    (Some(inc), Some(floor)) if cand_secs >= floor => {
                                        (SuperviseAction::Keep, inc, None)
                                    }
                                    (Some(_), _) => {
                                        (SuperviseAction::Promote, cand_secs, Some(outcome.plan))
                                    }
                                    // The incumbent cannot run on the
                                    // recovered shape: adopt.
                                    _ => (SuperviseAction::Adopt, cand_secs, Some(outcome.plan)),
                                }
                            } else {
                                match incumbent_secs {
                                    // Never worse than the incumbent
                                    // either: keep it on a tie or win.
                                    Some(inc) if inc < cand_secs => {
                                        (SuperviseAction::Keep, inc, None)
                                    }
                                    _ => (SuperviseAction::Adopt, cand_secs, Some(outcome.plan)),
                                }
                            };
                            if let Some(plan) = plan {
                                self.incumbent_healthy_secs = sim
                                    .simulate(&self.view, &plan, &surv_tree, None)
                                    .ok()
                                    .map(|r| r.total_secs);
                                self.plan = Some(plan);
                                self.plan_dropped = dropped;
                            }
                            self.serving_secs = Some(secs);
                            Decision {
                                at,
                                events: batch.len(),
                                action,
                                replanned: true,
                                serving_secs: Some(secs),
                                stale_secs: outcome.degraded_old_secs,
                                degradation: self.degradation_of(secs),
                            }
                        }
                        // Rung 3: the search is out of retries. Serve
                        // the incumbent if it still runs, else data
                        // parallelism on whatever survived.
                        Err(_) => {
                            let (secs, plan) = match incumbent_secs {
                                Some(inc) => (Some(inc), None),
                                None => {
                                    let dp = data_parallel_plan(
                                        &self.view,
                                        surv_tree.root().depth().max(1),
                                    );
                                    let secs = sim
                                        .simulate(&self.view, &dp, &surv_tree, Some(&eff_faults))
                                        .ok()
                                        .map(|r| r.total_secs);
                                    (secs, Some(dp))
                                }
                            };
                            match secs {
                                Some(secs) => {
                                    if let Some(plan) = plan {
                                        self.incumbent_healthy_secs = sim
                                            .simulate(&self.view, &plan, &surv_tree, None)
                                            .ok()
                                            .map(|r| r.total_secs);
                                        self.plan = Some(plan);
                                        self.plan_dropped = dropped;
                                    }
                                    self.serving_secs = Some(secs);
                                    Decision {
                                        at,
                                        events: batch.len(),
                                        action: SuperviseAction::Fallback,
                                        replanned: false,
                                        serving_secs: Some(secs),
                                        stale_secs: None,
                                        degradation: self.degradation_of(secs),
                                    }
                                }
                                // Rung 4: nothing servable at all.
                                None => {
                                    self.plan = None;
                                    self.serving_secs = None;
                                    self.incumbent_healthy_secs = None;
                                    self.plan_dropped = dropped;
                                    Decision {
                                        at,
                                        events: batch.len(),
                                        action: SuperviseAction::Shed,
                                        replanned: false,
                                        serving_secs: None,
                                        stale_secs: None,
                                        degradation: f64::INFINITY,
                                    }
                                }
                            }
                        }
                    }
                }
            }
        };

        if obs.enabled() {
            obs.counter("supervise.decisions").inc();
            obs.counter(match decision.action {
                SuperviseAction::Hold => "supervise.held",
                SuperviseAction::Adopt => "supervise.adopted",
                SuperviseAction::Keep => "supervise.kept",
                SuperviseAction::Promote => "supervise.promotions",
                SuperviseAction::Fallback => "supervise.fallbacks",
                SuperviseAction::Shed => "supervise.sheds",
            })
            .inc();
            obs.gauge("supervise.degradation").set(decision.degradation);
            obs.histogram("supervise.reaction_ns").record(
                started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            );
            span.event(
                "supervise.decision",
                &[
                    ("action", decision.action.label().into()),
                    ("events", decision.events.into()),
                    ("at", decision.at.into()),
                    ("degradation", decision.degradation.into()),
                    ("replanned", decision.replanned.into()),
                ],
            );
        }
        self.decisions.push(decision);
        Ok(())
    }

    /// Runs the never-worse replan from the healthy baseline with
    /// panic isolation and deterministic retry-with-backoff. A budget
    /// stop inside the search is *not* a failure (it yields a feasible
    /// partial plan); only errors and panics consume retries.
    fn attempt_replan(&mut self, obs: &Obs) -> Result<ReplanOutcome, PlanError> {
        let retry = self.config.retry;
        let mut last = PlanError::Config("replan never attempted".into());
        for attempt in 0..=retry.attempts {
            if attempt > 0 {
                self.retries += 1;
                if obs.enabled() {
                    obs.counter("supervise.retries").inc();
                }
                thread::sleep(retry.backoff(0, attempt));
            }
            // A fresh budget per attempt: budget clones share their
            // counters, so reusing one would starve later replans.
            let mut budget = Budget::unlimited();
            if let Some(cap) = self.config.replan_nodes {
                budget = budget.max_nodes(cap);
            }
            if let Some(deadline) = self.config.replan_deadline {
                budget = budget.deadline(deadline);
            }
            let config = ReplanConfig {
                cost_config: self.config.cost_config,
                solver: self.config.solver,
                sim_config: self.config.sim_config,
                sensitivity: false,
                threads: self.config.threads,
                obs: Obs::off(),
                iso: self.config.iso,
                budget,
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                replan_with(
                    &self.view,
                    &self.array,
                    &self.tree,
                    &self.healthy,
                    &self.faults,
                    &config,
                    Some(&self.cache),
                )
            }));
            match result {
                Ok(Ok(outcome)) => return Ok(outcome),
                Ok(Err(err)) => last = err,
                Err(payload) => {
                    last = PlanError::WorkerPanic {
                        attempts: attempt + 1,
                        message: payload_message(payload.as_ref()),
                    };
                }
            }
        }
        Err(last)
    }

    fn degradation_of(&self, secs: f64) -> f64 {
        if self.nominal_secs > 0.0 {
            secs / self.nominal_secs
        } else {
            1.0
        }
    }

    /// The plan currently serving (`None` only when shed).
    #[must_use]
    pub fn plan(&self) -> Option<&PlanTree> {
        self.plan.as_ref()
    }

    /// The healthy baseline plan every replan warm-starts from.
    #[must_use]
    pub fn healthy_plan(&self) -> &PlanTree {
        &self.healthy
    }

    /// The running fault model (at most one fault per target).
    #[must_use]
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// Nominal (healthy) step time in seconds.
    #[must_use]
    pub fn nominal_secs(&self) -> f64 {
        self.nominal_secs
    }

    /// Leaves of the supervised tree (the leaf index space health
    /// events target).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.tree.leaf_count()
    }

    /// Cuts of the supervised tree (the cut index space jitter events
    /// target).
    #[must_use]
    pub fn cut_count(&self) -> usize {
        self.tree.cut_count()
    }

    /// Decisions taken so far, in time order.
    #[must_use]
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Aggregates the decision log into a [`SuperviseReport`].
    ///
    /// Availability weighs each decision's serving state (shed or not)
    /// by the time until the next decision; MTTR averages the closed
    /// excursions outside the tolerance band.
    #[must_use]
    pub fn report(&self) -> SuperviseReport {
        let healthy_at = |d: &Decision| {
            d.serving_secs.is_some() && d.degradation <= self.config.tolerance
        };
        let mut available = 0.0;
        let mut total = 0.0;
        let mut excursions = Vec::new();
        let mut down_since: Option<f64> = None;
        let mut prev_at = 0.0;
        // The timeline starts healthy (serving, in band) at t=0.
        let mut prev_serving = true;
        for decision in &self.decisions {
            let span = (decision.at - prev_at).max(0.0);
            total += span;
            if prev_serving {
                available += span;
            }
            let ok = healthy_at(decision);
            match (down_since, ok) {
                (None, false) => down_since = Some(decision.at),
                (Some(since), true) => {
                    excursions.push(decision.at - since);
                    down_since = None;
                }
                _ => {}
            }
            prev_serving = decision.serving_secs.is_some();
            prev_at = decision.at;
        }
        let availability = if total > 0.0 { available / total } else { 1.0 };
        let mttr = if excursions.is_empty() {
            None
        } else {
            Some(excursions.iter().sum::<f64>() / excursions.len() as f64)
        };
        let steady_degradation = self
            .decisions
            .last()
            .map_or(1.0, |d| d.degradation);
        SuperviseReport {
            decisions: self.decisions.clone(),
            events: self.events_seen,
            replans: self.replans,
            retries: self.retries,
            availability,
            mttr,
            steady_degradation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replan::{replan, ReplanConfig};
    use accpar_dnn::zoo;
    use accpar_hw::HealthEventKind;
    use accpar_obs::Collector;
    use std::sync::Arc;

    fn supervisor(threads: Option<usize>) -> Supervisor {
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let config = SuperviseConfig {
            threads,
            ..SuperviseConfig::default()
        };
        Supervisor::new(&net, &array, Some(2), config).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_thresholds() {
        for bad in [
            SuperviseConfig {
                tolerance: 0.5,
                ..SuperviseConfig::default()
            },
            SuperviseConfig {
                tolerance: f64::NAN,
                ..SuperviseConfig::default()
            },
            SuperviseConfig {
                promote_margin: 1.0,
                ..SuperviseConfig::default()
            },
            SuperviseConfig {
                promote_margin: -0.1,
                ..SuperviseConfig::default()
            },
            SuperviseConfig {
                debounce: f64::INFINITY,
                ..SuperviseConfig::default()
            },
            SuperviseConfig {
                debounce: -1.0,
                ..SuperviseConfig::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(PlanError::Config(_))));
        }
        assert!(SuperviseConfig::default().validate().is_ok());
    }

    #[test]
    fn small_degrade_holds_severe_degrade_replans() {
        let mut sup = supervisor(Some(1));
        // A 5% throttle on one leaf sits comfortably inside the band.
        sup.observe(HealthEvent {
            at: 0.0,
            kind: HealthEventKind::Degrade { leaf: 0, factor: 0.95 },
        })
        .unwrap();
        sup.observe(HealthEvent {
            at: 10.0,
            kind: HealthEventKind::Degrade { leaf: 1, factor: 0.9 },
        })
        .unwrap();
        // The first decision fired when the second event broke the
        // debounce window.
        assert_eq!(sup.decisions().len(), 1);
        assert_eq!(sup.decisions()[0].action, SuperviseAction::Hold);
        assert!(!sup.decisions()[0].replanned);
        sup.settle().unwrap();
        // The reconcile always searches.
        let last = sup.decisions().last().unwrap();
        assert!(last.replanned);
        assert!(sup.plan().is_some());
    }

    #[test]
    fn mild_degrade_fast_holds_on_the_analytic_bound() {
        let mut sup = supervisor(Some(1));
        sup.observe(HealthEvent {
            at: 0.0,
            kind: HealthEventKind::Degrade { leaf: 0, factor: 0.97 },
        })
        .unwrap();
        sup.observe(HealthEvent {
            at: 10.0,
            kind: HealthEventKind::Degrade { leaf: 0, factor: 0.96 },
        })
        .unwrap();
        // `nominal / 0.97` is inside the band, so the first decision
        // held on the bound itself — no simulation ran, and the logged
        // degradation is exactly the bound.
        assert_eq!(sup.decisions().len(), 1);
        let d = &sup.decisions()[0];
        assert_eq!(d.action, SuperviseAction::Hold);
        assert!((d.degradation - 1.0 / 0.97).abs() < 1e-12, "{}", d.degradation);
    }

    #[test]
    fn burst_debounces_into_one_decision() {
        let mut sup = supervisor(Some(1));
        for i in 0..5 {
            sup.observe(HealthEvent {
                at: 0.001 * f64::from(i),
                kind: HealthEventKind::Degrade {
                    leaf: (i as usize) % 4,
                    factor: 0.5,
                },
            })
            .unwrap();
        }
        sup.settle().unwrap();
        // All five events collapsed into the one settling decision.
        assert_eq!(sup.decisions().len(), 1);
        assert_eq!(sup.decisions()[0].events, 5);
    }

    #[test]
    fn fail_then_recover_round_trips_to_the_healthy_plan() {
        let mut sup = supervisor(Some(1));
        let healthy = sup.healthy_plan().clone();
        sup.observe(HealthEvent {
            at: 0.0,
            kind: HealthEventKind::Fail { leaf: 3 },
        })
        .unwrap();
        sup.settle().unwrap();
        assert!(sup.plan().is_some());
        assert!(!sup.faults().dropped_leaves().is_empty());
        sup.observe(HealthEvent {
            at: 1.0,
            kind: HealthEventKind::Recover { leaf: 3 },
        })
        .unwrap();
        sup.settle().unwrap();
        // Recovery is exact: the fault model is empty again and the
        // settled plan is the healthy plan, bit for bit.
        assert!(sup.faults().is_empty());
        assert_eq!(sup.plan().unwrap(), &healthy);
        let report = sup.report();
        assert_eq!(report.events, 2);
        assert!(report.availability > 0.0);
    }

    #[test]
    fn terminal_plan_matches_direct_replan() {
        let mut sup = supervisor(Some(1));
        let schedule = HealthSchedule::random(21, sup.leaf_count(), sup.cut_count(), 40).unwrap();
        sup.run(&schedule).unwrap();
        let terminal = schedule.fold_all(FaultModel::new()).unwrap();
        assert_eq!(sup.faults(), &terminal);
        // Plan the terminal fault set directly (fresh cache, no
        // supervisor) — the settled plan must be bit-identical.
        let net = zoo::lenet(64).unwrap();
        let view = net.train_view().unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let direct = replan(
            &view,
            &array,
            &tree,
            sup.healthy_plan(),
            &terminal,
            &ReplanConfig {
                sensitivity: false,
                threads: Some(1),
                ..ReplanConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sup.plan().unwrap(), &direct.plan);
    }

    #[test]
    fn determinism_across_runs_and_thread_counts() {
        let schedule = HealthSchedule::random(5, 4, 3, 60).unwrap();
        let run = |threads: Option<usize>| {
            let mut sup = supervisor(threads);
            let report = sup.run(&schedule).unwrap();
            (report, sup.plan().cloned(), sup.faults().clone())
        };
        let (r1, p1, f1) = run(Some(1));
        let (r2, p2, f2) = run(Some(1));
        let (r4, p4, f4) = run(Some(4));
        // Same seed + schedule => identical event log, replan count,
        // and final plan — across runs and thread counts.
        assert_eq!(r1, r2);
        assert_eq!(p1, p2);
        assert_eq!(f1, f2);
        assert_eq!(r1.decisions, r4.decisions);
        assert_eq!(r1.replans, r4.replans);
        assert_eq!(p1, p4);
        assert_eq!(f1, f4);
    }

    #[test]
    fn never_worse_than_the_stale_plan_at_every_decision() {
        let mut sup = supervisor(Some(1));
        let schedule = HealthSchedule::random(33, sup.leaf_count(), sup.cut_count(), 50).unwrap();
        sup.run(&schedule).unwrap();
        for decision in sup.decisions() {
            if let (Some(serving), Some(stale)) = (decision.serving_secs, decision.stale_secs) {
                assert!(
                    serving <= stale * (1.0 + 1e-12),
                    "{decision}: serving {serving} worse than stale {stale}"
                );
            }
        }
    }

    #[test]
    fn search_failure_falls_back_to_the_incumbent() {
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let config = SuperviseConfig {
            threads: Some(1),
            // A zero node budget stops every level: the replan still
            // produces a feasible (data-parallel) candidate, proving a
            // budget stop is a degraded answer, not a failure.
            replan_nodes: Some(0),
            retry: RetryPolicy::none(),
            ..SuperviseConfig::default()
        };
        let mut sup = Supervisor::new(&net, &array, Some(2), config).unwrap();
        sup.observe(HealthEvent {
            at: 0.0,
            kind: HealthEventKind::Degrade { leaf: 0, factor: 0.2 },
        })
        .unwrap();
        sup.settle().unwrap();
        // Still serving something at every step.
        assert!(sup.plan().is_some());
        for decision in sup.decisions() {
            assert!(decision.serving_secs.is_some());
        }
    }

    #[test]
    fn counters_and_events_flow_through_obs() {
        let collector = Arc::new(Collector::new());
        let net = zoo::lenet(64).unwrap();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let config = SuperviseConfig {
            threads: Some(1),
            obs: Obs::new(Arc::clone(&collector)),
            ..SuperviseConfig::default()
        };
        let mut sup = Supervisor::new(&net, &array, Some(2), config).unwrap();
        let schedule = HealthSchedule::random(3, sup.leaf_count(), sup.cut_count(), 10).unwrap();
        let report = sup.run(&schedule).unwrap();
        sup.config.obs.emit_metrics();
        let snap = collector.last_metrics().unwrap();
        assert_eq!(snap.counter("supervise.events"), 10);
        assert_eq!(snap.counter("supervise.replans"), report.replans as u64);
        assert_eq!(snap.counter("supervise.decisions"), report.decisions.len() as u64);
    }

    #[test]
    fn report_on_a_quiet_timeline_is_fully_available() {
        let mut sup = supervisor(Some(1));
        sup.settle().unwrap();
        let report = sup.report();
        assert_eq!(report.events, 0);
        assert!((report.availability - 1.0).abs() < 1e-12);
        assert_eq!(report.mttr, None);
    }
}
