//! Explicit DAG form of a network, with a series-parallel decomposition.
//!
//! [`Network`] stores a network directly in
//! series-parallel form. When a model is more naturally described as a
//! graph — nodes and edges, as emitted by an ONNX-style importer —
//! [`LayerGraph`] accepts that form and [`LayerGraph::into_network`]
//! recovers the series-parallel structure AccPar's multi-path search
//! (§5.2) operates on, rejecting graphs that are not series-parallel.
//!
//! # Example
//!
//! ```
//! use accpar_dnn::graph::LayerGraph;
//! use accpar_dnn::Layer;
//! use accpar_tensor::{ConvGeometry, FeatureShape};
//!
//! // stem -> {branch, identity} -> head   (a residual block)
//! let mut g = LayerGraph::new();
//! let stem = g.add_layer(Layer::conv2d("stem", 3, 8, ConvGeometry::same(3)));
//! let body = g.add_layer(Layer::conv2d("body", 8, 8, ConvGeometry::same(3)));
//! let head = g.add_layer(Layer::conv2d("head", 8, 8, ConvGeometry::same(3)));
//! g.add_edge(stem, body)?;
//! g.add_edge(body, head)?;
//! g.add_edge(stem, head)?; // identity shortcut
//!
//! let net = g.into_network("res", FeatureShape::conv(2, 3, 8, 8))?;
//! assert_eq!(net.weighted_layers().count(), 3);
//! # Ok::<(), accpar_dnn::NetworkError>(())
//! ```

use crate::error::NetworkError;
use crate::layer::Layer;
use crate::network::{JoinOp, Network, SegmentSpec};
use accpar_tensor::FeatureShape;
use std::collections::HashMap;

/// Opaque handle to a node of a [`LayerGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A DAG of layers under construction.
#[derive(Debug, Clone, Default)]
pub struct LayerGraph {
    nodes: Vec<Layer>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    joins: HashMap<usize, JoinOp>,
}

impl LayerGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its handle.
    pub fn add_layer(&mut self, layer: Layer) -> NodeId {
        self.nodes.push(layer);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a directed edge.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidGraph`] for self-loops, duplicate
    /// edges, or handles from another graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), NetworkError> {
        let (f, t) = (from.0, to.0);
        if f >= self.nodes.len() || t >= self.nodes.len() {
            return Err(NetworkError::InvalidGraph("edge endpoint out of range".into()));
        }
        if f == t {
            return Err(NetworkError::InvalidGraph("self-loop".into()));
        }
        if self.succ[f].contains(&t) {
            return Err(NetworkError::InvalidGraph("duplicate edge".into()));
        }
        self.succ[f].push(t);
        self.pred[t].push(f);
        Ok(())
    }

    /// Declares the join operation applied where multiple edges converge
    /// on `node`. Defaults to [`JoinOp::Add`] (the ResNet join).
    pub fn set_join(&mut self, node: NodeId, op: JoinOp) {
        self.joins.insert(node.0, op);
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Decomposes the DAG into a series-parallel [`Network`].
    ///
    /// The supported shape is a trunk of single nodes interleaved with
    /// "diamonds": a fork node with several outgoing simple chains that
    /// reconverge at a single join node. This covers every network in the
    /// paper's evaluation (linear chains and ResNet residual blocks).
    ///
    /// # Errors
    ///
    /// * [`NetworkError::InvalidGraph`] — empty graph, cycle, or not
    ///   exactly one source and one sink;
    /// * [`NetworkError::NotSeriesParallel`] — nested forks, cross edges,
    ///   or branches that do not reconverge;
    /// * shape errors from [`Network::build`].
    pub fn into_network(
        self,
        name: impl Into<String>,
        input: FeatureShape,
    ) -> Result<Network, NetworkError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(NetworkError::InvalidGraph("empty graph".into()));
        }
        self.check_acyclic()?;

        let sources: Vec<usize> = (0..n).filter(|&v| self.pred[v].is_empty()).collect();
        let sinks: Vec<usize> = (0..n).filter(|&v| self.succ[v].is_empty()).collect();
        if sources.len() != 1 {
            return Err(NetworkError::InvalidGraph(format!(
                "expected exactly one source, found {}",
                sources.len()
            )));
        }
        if sinks.len() != 1 {
            return Err(NetworkError::InvalidGraph(format!(
                "expected exactly one sink, found {}",
                sinks.len()
            )));
        }

        let mut specs = Vec::new();
        let mut cur = sources[0];
        let mut visited = 1usize;
        loop {
            specs.push(SegmentSpec::Single(self.nodes[cur].clone()));
            match self.succ[cur].len() {
                0 => break,
                1 => {
                    let next = self.succ[cur][0];
                    if self.pred[next].len() > 1 {
                        return Err(NetworkError::NotSeriesParallel(format!(
                            "node `{}` joins edges without a matching fork",
                            self.nodes[next].name()
                        )));
                    }
                    cur = next;
                    visited += 1;
                }
                _ => {
                    let (branches, join, count) = self.walk_diamond(cur)?;
                    visited += count;
                    specs.push(SegmentSpec::Block {
                        branches,
                        join: self.joins.get(&join).copied().unwrap_or(JoinOp::Add),
                    });
                    cur = join;
                    visited += 1;
                }
            }
        }
        if visited != n {
            return Err(NetworkError::NotSeriesParallel(
                "graph contains nodes unreachable along the trunk".into(),
            ));
        }
        Network::build(name, input, specs)
    }

    /// Follows every branch out of `fork` until they reconverge.
    /// Returns the branch layer chains, the join node, and the number of
    /// interior branch nodes consumed.
    fn walk_diamond(
        &self,
        fork: usize,
    ) -> Result<(Vec<Vec<Layer>>, usize, usize), NetworkError> {
        let mut branches = Vec::new();
        let mut join: Option<usize> = None;
        let mut consumed = 0usize;
        for &start in &self.succ[fork] {
            let mut branch = Vec::new();
            let mut v = start;
            let end = loop {
                if self.pred[v].len() > 1 {
                    break v; // reached the join node
                }
                if self.succ[v].len() != 1 {
                    return Err(NetworkError::NotSeriesParallel(format!(
                        "node `{}` forks inside a branch",
                        self.nodes[v].name()
                    )));
                }
                branch.push(self.nodes[v].clone());
                consumed += 1;
                v = self.succ[v][0];
            };
            match join {
                None => join = Some(end),
                Some(j) if j == end => {}
                Some(j) => {
                    return Err(NetworkError::NotSeriesParallel(format!(
                        "branches reconverge at both `{}` and `{}`",
                        self.nodes[j].name(),
                        self.nodes[end].name()
                    )));
                }
            }
            branches.push(branch);
        }
        let join = join.ok_or_else(|| {
            NetworkError::NotSeriesParallel(format!(
                "fork `{}` has no outgoing branches",
                self.nodes[fork].name()
            ))
        })?;
        if self.pred[join].len() != branches.len() {
            return Err(NetworkError::NotSeriesParallel(format!(
                "join `{}` receives edges from outside the block",
                self.nodes[join].name()
            )));
        }
        Ok((branches, join, consumed))
    }

    fn check_acyclic(&self) -> Result<(), NetworkError> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &s in &self.succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if seen != n {
            return Err(NetworkError::InvalidGraph("graph contains a cycle".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_tensor::ConvGeometry;

    fn conv(name: &str, c_in: usize, c_out: usize) -> Layer {
        Layer::conv2d(name, c_in, c_out, ConvGeometry::same(3))
    }

    #[test]
    fn linear_chain_decomposes() {
        let mut g = LayerGraph::new();
        let a = g.add_layer(conv("a", 3, 8));
        let b = g.add_layer(conv("b", 8, 8));
        let c = g.add_layer(conv("c", 8, 8));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let net = g.into_network("chain", FeatureShape::conv(1, 3, 8, 8)).unwrap();
        assert_eq!(net.weighted_layers().count(), 3);
        assert!(!net.train_view().unwrap().has_blocks());
    }

    #[test]
    fn diamond_with_identity_branch() {
        let mut g = LayerGraph::new();
        let stem = g.add_layer(conv("stem", 3, 8));
        let b1 = g.add_layer(conv("b1", 8, 8));
        let b2 = g.add_layer(conv("b2", 8, 8));
        let head = g.add_layer(conv("head", 8, 8));
        g.add_edge(stem, b1).unwrap();
        g.add_edge(b1, b2).unwrap();
        g.add_edge(b2, head).unwrap();
        g.add_edge(stem, head).unwrap();
        let net = g.into_network("res", FeatureShape::conv(1, 3, 8, 8)).unwrap();
        let view = net.train_view().unwrap();
        assert!(view.has_blocks());
        assert_eq!(view.weighted_len(), 4);
    }

    #[test]
    fn two_weighted_branches() {
        let mut g = LayerGraph::new();
        let stem = g.add_layer(conv("stem", 3, 8));
        let p1 = g.add_layer(conv("p1", 8, 8));
        let p2 = g.add_layer(conv("p2", 8, 8));
        let head = g.add_layer(conv("head", 8, 8));
        g.add_edge(stem, p1).unwrap();
        g.add_edge(stem, p2).unwrap();
        g.add_edge(p1, head).unwrap();
        g.add_edge(p2, head).unwrap();
        let net = g.into_network("par", FeatureShape::conv(1, 3, 8, 8)).unwrap();
        assert_eq!(net.weighted_layers().count(), 4);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut g = LayerGraph::new();
        let a = g.add_layer(conv("a", 8, 8));
        let b = g.add_layer(conv("b", 8, 8));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        let err = g
            .into_network("cyc", FeatureShape::conv(1, 8, 8, 8))
            .unwrap_err();
        assert!(matches!(err, NetworkError::InvalidGraph(_)));
    }

    #[test]
    fn multiple_sources_rejected() {
        let mut g = LayerGraph::new();
        let a = g.add_layer(conv("a", 3, 8));
        let b = g.add_layer(conv("b", 3, 8));
        let c = g.add_layer(conv("c", 8, 8));
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        let err = g
            .into_network("multi", FeatureShape::conv(1, 3, 8, 8))
            .unwrap_err();
        assert!(matches!(err, NetworkError::InvalidGraph(_)));
    }

    #[test]
    fn nested_fork_rejected() {
        let mut g = LayerGraph::new();
        let stem = g.add_layer(conv("stem", 3, 8));
        let mid = g.add_layer(conv("mid", 8, 8));
        let x = g.add_layer(conv("x", 8, 8));
        let y = g.add_layer(conv("y", 8, 8));
        let head = g.add_layer(conv("head", 8, 8));
        // stem forks to {mid, head}; mid forks again inside the branch.
        g.add_edge(stem, mid).unwrap();
        g.add_edge(stem, head).unwrap();
        g.add_edge(mid, x).unwrap();
        g.add_edge(mid, y).unwrap();
        g.add_edge(x, head).unwrap();
        g.add_edge(y, head).unwrap();
        let err = g
            .into_network("nest", FeatureShape::conv(1, 3, 8, 8))
            .unwrap_err();
        assert!(matches!(err, NetworkError::NotSeriesParallel(_)));
    }

    #[test]
    fn self_loop_and_duplicate_edges_rejected() {
        let mut g = LayerGraph::new();
        let a = g.add_layer(conv("a", 3, 8));
        let b = g.add_layer(conv("b", 8, 8));
        assert!(g.add_edge(a, a).is_err());
        g.add_edge(a, b).unwrap();
        assert!(g.add_edge(a, b).is_err());
    }

    #[test]
    fn concat_join_via_set_join() {
        let mut g = LayerGraph::new();
        let stem = g.add_layer(conv("stem", 3, 8));
        let p1 = g.add_layer(conv("p1", 8, 4));
        let p2 = g.add_layer(conv("p2", 8, 12));
        let head = g.add_layer(conv("head", 16, 8));
        g.add_edge(stem, p1).unwrap();
        g.add_edge(stem, p2).unwrap();
        g.add_edge(p1, head).unwrap();
        g.add_edge(p2, head).unwrap();
        g.set_join(head, JoinOp::Concat);
        let net = g.into_network("cat", FeatureShape::conv(1, 3, 8, 8)).unwrap();
        assert_eq!(net.output().channels(), 8);
    }
}
