use crate::error::NetworkError;
use crate::network::{Network, PlacedLayer, Segment};
use accpar_tensor::{FeatureShape, KernelShape};
use std::fmt;

/// Whether a weighted layer is fully-connected, convolutional, or an
/// embedding lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightedKind {
    /// Fully-connected: the three phases are matrix-matrix products.
    Fc,
    /// Convolutional with the given kernel window: the three phases are
    /// batched convolutions (§3.3 / §4.3).
    Conv {
        /// Kernel window `(k_h, k_w)`.
        window: (usize, usize),
    },
    /// Token-embedding lookup: the forward phase is a gather and the
    /// gradient phase a scatter-add, so every reduction length is 1 while
    /// the weight table keeps its full `(vocab, d_model)` partitionable
    /// shape.
    Embedding,
}

impl WeightedKind {
    /// `k_h × k_w`; 1 for fully-connected and embedding layers.
    #[must_use]
    pub const fn window_size(&self) -> usize {
        match self {
            WeightedKind::Fc | WeightedKind::Embedding => 1,
            WeightedKind::Conv { window } => window.0 * window.1,
        }
    }

    /// Whether this is a convolutional layer.
    #[must_use]
    pub const fn is_conv(&self) -> bool {
        matches!(self, WeightedKind::Conv { .. })
    }
}

/// Element-wise softmax cost per attention score (exp, running max,
/// subtract, divide, accumulate) — a coarse constant in the style of the
/// paper's `(2R − 1)` matmul accounting.
pub const SOFTMAX_FLOPS_PER_SCORE: u64 = 5;

/// The unweighted interior of a lowered multi-head attention layer: the
/// per-head `Q·Kᵀ` scores, the softmax over them, and the
/// `softmax(scores)·V` context product. Attached to the output-projection
/// [`TrainLayer`] so the cost model and simulators charge the stage's
/// FLOPs (and, under Type-I, its sibling K/V exchange) exactly once, in
/// the forward phase.
///
/// Partition semantics per type:
///
/// * **Type-I** splits the `B·S` token axis. Scores couple every pair of
///   tokens in a sequence, so a shard holding a slice of the tokens needs
///   the *other* shard's `K` and `V` projections — the stage exchanges
///   `2·B·S·H·d_head` elements (the [`AttnStage::kv_elems`] volume).
/// * **Type-II / Type-III** split the `H·d_head` head axis of the
///   projections. Attention is head-local, so the stage needs no
///   communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttnStage {
    /// Number of attention heads `H`.
    pub heads: usize,
    /// Per-head width `d_head`.
    pub d_head: usize,
    /// Sequence length `S`.
    pub seq: usize,
}

impl AttnStage {
    /// `A(scores)` — the per-head score matrices: `B·H·S²`.
    #[must_use]
    pub const fn scores_elems(&self, batch: usize) -> u64 {
        batch as u64 * self.heads as u64 * self.seq as u64 * self.seq as u64
    }

    /// FLOPs of the score/softmax/context stage (Table 6 style):
    /// `A(scores)·(2·d_head − 1)` for `Q·Kᵀ`, a constant per score for
    /// the softmax, and `A(context)·(2·S − 1)` for `softmax·V`.
    #[must_use]
    pub const fn flops(&self, batch: usize) -> u64 {
        let scores = self.scores_elems(batch);
        let context =
            batch as u64 * self.heads as u64 * self.seq as u64 * self.d_head as u64;
        scores * (2 * self.d_head as u64 - 1)
            + scores * SOFTMAX_FLOPS_PER_SCORE
            + context * (2 * self.seq as u64 - 1)
    }

    /// Elements a Type-I (token-axis) shard fetches from its sibling: the
    /// sibling's `K` and `V` projections, `2·B·S·H·d_head`.
    #[must_use]
    pub const fn kv_elems(&self, batch: usize) -> u64 {
        2 * batch as u64
            * self.seq as u64
            * self.heads as u64
            * self.d_head as u64
    }
}

/// A weighted layer as seen by the partition search: the tensors of §3.1
/// with all shapes resolved.
///
/// Per the paper's notation: `in_fmap` is `F_l` (shared with `E_l`),
/// `out_fmap` is this layer's own `F_{l+1}` (shared with `E_{l+1}`),
/// `weight` is `W_l` (shared with `ΔW_l`), and `d_in` / `d_out` are
/// `D_{i,l}` / `D_{o,l}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainLayer {
    pub(crate) index: usize,
    pub(crate) name: String,
    pub(crate) kind: WeightedKind,
    pub(crate) d_in: usize,
    pub(crate) d_out: usize,
    pub(crate) in_fmap: FeatureShape,
    pub(crate) out_fmap: FeatureShape,
    pub(crate) weight: KernelShape,
    /// The score/softmax/context stage of a lowered attention layer,
    /// attached to its output projection; `None` everywhere else.
    pub(crate) attn: Option<AttnStage>,
    /// Head count of an attention projection (`q`/`k`/`v`/`o`): the
    /// granularity Type-II/III splits of the `H·d_head` axis must respect
    /// for head-local execution; `None` for non-attention layers.
    pub(crate) heads: Option<usize>,
}

impl TrainLayer {
    /// Position among the network's weighted layers (0-based).
    #[must_use]
    pub const fn index(&self) -> usize {
        self.index
    }

    /// The layer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// FC or CONV.
    #[must_use]
    pub const fn kind(&self) -> WeightedKind {
        self.kind
    }

    /// `D_{i,l}` — input channels / features.
    #[must_use]
    pub const fn d_in(&self) -> usize {
        self.d_in
    }

    /// `D_{o,l}` — output channels / features.
    #[must_use]
    pub const fn d_out(&self) -> usize {
        self.d_out
    }

    /// `F_l` / `E_l` — the input feature-map (and error) shape.
    #[must_use]
    pub const fn in_fmap(&self) -> FeatureShape {
        self.in_fmap
    }

    /// `F_{l+1}` / `E_{l+1}` — the output feature-map (and error) shape.
    #[must_use]
    pub const fn out_fmap(&self) -> FeatureShape {
        self.out_fmap
    }

    /// `W_l` / `ΔW_l` — the kernel (and gradient) shape.
    #[must_use]
    pub const fn weight(&self) -> KernelShape {
        self.weight
    }

    /// Mini-batch size `B`.
    #[must_use]
    pub const fn batch(&self) -> usize {
        self.in_fmap.batch()
    }

    /// The score/softmax/context stage of a lowered attention layer
    /// (present only on the output projection).
    #[must_use]
    pub const fn attn(&self) -> Option<AttnStage> {
        self.attn
    }

    /// Head count of an attention projection layer, `None` otherwise.
    #[must_use]
    pub const fn heads(&self) -> Option<usize> {
        self.heads
    }

    /// Reduction length of the forward product: the number of
    /// multiplications per output element, `D_{i,l} · k_h · k_w` (1 for
    /// an embedding gather).
    #[must_use]
    pub const fn forward_reduction(&self) -> u64 {
        match self.kind {
            WeightedKind::Embedding => 1,
            _ => self.d_in as u64 * self.kind.window_size() as u64,
        }
    }

    /// Reduction length of the backward product,
    /// `D_{o,l} · k_h · k_w` (1 for an embedding lookup, which routes
    /// rather than reduces).
    #[must_use]
    pub const fn backward_reduction(&self) -> u64 {
        match self.kind {
            WeightedKind::Embedding => 1,
            _ => self.d_out as u64 * self.kind.window_size() as u64,
        }
    }

    /// Reduction length of the gradient product,
    /// `B · H_out · W_out` (just `B` for FC layers, 1 for an embedding
    /// scatter-add, which touches each table row's slot once).
    #[must_use]
    pub const fn gradient_reduction(&self) -> u64 {
        match self.kind {
            WeightedKind::Embedding => 1,
            _ => self.batch() as u64 * self.out_fmap.spatial_size() as u64,
        }
    }

    /// FLOPs of the forward phase (Table 6 extended to CONV per §4.3):
    /// `A(F_{l+1}) · (2·R − 1)` with `R` the forward reduction length.
    #[must_use]
    pub const fn forward_flops(&self) -> u64 {
        self.out_fmap.size() * (2 * self.forward_reduction() - 1)
    }

    /// FLOPs of the backward phase: `A(E_l) · (2·R − 1)` with `R` the
    /// backward reduction length.
    #[must_use]
    pub const fn backward_flops(&self) -> u64 {
        self.in_fmap.size() * (2 * self.backward_reduction() - 1)
    }

    /// FLOPs of the gradient phase: `A(W_l) · (2·R − 1)` with `R` the
    /// gradient reduction length.
    #[must_use]
    pub const fn gradient_flops(&self) -> u64 {
        self.weight.size() * (2 * self.gradient_reduction() - 1)
    }

    /// Total FLOPs of one training step through this layer.
    #[must_use]
    pub const fn total_flops(&self) -> u64 {
        self.forward_flops() + self.backward_flops() + self.gradient_flops()
    }
}

impl fmt::Display for TrainLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            WeightedKind::Fc => {
                if self.attn.is_some() {
                    "fc+attn"
                } else {
                    "fc"
                }
            }
            WeightedKind::Conv { .. } => "conv",
            WeightedKind::Embedding => "embed",
        };
        write!(
            f,
            "#{} {} [{kind}] F_l={} W={} F_l+1={}",
            self.index, self.name, self.in_fmap, self.weight, self.out_fmap
        )
    }
}

/// One element of the series-parallel chain the search walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainElem {
    /// A single weighted layer on the trunk.
    Layer(TrainLayer),
    /// A multi-branch block (§5.2). An empty branch is an identity
    /// shortcut carrying the feature map unchanged.
    Block {
        /// Weighted layers per branch; empty = identity shortcut.
        branches: Vec<Vec<TrainLayer>>,
        /// Feature shape at the fork (input to every branch).
        fork: FeatureShape,
        /// Feature shape after the join.
        join: FeatureShape,
    },
}

impl TrainElem {
    /// Iterates over the weighted layers contained in this element.
    pub fn layers(&self) -> Box<dyn Iterator<Item = &TrainLayer> + '_> {
        match self {
            TrainElem::Layer(l) => Box::new(std::iter::once(l)),
            TrainElem::Block { branches, .. } => Box::new(branches.iter().flatten()),
        }
    }
}

/// The training-time view of a network: its weighted layers in
/// series-parallel order, with everything the AccPar search and cost model
/// need.
///
/// # Example
///
/// ```
/// use accpar_dnn::zoo;
///
/// let view = zoo::lenet(128)?.train_view()?;
/// assert_eq!(view.weighted_len(), 5); // 2 conv + 3 fc
/// assert!(view.layers().all(|l| l.batch() == 128));
/// # Ok::<(), accpar_dnn::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainView {
    batch: usize,
    elems: Vec<TrainElem>,
}

impl TrainView {
    /// Mini-batch size `B`.
    #[must_use]
    pub const fn batch(&self) -> usize {
        self.batch
    }

    /// The series-parallel chain of weighted layers.
    #[must_use]
    pub fn elems(&self) -> &[TrainElem] {
        &self.elems
    }

    /// Iterates over every weighted layer in chain order.
    pub fn layers(&self) -> impl Iterator<Item = &TrainLayer> {
        self.elems.iter().flat_map(TrainElem::layers)
    }

    /// Number of weighted layers.
    #[must_use]
    pub fn weighted_len(&self) -> usize {
        self.layers().count()
    }

    /// Whether the chain contains any multi-branch block.
    #[must_use]
    pub fn has_blocks(&self) -> bool {
        self.elems.iter().any(|e| matches!(e, TrainElem::Block { .. }))
    }

    /// Flattens multi-path blocks into a plain chain of layers in
    /// weighted-index order, dissolving fork/join structure.
    ///
    /// This models planners that "can only handle DNN architectures with
    /// linear structure" (§3.5's characterization of HyPar): such a
    /// planner sees ResNet as a chain and is blind to the conversion
    /// traffic its choices induce on the shortcut edges — traffic the
    /// simulator still charges.
    #[must_use]
    pub fn linearized(&self) -> TrainView {
        TrainView {
            batch: self.batch,
            elems: self
                .layers()
                .map(|l| TrainElem::Layer(l.clone()))
                .collect(),
        }
    }

    /// The tensor-conversion edges between weighted layers: for every pair
    /// of producer/consumer weighted layers, the boundary `F`/`E` tensor
    /// size (`A(F_{l+1}) = A(E_{l+1})`). The volume that actually flows
    /// over an edge is bounded by both endpoints —
    /// `min(A(producer output), A(consumer input))` — which handles
    /// interposed pooling (consumer smaller) and `Concat` joins (each
    /// producer contributes only its channel slice of the consumer's
    /// input). An identity shortcut makes the trunk layers before and
    /// after a block direct neighbours.
    ///
    /// This flat edge list is what a *fixed* plan's communication is
    /// evaluated over (the simulator and plan-evaluation code); the
    /// search itself walks the series-parallel structure instead.
    #[must_use]
    pub fn conversion_edges(&self) -> Vec<TrainEdge> {
        // Producer output sizes by weighted index.
        let mut out_sizes: Vec<u64> = vec![0; self.weighted_len()];
        for layer in self.layers() {
            out_sizes[layer.index()] = layer.out_fmap().size();
        }
        let mut edges = Vec::new();
        // Indices of the weighted layers whose output feeds the next elem.
        let mut frontier: Vec<usize> = Vec::new();
        let chain_edges = |edges: &mut Vec<TrainEdge>,
                               frontier: &[usize],
                               first: &TrainLayer| {
            for &from in frontier {
                edges.push(TrainEdge {
                    from,
                    to: first.index,
                    boundary_elems: first.in_fmap.size().min(out_sizes[from]),
                });
            }
        };
        for elem in &self.elems {
            match elem {
                TrainElem::Layer(l) => {
                    chain_edges(&mut edges, &frontier, l);
                    frontier = vec![l.index];
                }
                TrainElem::Block { branches, join, .. } => {
                    let mut next_frontier = Vec::new();
                    let mut has_identity = false;
                    for branch in branches {
                        match branch.first() {
                            None => has_identity = true,
                            Some(first) => {
                                chain_edges(&mut edges, &frontier, first);
                                for pair in branch.windows(2) {
                                    edges.push(TrainEdge {
                                        from: pair[0].index,
                                        to: pair[1].index,
                                        boundary_elems: pair[1]
                                            .in_fmap
                                            .size()
                                            .min(out_sizes[pair[0].index]),
                                    });
                                }
                                next_frontier
                                    .push(branch.last().expect("non-empty").index);
                            }
                        }
                    }
                    if has_identity {
                        // The pre-block frontier still feeds whatever
                        // consumes the join output.
                        let _ = join;
                        next_frontier.extend(frontier.iter().copied());
                    }
                    frontier = next_frontier;
                }
            }
        }
        edges
    }
}

/// A tensor-conversion edge between two weighted layers (see
/// [`TrainView::conversion_edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainEdge {
    /// Weighted index of the producing layer.
    pub from: usize,
    /// Weighted index of the consuming layer.
    pub to: usize,
    /// Elements of the boundary tensor (`A(F) = A(E)`).
    pub boundary_elems: u64,
}

impl Network {
    /// Extracts the weighted-layer view used by the partition search.
    ///
    /// Unweighted layers (activations, pooling, normalization, dropout,
    /// flatten, softmax) disappear: their effect on shapes is already
    /// folded into the neighbouring weighted layers' `F_l` / `F_{l+1}`. A
    /// block whose branches contain no weighted layer at all is likewise
    /// dropped.
    ///
    /// A trunk [`MultiHeadAttention`](crate::LayerKind::MultiHeadAttention)
    /// layer is *lowered* into its four partitionable matmuls: a
    /// three-branch block holding the `q`/`k`/`v` projections (they share
    /// the layer input and execute in parallel, exactly the §5.2
    /// fork/join structure) followed by the output projection `o`, which
    /// carries the unweighted score/softmax/context stage as its
    /// [`AttnStage`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoWeightedLayer`] if nothing remains (which
    /// cannot happen for a successfully built [`Network`]) and
    /// [`NetworkError::AttentionInBranch`] when attention appears inside a
    /// parallel block branch — blocks do not nest, so attention is only
    /// admitted on the trunk.
    pub fn train_view(&self) -> Result<TrainView, NetworkError> {
        use crate::layer::LayerKind;
        let mut elems = Vec::new();
        let mut index = 0usize;
        for segment in self.segments() {
            match segment {
                Segment::Single(p) => {
                    if let LayerKind::MultiHeadAttention {
                        heads,
                        d_model,
                        d_head,
                    } = *p.layer().kind()
                    {
                        lower_attention(p, heads, d_model, d_head, &mut index, &mut elems);
                    } else if let Some(tl) = to_train_layer(p, &mut index) {
                        elems.push(TrainElem::Layer(tl));
                    }
                }
                Segment::Block {
                    branches,
                    input,
                    output,
                    ..
                } => {
                    let tbranches: Vec<Vec<TrainLayer>> = branches
                        .iter()
                        .map(|branch| {
                            branch
                                .iter()
                                .map(|p| {
                                    if matches!(
                                        p.layer().kind(),
                                        LayerKind::MultiHeadAttention { .. }
                                    ) {
                                        Err(NetworkError::AttentionInBranch {
                                            layer: p.layer().name().to_owned(),
                                        })
                                    } else {
                                        Ok(to_train_layer(p, &mut index))
                                    }
                                })
                                .filter_map(Result::transpose)
                                .collect::<Result<Vec<_>, _>>()
                        })
                        .collect::<Result<_, _>>()?;
                    if tbranches.iter().all(Vec::is_empty) {
                        continue; // purely structural block (e.g. pooling)
                    }
                    elems.push(TrainElem::Block {
                        branches: tbranches,
                        fork: *input,
                        join: *output,
                    });
                }
            }
        }
        if elems.is_empty() {
            return Err(NetworkError::NoWeightedLayer);
        }
        Ok(TrainView {
            batch: self.batch(),
            elems,
        })
    }
}

/// Lowers one trunk attention layer into `[q | k | v]`-block + `o`-layer
/// train elements (see [`Network::train_view`]).
fn lower_attention(
    p: &PlacedLayer,
    heads: usize,
    d_model: usize,
    d_head: usize,
    index: &mut usize,
    elems: &mut Vec<TrainElem>,
) {
    let input = p.input();
    let proj_out = input.with_channels(heads * d_head);
    let name = p.layer().name();
    let mut projection = |suffix: &str, attn: Option<AttnStage>| {
        let (d_in, d_out, in_fmap, out_fmap) = if attn.is_some() {
            (heads * d_head, d_model, proj_out, p.output())
        } else {
            (d_model, heads * d_head, input, proj_out)
        };
        let tl = TrainLayer {
            index: *index,
            name: format!("{name}.{suffix}"),
            kind: WeightedKind::Fc,
            d_in,
            d_out,
            in_fmap,
            out_fmap,
            weight: KernelShape::fc(d_in, d_out),
            attn,
            heads: Some(heads),
        };
        *index += 1;
        tl
    };
    let q = projection("q", None);
    let k = projection("k", None);
    let v = projection("v", None);
    let stage = AttnStage {
        heads,
        d_head,
        seq: input.seq_len(),
    };
    let o = projection("o", Some(stage));
    elems.push(TrainElem::Block {
        branches: vec![vec![q], vec![k], vec![v]],
        fork: input,
        join: proj_out,
    });
    elems.push(TrainElem::Layer(o));
}

fn to_train_layer(p: &PlacedLayer, index: &mut usize) -> Option<TrainLayer> {
    use crate::layer::LayerKind;
    let (kind, d_in, d_out) = match *p.layer().kind() {
        LayerKind::Conv2d { c_in, c_out, geom } => (
            WeightedKind::Conv {
                window: geom.kernel(),
            },
            c_in,
            c_out,
        ),
        LayerKind::Linear { d_in, d_out } => (WeightedKind::Fc, d_in, d_out),
        LayerKind::Embedding { vocab, d_model } => (WeightedKind::Embedding, vocab, d_model),
        _ => return None,
    };
    let tl = TrainLayer {
        index: *index,
        name: p.layer().name().to_owned(),
        kind,
        d_in,
        d_out,
        in_fmap: p.input(),
        out_fmap: p.output(),
        weight: p.layer().weight_shape().expect("weighted layer has weight"),
        attn: None,
        heads: None,
    };
    *index += 1;
    Some(tl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::layer::Layer;
    use accpar_tensor::ConvGeometry;

    fn simple() -> TrainView {
        NetworkBuilder::new("t", FeatureShape::conv(4, 3, 8, 8))
            .conv2d("conv", 3, 6, ConvGeometry::same(3))
            .relu("r")
            .max_pool("p", ConvGeometry::new(2, 2, 0))
            .flatten("f")
            .linear("fc", 6 * 16, 10)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
    }

    #[test]
    fn unweighted_layers_are_elided() {
        let view = simple();
        assert_eq!(view.weighted_len(), 2);
        assert!(!view.has_blocks());
        let layers: Vec<_> = view.layers().collect();
        assert_eq!(layers[0].name(), "conv");
        assert_eq!(layers[1].name(), "fc");
        // The fc layer's input reflects pool + flatten.
        assert_eq!(layers[1].in_fmap(), FeatureShape::fc(4, 96));
    }

    #[test]
    fn fc_flop_counts_match_table_6() {
        let view = NetworkBuilder::new("fc", FeatureShape::fc(8, 20))
            .linear("fc1", 20, 30)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let l = view.layers().next().unwrap();
        let (b, di, do_) = (8u64, 20u64, 30u64);
        // Forward: A(F_{l+1}) (2 D_i - 1)
        assert_eq!(l.forward_flops(), b * do_ * (2 * di - 1));
        // Backward: A(E_l) (2 D_o - 1)
        assert_eq!(l.backward_flops(), b * di * (2 * do_ - 1));
        // Gradient: A(W) (2 B - 1)
        assert_eq!(l.gradient_flops(), di * do_ * (2 * b - 1));
        assert_eq!(
            l.total_flops(),
            l.forward_flops() + l.backward_flops() + l.gradient_flops()
        );
    }

    #[test]
    fn conv_flop_counts_scale_with_window_and_fmap() {
        let view = NetworkBuilder::new("c", FeatureShape::conv(2, 3, 8, 8))
            .conv2d("conv", 3, 4, ConvGeometry::same(3))
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let l = view.layers().next().unwrap();
        assert_eq!(l.forward_reduction(), 3 * 9);
        assert_eq!(l.backward_reduction(), 4 * 9);
        assert_eq!(l.gradient_reduction(), 2 * 64);
        assert_eq!(l.forward_flops(), (2 * 4 * 64) * (2 * 27 - 1));
        assert_eq!(l.gradient_flops(), (3 * 4 * 9) * (2 * 128 - 1));
    }

    #[test]
    fn blocks_survive_with_identity_branch() {
        let view = NetworkBuilder::new("r", FeatureShape::conv(2, 8, 4, 4))
            .conv2d("stem", 8, 8, ConvGeometry::same(3))
            .residual(
                vec![
                    Layer::conv2d("b1", 8, 8, ConvGeometry::same(3)),
                    Layer::conv2d("b2", 8, 8, ConvGeometry::same(3)),
                ],
                vec![],
            )
            .flatten("f")
            .linear("fc", 8 * 16, 2)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        assert!(view.has_blocks());
        assert_eq!(view.weighted_len(), 4);
        match &view.elems()[1] {
            TrainElem::Block { branches, fork, join } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].len(), 2);
                assert!(branches[1].is_empty());
                assert_eq!(*fork, FeatureShape::conv(2, 8, 4, 4));
                assert_eq!(join, fork);
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn conversion_edges_for_chain() {
        let view = simple();
        let edges = view.conversion_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, 0);
        assert_eq!(edges[0].to, 1);
        // fc input after pool+flatten: 4 × 96.
        assert_eq!(edges[0].boundary_elems, 4 * 96);
    }

    #[test]
    fn conversion_edges_across_identity_block() {
        // stem -> [b1 -> b2 | identity] -> fc
        let view = NetworkBuilder::new("r", FeatureShape::conv(2, 8, 4, 4))
            .conv2d("stem", 8, 8, ConvGeometry::same(3))
            .residual(
                vec![
                    Layer::conv2d("b1", 8, 8, ConvGeometry::same(3)),
                    Layer::conv2d("b2", 8, 8, ConvGeometry::same(3)),
                ],
                vec![],
            )
            .flatten("f")
            .linear("fc", 8 * 16, 2)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let edges = view.conversion_edges();
        // stem->b1, b1->b2, b2->fc, stem->fc (identity shortcut).
        let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (e.from, e.to)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 3)));
        assert!(pairs.contains(&(0, 3)));
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn conversion_edges_two_weighted_branches() {
        let view = NetworkBuilder::new("p", FeatureShape::conv(2, 8, 4, 4))
            .conv2d("stem", 8, 8, ConvGeometry::same(3))
            .block(
                crate::JoinOp::Add,
                vec![
                    vec![Layer::conv2d("p1", 8, 8, ConvGeometry::same(3))],
                    vec![Layer::conv2d("p2", 8, 8, ConvGeometry::same(3))],
                ],
            )
            .flatten("f")
            .linear("fc", 8 * 16, 2)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let pairs: Vec<(usize, usize)> =
            view.conversion_edges().iter().map(|e| (e.from, e.to)).collect();
        // stem feeds both branches; both branches feed fc.
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn indices_are_sequential_across_blocks() {
        let view = NetworkBuilder::new("r", FeatureShape::conv(2, 8, 4, 4))
            .conv2d("stem", 8, 8, ConvGeometry::same(3))
            .residual(vec![Layer::conv2d("b", 8, 8, ConvGeometry::same(3))], vec![])
            .flatten("f")
            .linear("fc", 8 * 16, 2)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let indices: Vec<_> = view.layers().map(TrainLayer::index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn attention_lowers_to_qkv_block_plus_o_layer() {
        let (b, s, h, dm, dh) = (4usize, 16usize, 4usize, 32usize, 8usize);
        let view = NetworkBuilder::new("t", FeatureShape::seq(b, s, dm))
            .multi_head_attention("attn", h, dm, dh)
            .layer_norm("ln")
            .linear("ffn", dm, 2 * dm)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        // [q|k|v] block, o layer, ffn layer.
        assert_eq!(view.elems().len(), 3);
        assert_eq!(view.weighted_len(), 5);
        let proj = FeatureShape::seq(b, s, h * dh);
        match &view.elems()[0] {
            TrainElem::Block { branches, fork, join } => {
                assert_eq!(branches.len(), 3);
                let names: Vec<_> =
                    branches.iter().map(|br| br[0].name().to_owned()).collect();
                assert_eq!(names, ["attn.q", "attn.k", "attn.v"]);
                for br in branches {
                    assert_eq!(br.len(), 1);
                    assert_eq!(br[0].kind(), WeightedKind::Fc);
                    assert_eq!(br[0].d_in(), dm);
                    assert_eq!(br[0].d_out(), h * dh);
                    assert_eq!(br[0].heads(), Some(h));
                    assert!(br[0].attn().is_none());
                }
                assert_eq!(*fork, FeatureShape::seq(b, s, dm));
                assert_eq!(*join, proj);
            }
            other => panic!("expected block, got {other:?}"),
        }
        let o = match &view.elems()[1] {
            TrainElem::Layer(l) => l,
            other => panic!("expected o layer, got {other:?}"),
        };
        assert_eq!(o.name(), "attn.o");
        assert_eq!(o.in_fmap(), proj);
        assert_eq!(o.out_fmap(), FeatureShape::seq(b, s, dm));
        assert_eq!(o.heads(), Some(h));
        let stage = o.attn().expect("o carries the score/softmax stage");
        assert_eq!(stage, AttnStage { heads: h, d_head: dh, seq: s });
        // Indices run q, k, v, o, ffn.
        let indices: Vec<_> = view.layers().map(TrainLayer::index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        // Each projection is a token matmul: Table 6 Fc formulas apply.
        let (bt, dmu, pu) = (b as u64 * s as u64, dm as u64, (h * dh) as u64);
        let q = view.layers().next().unwrap();
        assert_eq!(q.forward_flops(), bt * pu * (2 * dmu - 1));
        assert_eq!(q.gradient_flops(), dmu * pu * (2 * bt - 1));
    }

    #[test]
    fn attn_stage_accounting_matches_closed_forms() {
        let stage = AttnStage {
            heads: 4,
            d_head: 8,
            seq: 16,
        };
        let b = 2usize;
        let scores = (b * 4 * 16 * 16) as u64;
        assert_eq!(stage.scores_elems(b), scores);
        let context = (b * 4 * 16 * 8) as u64;
        assert_eq!(
            stage.flops(b),
            scores * (2 * 8 - 1) + scores * SOFTMAX_FLOPS_PER_SCORE + context * (2 * 16 - 1)
        );
        assert_eq!(stage.kv_elems(b), 2 * (b as u64) * 16 * 4 * 8);
    }

    #[test]
    fn embedding_has_unit_reductions_and_full_weight() {
        let view = NetworkBuilder::new("e", FeatureShape::seq(4, 16, 1))
            .embedding("emb", 100, 32)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let l = view.layers().next().unwrap();
        assert_eq!(l.kind(), WeightedKind::Embedding);
        assert_eq!(l.weight(), KernelShape::fc(100, 32));
        assert_eq!(l.forward_reduction(), 1);
        assert_eq!(l.backward_reduction(), 1);
        assert_eq!(l.gradient_reduction(), 1);
        // A(out) · (2·1 − 1) = out elems: a gather touches each output once.
        assert_eq!(l.forward_flops(), 4 * 16 * 32);
    }

    #[test]
    fn attention_in_branch_is_rejected() {
        let err = NetworkBuilder::new("bad", FeatureShape::seq(2, 8, 16))
            .block(
                crate::JoinOp::Add,
                vec![vec![Layer::multi_head_attention("a", 2, 16, 8)], vec![]],
            )
            .build()
            .unwrap()
            .train_view()
            .unwrap_err();
        assert!(matches!(
            err,
            NetworkError::AttentionInBranch { ref layer } if layer == "a"
        ));
    }
}
