//! DNN model representation for the AccPar reproduction.
//!
//! AccPar partitions the tensors of DNN *training*, so this crate models
//! networks at exactly the granularity the partition search needs:
//!
//! * [`Layer`] / [`LayerKind`] — convolution, fully-connected, pooling,
//!   activation, normalization and structural layers with shape
//!   propagation;
//! * [`Network`] — a series-parallel composition of layers: a trunk of
//!   single layers interleaved with multi-branch [blocks](Segment) such as
//!   ResNet's residual blocks (§5.2 of the paper);
//! * [`NetworkBuilder`] — fluent construction;
//! * [`graph::LayerGraph`] — an explicit DAG form with a series-parallel
//!   decomposition back into a [`Network`];
//! * [`iso::IsoClasses`] — structural isomorphism classes over a
//!   [`TrainView`]: repeated encoder blocks collapse into equivalence
//!   classes the partition search plans once and stamps across repeats;
//! * [`TrainView`] — the view the partition search consumes: only the
//!   *weighted* layers (those carrying a kernel `W_l`), each annotated
//!   with its `F_l` / `F_{l+1}` feature shapes, `D_{i,l}`, `D_{o,l}` and
//!   kernel shape;
//! * [`zoo`] — the nine networks of the paper's evaluation (LeNet,
//!   AlexNet, VGG-11/13/16/19 and ResNet-18/34/50) plus the transformer
//!   extension models BERT-base, GPT-2-small and ViT-B/16;
//! * [`NetworkStats`] — parameter, activation and FLOP accounting.
//!
//! # Example
//!
//! ```
//! use accpar_dnn::zoo;
//!
//! let net = zoo::alexnet(512)?;
//! let view = net.train_view()?;
//! // AlexNet has 5 convolutional + 3 fully-connected weighted layers.
//! assert_eq!(view.weighted_len(), 8);
//! # Ok::<(), accpar_dnn::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
pub mod graph;
pub mod iso;
mod layer;
mod network;
mod stats;
mod train;
pub mod zoo;

pub use builder::NetworkBuilder;
pub use error::NetworkError;
pub use layer::{Activation, Layer, LayerKind, PoolKind};
pub use network::{JoinOp, Network, PlacedLayer, Segment, SegmentSpec};
pub use stats::NetworkStats;
pub use train::{
    AttnStage, TrainEdge, TrainElem, TrainLayer, TrainView, WeightedKind, SOFTMAX_FLOPS_PER_SCORE,
};
