use accpar_tensor::ShapeError;
use std::fmt;

/// Errors produced while constructing or analyzing a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A layer's expected input does not match the tensor flowing into it.
    Shape {
        /// Name of the offending layer.
        layer: String,
        /// The underlying shape error.
        source: ShapeError,
    },
    /// A layer expects a different channel count than it receives.
    ChannelMismatch {
        /// Name of the offending layer.
        layer: String,
        /// Channels the layer was declared with.
        expected: usize,
        /// Channels actually flowing in.
        found: usize,
    },
    /// The branches of a parallel block produce different output shapes
    /// under an element-wise join.
    BranchMismatch {
        /// Rendering of the first branch's output shape.
        first: String,
        /// Rendering of the mismatching branch's output shape.
        other: String,
    },
    /// A network must contain at least one weighted layer.
    NoWeightedLayer,
    /// A parallel block must contain at least one branch with a layer.
    EmptyBlock,
    /// The DAG cannot be decomposed into a series-parallel network.
    NotSeriesParallel(String),
    /// The DAG is malformed (cycle, missing node, multiple sources/sinks).
    InvalidGraph(String),
    /// A fully-connected layer received a non-flat feature map; insert a
    /// `Flatten` layer first.
    NotFlattened {
        /// Name of the offending layer.
        layer: String,
    },
    /// A sequence layer (attention or embedding) received a spatial
    /// feature map; insert a `ToSequence` layer first.
    NotSequence {
        /// Name of the offending layer.
        layer: String,
    },
    /// Multi-head attention appeared inside a parallel block branch.
    /// Attention lowers to a parallel block itself and blocks do not
    /// nest, so it is only admitted on the network trunk.
    AttentionInBranch {
        /// Name of the offending layer.
        layer: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Shape { layer, source } => {
                write!(f, "layer `{layer}`: {source}")
            }
            NetworkError::ChannelMismatch {
                layer,
                expected,
                found,
            } => write!(
                f,
                "layer `{layer}` expects {expected} input channels but receives {found}"
            ),
            NetworkError::BranchMismatch { first, other } => write!(
                f,
                "parallel branches disagree on output shape: {first} vs {other}"
            ),
            NetworkError::NoWeightedLayer => {
                write!(f, "network contains no weighted layer to partition")
            }
            NetworkError::EmptyBlock => {
                write!(f, "parallel block contains no layers in any branch")
            }
            NetworkError::NotSeriesParallel(msg) => {
                write!(f, "graph is not series-parallel: {msg}")
            }
            NetworkError::InvalidGraph(msg) => write!(f, "invalid layer graph: {msg}"),
            NetworkError::NotFlattened { layer } => write!(
                f,
                "layer `{layer}` is fully-connected but its input is not flat; insert a flatten layer"
            ),
            NetworkError::NotSequence { layer } => write!(
                f,
                "layer `{layer}` expects a sequence-shaped input; insert a to-sequence layer"
            ),
            NetworkError::AttentionInBranch { layer } => write!(
                f,
                "attention layer `{layer}` appears inside a parallel block branch; \
                 attention lowers to a block itself and is only admitted on the trunk"
            ),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Shape { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkError>();
    }

    #[test]
    fn shape_error_exposes_source() {
        use std::error::Error;
        let err = NetworkError::Shape {
            layer: "conv1".into(),
            source: ShapeError::ZeroStride,
        };
        assert!(err.source().is_some());
        assert!(err.to_string().contains("conv1"));
    }
}
