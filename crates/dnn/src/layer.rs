use crate::error::NetworkError;
use accpar_tensor::{ConvGeometry, FeatureShape, KernelShape};
use std::fmt;

/// Pooling flavor; both reduce the spatial extent identically, so the
/// distinction only matters for documentation and FLOP accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling (including global average pooling when the window
    /// equals the input extent).
    Avg,
}

/// Element-wise non-linearity. Performed in place; it never affects
/// partitioning (§3.1: "we do not include the element-wise multiplications
/// in the space relations since they can be performed in place").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// The computational kind of a [`Layer`].
///
/// Only [`Conv2d`](LayerKind::Conv2d) and [`Linear`](LayerKind::Linear)
/// carry a kernel `W_l` and therefore participate in the partition search;
/// all other kinds transform shapes and contribute (minor) FLOPs but hold
/// no partitionable weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution with `c_in` input channels, `c_out` output channels
    /// and the given window geometry.
    Conv2d {
        /// Input channel count `D_{i,l}`.
        c_in: usize,
        /// Output channel count `D_{o,l}`.
        c_out: usize,
        /// Kernel window, stride and padding.
        geom: ConvGeometry,
    },
    /// Fully-connected layer `(d_in → d_out)`; requires a flat input.
    Linear {
        /// Input feature count `D_{i,l}`.
        d_in: usize,
        /// Output feature count `D_{o,l}`.
        d_out: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window geometry.
        geom: ConvGeometry,
    },
    /// Element-wise non-linearity.
    Activation(Activation),
    /// Batch normalization (shape preserving).
    BatchNorm,
    /// Local response normalization, as used by AlexNet (shape
    /// preserving).
    LocalResponseNorm,
    /// Dropout with the given keep probability (shape preserving; only
    /// relevant to FLOP/VRAM accounting).
    Dropout,
    /// Collapses `(B, C, H, W)` into `(B, C·H·W)`.
    Flatten,
    /// Softmax over the channel dimension (shape preserving).
    Softmax,
    /// Multi-head self-attention over a sequence-shaped input with
    /// `channels == d_model`. Carries the four projection kernels
    /// `W_Q`, `W_K`, `W_V` (`d_model → heads·d_head` each) and `W_O`
    /// (`heads·d_head → d_model`); `train_view` lowers it into those four
    /// partitionable matmuls plus the unweighted score/softmax/context
    /// stages.
    MultiHeadAttention {
        /// Number of attention heads `H`.
        heads: usize,
        /// Model (residual-stream) width `D`.
        d_model: usize,
        /// Per-head width; the projections map `D → H·d_head`.
        d_head: usize,
    },
    /// Layer normalization over the feature dimension (shape preserving;
    /// like the element-wise stages of §3.1 it is performed in place and
    /// never affects partitioning).
    LayerNorm,
    /// Token embedding lookup: maps a `(B, 1, (S, 1))` id sequence to
    /// `(B, d_model, (S, 1))`. Carries the `(vocab, d_model)` table as
    /// its kernel; the lookup itself is a gather, not a matmul.
    Embedding {
        /// Vocabulary size (input rows of the table).
        vocab: usize,
        /// Embedded feature width.
        d_model: usize,
    },
    /// Collapses `(B, C, H, W)` into the sequence shape `(B, C, (H·W, 1))`
    /// — the patch-grid-to-token transition of a vision transformer.
    ToSequence,
}

impl LayerKind {
    /// Whether this layer carries a kernel tensor `W_l`.
    #[must_use]
    pub const fn is_weighted(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d { .. }
                | LayerKind::Linear { .. }
                | LayerKind::MultiHeadAttention { .. }
                | LayerKind::Embedding { .. }
        )
    }

    /// The kernel shape, if this layer is weighted. For multi-head
    /// attention this is the *aggregate* of the four projection kernels
    /// (`4·d_model·heads·d_head` parameters); the per-projection kernels
    /// appear after `train_view` lowering.
    #[must_use]
    pub fn weight_shape(&self) -> Option<KernelShape> {
        match *self {
            LayerKind::Conv2d { c_in, c_out, geom } => {
                let (kh, kw) = geom.kernel();
                Some(KernelShape::conv(c_in, c_out, kh, kw))
            }
            LayerKind::Linear { d_in, d_out } => Some(KernelShape::fc(d_in, d_out)),
            LayerKind::MultiHeadAttention {
                heads,
                d_model,
                d_head,
            } => Some(KernelShape::fc(d_model, 4 * heads * d_head)),
            LayerKind::Embedding { vocab, d_model } => Some(KernelShape::fc(vocab, d_model)),
            _ => None,
        }
    }
}

/// A named layer: the unit of network construction.
///
/// # Example
///
/// ```
/// use accpar_dnn::Layer;
/// use accpar_tensor::{ConvGeometry, FeatureShape};
///
/// let conv = Layer::conv2d("conv1", 3, 64, ConvGeometry::same(3));
/// let out = conv.output_shape(FeatureShape::conv(8, 3, 32, 32))?;
/// assert_eq!(out, FeatureShape::conv(8, 64, 32, 32));
/// # Ok::<(), accpar_dnn::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    name: String,
    kind: LayerKind,
}

impl Layer {
    /// Creates a layer from a name and kind.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Convenience constructor for a 2-D convolution.
    #[must_use]
    pub fn conv2d(name: impl Into<String>, c_in: usize, c_out: usize, geom: ConvGeometry) -> Self {
        Self::new(name, LayerKind::Conv2d { c_in, c_out, geom })
    }

    /// Convenience constructor for a fully-connected layer.
    #[must_use]
    pub fn linear(name: impl Into<String>, d_in: usize, d_out: usize) -> Self {
        Self::new(name, LayerKind::Linear { d_in, d_out })
    }

    /// Convenience constructor for a pooling layer.
    #[must_use]
    pub fn pool(name: impl Into<String>, kind: PoolKind, geom: ConvGeometry) -> Self {
        Self::new(name, LayerKind::Pool { kind, geom })
    }

    /// Convenience constructor for an activation layer.
    #[must_use]
    pub fn activation(name: impl Into<String>, act: Activation) -> Self {
        Self::new(name, LayerKind::Activation(act))
    }

    /// Convenience constructor for a flatten layer.
    #[must_use]
    pub fn flatten(name: impl Into<String>) -> Self {
        Self::new(name, LayerKind::Flatten)
    }

    /// Convenience constructor for a multi-head attention layer.
    #[must_use]
    pub fn multi_head_attention(
        name: impl Into<String>,
        heads: usize,
        d_model: usize,
        d_head: usize,
    ) -> Self {
        Self::new(
            name,
            LayerKind::MultiHeadAttention {
                heads,
                d_model,
                d_head,
            },
        )
    }

    /// Convenience constructor for a layer-normalization layer.
    #[must_use]
    pub fn layer_norm(name: impl Into<String>) -> Self {
        Self::new(name, LayerKind::LayerNorm)
    }

    /// Convenience constructor for a token-embedding layer.
    #[must_use]
    pub fn embedding(name: impl Into<String>, vocab: usize, d_model: usize) -> Self {
        Self::new(name, LayerKind::Embedding { vocab, d_model })
    }

    /// Convenience constructor for a to-sequence layer.
    #[must_use]
    pub fn to_sequence(name: impl Into<String>) -> Self {
        Self::new(name, LayerKind::ToSequence)
    }

    /// The layer's name, unique within a network by convention.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's computational kind.
    #[must_use]
    pub const fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Whether this layer carries a kernel tensor `W_l`.
    #[must_use]
    pub const fn is_weighted(&self) -> bool {
        self.kind.is_weighted()
    }

    /// The kernel shape, if this layer is weighted.
    #[must_use]
    pub fn weight_shape(&self) -> Option<KernelShape> {
        self.kind.weight_shape()
    }

    /// Propagates a feature shape through this layer.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ChannelMismatch`] when the incoming channel
    /// count disagrees with a convolution/linear declaration,
    /// [`NetworkError::NotFlattened`] when a linear layer receives a
    /// spatial tensor, and [`NetworkError::Shape`] when a window does not
    /// fit.
    pub fn output_shape(&self, input: FeatureShape) -> Result<FeatureShape, NetworkError> {
        let shape_err = |source| NetworkError::Shape {
            layer: self.name.clone(),
            source,
        };
        match self.kind {
            LayerKind::Conv2d { c_in, c_out, geom } => {
                if input.channels() != c_in {
                    return Err(NetworkError::ChannelMismatch {
                        layer: self.name.clone(),
                        expected: c_in,
                        found: input.channels(),
                    });
                }
                let out = geom.output_extent(input.spatial()).map_err(shape_err)?;
                FeatureShape::try_new(input.batch(), c_out, out).map_err(shape_err)
            }
            LayerKind::Linear { d_in, d_out } => {
                // A linear layer applies per row of a flat `(B, D)` matrix
                // or per token of a sequence `(B, D, (S, 1))`; spatial
                // feature maps must be flattened first.
                if !input.is_flat() && !input.is_seq() {
                    return Err(NetworkError::NotFlattened {
                        layer: self.name.clone(),
                    });
                }
                if input.channels() != d_in {
                    return Err(NetworkError::ChannelMismatch {
                        layer: self.name.clone(),
                        expected: d_in,
                        found: input.channels(),
                    });
                }
                Ok(input.with_channels(d_out))
            }
            LayerKind::Pool { geom, .. } => {
                let out = geom.output_extent(input.spatial()).map_err(shape_err)?;
                FeatureShape::try_new(input.batch(), input.channels(), out).map_err(shape_err)
            }
            LayerKind::Flatten => Ok(input.flatten()),
            LayerKind::MultiHeadAttention { d_model, .. } => {
                if !input.is_flat() && !input.is_seq() {
                    return Err(NetworkError::NotSequence {
                        layer: self.name.clone(),
                    });
                }
                if input.channels() != d_model {
                    return Err(NetworkError::ChannelMismatch {
                        layer: self.name.clone(),
                        expected: d_model,
                        found: input.channels(),
                    });
                }
                Ok(input)
            }
            LayerKind::Embedding { d_model, .. } => {
                if !input.is_flat() && !input.is_seq() {
                    return Err(NetworkError::NotSequence {
                        layer: self.name.clone(),
                    });
                }
                if input.channels() != 1 {
                    return Err(NetworkError::ChannelMismatch {
                        layer: self.name.clone(),
                        expected: 1,
                        found: input.channels(),
                    });
                }
                Ok(input.with_channels(d_model))
            }
            LayerKind::ToSequence => Ok(input.to_sequence()),
            LayerKind::Activation(_)
            | LayerKind::BatchNorm
            | LayerKind::LocalResponseNorm
            | LayerKind::Dropout
            | LayerKind::LayerNorm
            | LayerKind::Softmax => Ok(input),
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LayerKind::Conv2d { c_in, c_out, geom } => {
                write!(f, "{}: conv {}→{} {}", self.name, c_in, c_out, geom)
            }
            LayerKind::Linear { d_in, d_out } => {
                write!(f, "{}: fc {}→{}", self.name, d_in, d_out)
            }
            LayerKind::Pool { kind, geom } => {
                let k = match kind {
                    PoolKind::Max => "maxpool",
                    PoolKind::Avg => "avgpool",
                };
                write!(f, "{}: {k} {geom}", self.name)
            }
            LayerKind::Activation(a) => write!(f, "{}: {:?}", self.name, a),
            LayerKind::BatchNorm => write!(f, "{}: batchnorm", self.name),
            LayerKind::LocalResponseNorm => write!(f, "{}: lrn", self.name),
            LayerKind::Dropout => write!(f, "{}: dropout", self.name),
            LayerKind::Flatten => write!(f, "{}: flatten", self.name),
            LayerKind::Softmax => write!(f, "{}: softmax", self.name),
            LayerKind::MultiHeadAttention {
                heads,
                d_model,
                d_head,
            } => write!(
                f,
                "{}: mha {d_model}→{heads}×{d_head}",
                self.name
            ),
            LayerKind::LayerNorm => write!(f, "{}: layernorm", self.name),
            LayerKind::Embedding { vocab, d_model } => {
                write!(f, "{}: embed {vocab}→{d_model}", self.name)
            }
            LayerKind::ToSequence => write!(f, "{}: to-seq", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_propagates_shape() {
        let l = Layer::conv2d("c", 3, 96, ConvGeometry::new(11, 4, 2));
        let out = l.output_shape(FeatureShape::conv(512, 3, 224, 224)).unwrap();
        assert_eq!(out, FeatureShape::conv(512, 96, 55, 55));
        assert_eq!(l.weight_shape(), Some(KernelShape::conv(3, 96, 11, 11)));
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let l = Layer::conv2d("c", 3, 96, ConvGeometry::same(3));
        let err = l.output_shape(FeatureShape::conv(1, 4, 8, 8)).unwrap_err();
        assert!(matches!(err, NetworkError::ChannelMismatch { expected: 3, found: 4, .. }));
    }

    #[test]
    fn linear_requires_flat_input() {
        let l = Layer::linear("fc", 9216, 4096);
        let err = l.output_shape(FeatureShape::conv(1, 256, 6, 6)).unwrap_err();
        assert!(matches!(err, NetworkError::NotFlattened { .. }));
        let ok = l.output_shape(FeatureShape::fc(1, 9216)).unwrap();
        assert_eq!(ok, FeatureShape::fc(1, 4096));
        assert_eq!(l.weight_shape(), Some(KernelShape::fc(9216, 4096)));
    }

    #[test]
    fn flatten_then_linear() {
        let flat = Layer::flatten("flat");
        let input = FeatureShape::conv(2, 256, 6, 6);
        let mid = flat.output_shape(input).unwrap();
        assert_eq!(mid, FeatureShape::fc(2, 9216));
    }

    #[test]
    fn pool_preserves_channels() {
        let l = Layer::pool("p", PoolKind::Max, ConvGeometry::new(3, 2, 0));
        let out = l.output_shape(FeatureShape::conv(1, 96, 55, 55)).unwrap();
        assert_eq!(out, FeatureShape::conv(1, 96, 27, 27));
        assert!(!l.is_weighted());
        assert_eq!(l.weight_shape(), None);
    }

    #[test]
    fn shape_preserving_layers() {
        let input = FeatureShape::conv(4, 16, 8, 8);
        for kind in [
            LayerKind::Activation(Activation::Relu),
            LayerKind::BatchNorm,
            LayerKind::LocalResponseNorm,
            LayerKind::Dropout,
            LayerKind::Softmax,
        ] {
            let l = Layer::new("x", kind);
            assert_eq!(l.output_shape(input).unwrap(), input);
            assert!(!l.is_weighted());
        }
    }

    #[test]
    fn linear_applies_token_wise_on_sequences() {
        let l = Layer::linear("ffn", 768, 3072);
        let out = l.output_shape(FeatureShape::seq(8, 128, 768)).unwrap();
        assert_eq!(out, FeatureShape::seq(8, 128, 3072));
        // Spatial (width > 1) inputs still demand a flatten first.
        let err = l.output_shape(FeatureShape::conv(8, 768, 2, 2)).unwrap_err();
        assert!(matches!(err, NetworkError::NotFlattened { .. }));
    }

    #[test]
    fn attention_preserves_the_sequence_shape() {
        let l = Layer::multi_head_attention("attn", 12, 768, 64);
        let input = FeatureShape::seq(8, 128, 768);
        assert_eq!(l.output_shape(input).unwrap(), input);
        assert!(l.is_weighted());
        // 4 projection kernels of d_model·H·d_head parameters each.
        assert_eq!(l.weight_shape().unwrap().size(), 4 * 768 * 12 * 64);
        let err = l.output_shape(FeatureShape::seq(8, 128, 512)).unwrap_err();
        assert!(matches!(err, NetworkError::ChannelMismatch { expected: 768, .. }));
        let err = l.output_shape(FeatureShape::conv(8, 768, 2, 2)).unwrap_err();
        assert!(matches!(err, NetworkError::NotSequence { .. }));
    }

    #[test]
    fn embedding_maps_ids_to_features() {
        let l = Layer::embedding("emb", 30522, 768);
        let out = l.output_shape(FeatureShape::seq(8, 128, 1)).unwrap();
        assert_eq!(out, FeatureShape::seq(8, 128, 768));
        assert!(l.is_weighted());
        assert_eq!(l.weight_shape(), Some(KernelShape::fc(30522, 768)));
        let err = l.output_shape(FeatureShape::seq(8, 128, 3)).unwrap_err();
        assert!(matches!(err, NetworkError::ChannelMismatch { expected: 1, .. }));
    }

    #[test]
    fn to_sequence_and_layer_norm() {
        let seq = Layer::to_sequence("tok");
        let out = seq.output_shape(FeatureShape::conv(4, 768, 14, 14)).unwrap();
        assert_eq!(out, FeatureShape::seq(4, 196, 768));
        let ln = Layer::layer_norm("ln");
        assert_eq!(ln.output_shape(out).unwrap(), out);
        assert!(!ln.is_weighted());
        assert_eq!(ln.weight_shape(), None);
    }

    #[test]
    fn display_is_informative() {
        let l = Layer::conv2d("conv1", 3, 64, ConvGeometry::same(3));
        assert!(l.to_string().contains("conv1"));
        assert!(l.to_string().contains("3→64"));
    }
}
