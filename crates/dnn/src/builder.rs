use crate::error::NetworkError;
use crate::layer::{Activation, Layer, PoolKind};
use crate::network::{JoinOp, Network, SegmentSpec};
use accpar_tensor::{ConvGeometry, FeatureShape};

/// Fluent, consuming builder for [`Network`].
///
/// Shape resolution happens at [`NetworkBuilder::build`]; until then the
/// builder only records layer specifications, so construction itself never
/// fails.
///
/// # Example
///
/// ```
/// use accpar_dnn::NetworkBuilder;
/// use accpar_tensor::{ConvGeometry, FeatureShape};
///
/// let net = NetworkBuilder::new("toy", FeatureShape::conv(16, 3, 32, 32))
///     .conv2d("conv1", 3, 32, ConvGeometry::same(3))
///     .relu("relu1")
///     .max_pool("pool1", ConvGeometry::new(2, 2, 0))
///     .flatten("flat")
///     .linear("fc", 32 * 16 * 16, 10)
///     .build()?;
/// assert_eq!(net.output().channels(), 10);
/// # Ok::<(), accpar_dnn::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: FeatureShape,
    specs: Vec<SegmentSpec>,
}

impl NetworkBuilder {
    /// Starts a network with the given name and batched input shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input: FeatureShape) -> Self {
        Self {
            name: name.into(),
            input,
            specs: Vec::new(),
        }
    }

    /// Appends an arbitrary layer to the trunk.
    #[must_use]
    pub fn layer(mut self, layer: Layer) -> Self {
        self.specs.push(SegmentSpec::Single(layer));
        self
    }

    /// Appends a 2-D convolution.
    #[must_use]
    pub fn conv2d(
        self,
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        geom: ConvGeometry,
    ) -> Self {
        self.layer(Layer::conv2d(name, c_in, c_out, geom))
    }

    /// Appends a fully-connected layer.
    #[must_use]
    pub fn linear(self, name: impl Into<String>, d_in: usize, d_out: usize) -> Self {
        self.layer(Layer::linear(name, d_in, d_out))
    }

    /// Appends a ReLU activation.
    #[must_use]
    pub fn relu(self, name: impl Into<String>) -> Self {
        self.layer(Layer::activation(name, Activation::Relu))
    }

    /// Appends a max-pooling layer.
    #[must_use]
    pub fn max_pool(self, name: impl Into<String>, geom: ConvGeometry) -> Self {
        self.layer(Layer::pool(name, PoolKind::Max, geom))
    }

    /// Appends an average-pooling layer.
    #[must_use]
    pub fn avg_pool(self, name: impl Into<String>, geom: ConvGeometry) -> Self {
        self.layer(Layer::pool(name, PoolKind::Avg, geom))
    }

    /// Appends a batch-normalization layer.
    #[must_use]
    pub fn batch_norm(self, name: impl Into<String>) -> Self {
        self.layer(Layer::new(name, crate::LayerKind::BatchNorm))
    }

    /// Appends a local-response-normalization layer (AlexNet).
    #[must_use]
    pub fn lrn(self, name: impl Into<String>) -> Self {
        self.layer(Layer::new(name, crate::LayerKind::LocalResponseNorm))
    }

    /// Appends a dropout layer.
    #[must_use]
    pub fn dropout(self, name: impl Into<String>) -> Self {
        self.layer(Layer::new(name, crate::LayerKind::Dropout))
    }

    /// Appends a flatten layer.
    #[must_use]
    pub fn flatten(self, name: impl Into<String>) -> Self {
        self.layer(Layer::flatten(name))
    }

    /// Appends a softmax layer.
    #[must_use]
    pub fn softmax(self, name: impl Into<String>) -> Self {
        self.layer(Layer::new(name, crate::LayerKind::Softmax))
    }

    /// Appends a multi-head self-attention layer.
    #[must_use]
    pub fn multi_head_attention(
        self,
        name: impl Into<String>,
        heads: usize,
        d_model: usize,
        d_head: usize,
    ) -> Self {
        self.layer(Layer::multi_head_attention(name, heads, d_model, d_head))
    }

    /// Appends a layer-normalization layer.
    #[must_use]
    pub fn layer_norm(self, name: impl Into<String>) -> Self {
        self.layer(Layer::layer_norm(name))
    }

    /// Appends a token-embedding lookup layer.
    #[must_use]
    pub fn embedding(self, name: impl Into<String>, vocab: usize, d_model: usize) -> Self {
        self.layer(Layer::embedding(name, vocab, d_model))
    }

    /// Appends a spatial-to-sequence reinterpretation (e.g. ViT patches).
    #[must_use]
    pub fn to_sequence(self, name: impl Into<String>) -> Self {
        self.layer(Layer::to_sequence(name))
    }

    /// Appends a multi-branch block. An empty branch is an identity
    /// shortcut.
    #[must_use]
    pub fn block(mut self, join: JoinOp, branches: Vec<Vec<Layer>>) -> Self {
        self.specs.push(SegmentSpec::Block { branches, join });
        self
    }

    /// Appends a residual block: `branch` in parallel with an identity (or
    /// the given projection) shortcut, joined by element-wise addition.
    #[must_use]
    pub fn residual(self, branch: Vec<Layer>, shortcut: Vec<Layer>) -> Self {
        self.block(JoinOp::Add, vec![branch, shortcut])
    }

    /// Resolves shapes and produces the network.
    ///
    /// # Errors
    ///
    /// See [`Network::build`].
    pub fn build(self) -> Result<Network, NetworkError> {
        Network::build(self.name, self.input, self.specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_manual_construction() {
        let built = NetworkBuilder::new("m", FeatureShape::fc(2, 8))
            .linear("fc1", 8, 4)
            .relu("r")
            .linear("fc2", 4, 2)
            .build()
            .unwrap();
        let manual = Network::build(
            "m",
            FeatureShape::fc(2, 8),
            vec![
                SegmentSpec::Single(Layer::linear("fc1", 8, 4)),
                SegmentSpec::Single(Layer::activation("r", Activation::Relu)),
                SegmentSpec::Single(Layer::linear("fc2", 4, 2)),
            ],
        )
        .unwrap();
        assert_eq!(built, manual);
    }

    #[test]
    fn residual_builder() {
        let net = NetworkBuilder::new("r", FeatureShape::conv(2, 8, 4, 4))
            .residual(
                vec![
                    Layer::conv2d("c1", 8, 8, ConvGeometry::same(3)),
                    Layer::conv2d("c2", 8, 8, ConvGeometry::same(3)),
                ],
                vec![],
            )
            .build()
            .unwrap();
        assert_eq!(net.output(), net.input());
        assert_eq!(net.weighted_layers().count(), 2);
    }

    #[test]
    fn every_helper_compiles_into_a_layer() {
        let net = NetworkBuilder::new("all", FeatureShape::conv(1, 4, 8, 8))
            .conv2d("c", 4, 8, ConvGeometry::same(3))
            .batch_norm("bn")
            .relu("r")
            .lrn("lrn")
            .max_pool("mp", ConvGeometry::new(2, 2, 0))
            .avg_pool("ap", ConvGeometry::new(2, 2, 0))
            .dropout("do")
            .flatten("fl")
            .linear("fc", 8 * 2 * 2, 4)
            .softmax("sm")
            .build()
            .unwrap();
        assert_eq!(net.len(), 10);
    }
}
