use crate::error::NetworkError;
use crate::layer::Layer;
use accpar_tensor::FeatureShape;
use std::fmt;

/// How the branches of a parallel block are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinOp {
    /// Element-wise addition — the ResNet residual join. All branches must
    /// produce identical shapes.
    Add,
    /// Channel concatenation — the GoogLeNet/Inception join. Branches must
    /// agree on batch and spatial extent.
    Concat,
}

/// A layer with its resolved input and output feature shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedLayer {
    layer: Layer,
    input: FeatureShape,
    output: FeatureShape,
}

impl PlacedLayer {
    /// The underlying layer.
    #[must_use]
    pub const fn layer(&self) -> &Layer {
        &self.layer
    }

    /// The feature shape flowing into this layer (`F_l`).
    #[must_use]
    pub const fn input(&self) -> FeatureShape {
        self.input
    }

    /// The feature shape this layer produces (`F_{l+1}`).
    #[must_use]
    pub const fn output(&self) -> FeatureShape {
        self.output
    }
}

/// One element of a network's series-parallel trunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A single layer on the trunk.
    Single(PlacedLayer),
    /// A multi-branch block between a fork and a join, e.g. a residual
    /// block. A branch with no layers is an identity shortcut.
    Block {
        /// The parallel branches; each is a chain of layers.
        branches: Vec<Vec<PlacedLayer>>,
        /// How branch outputs are combined.
        join: JoinOp,
        /// Shape at the fork point.
        input: FeatureShape,
        /// Shape after the join.
        output: FeatureShape,
    },
}

impl Segment {
    /// Shape flowing into this segment.
    #[must_use]
    pub const fn input(&self) -> FeatureShape {
        match self {
            Segment::Single(l) => l.input,
            Segment::Block { input, .. } => *input,
        }
    }

    /// Shape flowing out of this segment.
    #[must_use]
    pub const fn output(&self) -> FeatureShape {
        match self {
            Segment::Single(l) => l.output,
            Segment::Block { output, .. } => *output,
        }
    }

    /// Iterates over every placed layer in the segment, trunk or branch.
    pub fn layers(&self) -> impl Iterator<Item = &PlacedLayer> {
        let (single, block): (Option<&PlacedLayer>, &[Vec<PlacedLayer>]) = match self {
            Segment::Single(l) => (Some(l), &[]),
            Segment::Block { branches, .. } => (None, branches.as_slice()),
        };
        single.into_iter().chain(block.iter().flatten())
    }
}

/// Specification of a segment before shape resolution; consumed by
/// [`Network::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentSpec {
    /// A single trunk layer.
    Single(Layer),
    /// A multi-branch block.
    Block {
        /// Branch chains; an empty chain is an identity shortcut.
        branches: Vec<Vec<Layer>>,
        /// How branch outputs are combined.
        join: JoinOp,
    },
}

/// A series-parallel DNN with fully resolved shapes.
///
/// Construct with [`Network::build`] or, more conveniently, with
/// [`NetworkBuilder`](crate::NetworkBuilder). The input shape fixes the
/// mini-batch size; [`Network::with_batch`] re-derives the network for a
/// different batch.
///
/// # Example
///
/// ```
/// use accpar_dnn::{Layer, Network, SegmentSpec};
/// use accpar_tensor::FeatureShape;
///
/// let net = Network::build(
///     "tiny",
///     FeatureShape::fc(32, 100),
///     vec![
///         SegmentSpec::Single(Layer::linear("fc1", 100, 50)),
///         SegmentSpec::Single(Layer::linear("fc2", 50, 10)),
///     ],
/// )?;
/// assert_eq!(net.output(), FeatureShape::fc(32, 10));
/// # Ok::<(), accpar_dnn::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    input: FeatureShape,
    output: FeatureShape,
    segments: Vec<Segment>,
}

impl Network {
    /// Resolves shapes through `specs` and builds the network.
    ///
    /// # Errors
    ///
    /// Propagates per-layer shape errors, and reports
    /// [`NetworkError::BranchMismatch`] for inconsistent joins,
    /// [`NetworkError::EmptyBlock`] for blocks without layers, and
    /// [`NetworkError::NoWeightedLayer`] for networks with nothing to
    /// partition.
    pub fn build(
        name: impl Into<String>,
        input: FeatureShape,
        specs: Vec<SegmentSpec>,
    ) -> Result<Self, NetworkError> {
        let mut cursor = input;
        let mut segments = Vec::with_capacity(specs.len());
        for spec in specs {
            let segment = match spec {
                SegmentSpec::Single(layer) => {
                    let placed = place(layer, cursor)?;
                    cursor = placed.output;
                    Segment::Single(placed)
                }
                SegmentSpec::Block { branches, join } => {
                    let block = place_block(branches, join, cursor)?;
                    cursor = block.output();
                    block
                }
            };
            segments.push(segment);
        }
        let net = Self {
            name: name.into(),
            input,
            output: cursor,
            segments,
        };
        if net.weighted_layers().next().is_none() {
            return Err(NetworkError::NoWeightedLayer);
        }
        Ok(net)
    }

    /// The network's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The (batched) input shape.
    #[must_use]
    pub const fn input(&self) -> FeatureShape {
        self.input
    }

    /// The (batched) output shape.
    #[must_use]
    pub const fn output(&self) -> FeatureShape {
        self.output
    }

    /// Mini-batch size `B`.
    #[must_use]
    pub const fn batch(&self) -> usize {
        self.input.batch()
    }

    /// The resolved series-parallel trunk.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterates over every placed layer in trunk order (branches of a
    /// block are visited in branch order).
    pub fn layers(&self) -> impl Iterator<Item = &PlacedLayer> {
        self.segments.iter().flat_map(Segment::layers)
    }

    /// Iterates over the placed layers that carry a kernel.
    pub fn weighted_layers(&self) -> impl Iterator<Item = &PlacedLayer> {
        self.layers().filter(|p| p.layer.is_weighted())
    }

    /// Total number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers().count()
    }

    /// Whether the network has no layers (never true for a built network).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Rebuilds this network for a different mini-batch size.
    ///
    /// # Errors
    ///
    /// Re-runs shape resolution; errors mirror [`Network::build`].
    pub fn with_batch(&self, batch: usize) -> Result<Self, NetworkError> {
        let specs = self
            .segments
            .iter()
            .map(|s| match s {
                Segment::Single(p) => SegmentSpec::Single(p.layer.clone()),
                Segment::Block { branches, join, .. } => SegmentSpec::Block {
                    branches: branches
                        .iter()
                        .map(|b| b.iter().map(|p| p.layer.clone()).collect())
                        .collect(),
                    join: *join,
                },
            })
            .collect();
        Self::build(self.name.clone(), self.input.with_batch(batch), specs)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (input {})", self.name, self.input)?;
        for segment in &self.segments {
            match segment {
                Segment::Single(p) => writeln!(f, "  {} -> {}", p.layer, p.output)?,
                Segment::Block { branches, join, output, .. } => {
                    writeln!(f, "  block ({join:?}) -> {output}")?;
                    for (i, branch) in branches.iter().enumerate() {
                        if branch.is_empty() {
                            writeln!(f, "    [{i}] identity")?;
                        } else {
                            for p in branch {
                                writeln!(f, "    [{i}] {} -> {}", p.layer, p.output)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn place(layer: Layer, input: FeatureShape) -> Result<PlacedLayer, NetworkError> {
    let output = layer.output_shape(input)?;
    Ok(PlacedLayer {
        layer,
        input,
        output,
    })
}

fn place_block(
    branches: Vec<Vec<Layer>>,
    join: JoinOp,
    input: FeatureShape,
) -> Result<Segment, NetworkError> {
    if branches.iter().all(Vec::is_empty) {
        return Err(NetworkError::EmptyBlock);
    }
    let mut placed_branches = Vec::with_capacity(branches.len());
    let mut outputs = Vec::with_capacity(branches.len());
    for branch in branches {
        let mut cursor = input;
        let mut placed = Vec::with_capacity(branch.len());
        for layer in branch {
            let p = place(layer, cursor)?;
            cursor = p.output;
            placed.push(p);
        }
        outputs.push(cursor);
        placed_branches.push(placed);
    }
    let output = match join {
        JoinOp::Add => {
            let first = outputs[0];
            for other in &outputs[1..] {
                if *other != first {
                    return Err(NetworkError::BranchMismatch {
                        first: first.to_string(),
                        other: other.to_string(),
                    });
                }
            }
            first
        }
        JoinOp::Concat => {
            let first = outputs[0];
            let mut channels = 0;
            for other in &outputs {
                if other.batch() != first.batch() || other.spatial() != first.spatial() {
                    return Err(NetworkError::BranchMismatch {
                        first: first.to_string(),
                        other: other.to_string(),
                    });
                }
                channels += other.channels();
            }
            first.with_channels(channels)
        }
    };
    Ok(Segment::Block {
        branches: placed_branches,
        join,
        input,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, PoolKind};
    use accpar_tensor::ConvGeometry;

    fn residual_net() -> Network {
        // conv -> [conv/conv | identity] -> fc
        Network::build(
            "res",
            FeatureShape::conv(8, 3, 8, 8),
            vec![
                SegmentSpec::Single(Layer::conv2d("stem", 3, 16, ConvGeometry::same(3))),
                SegmentSpec::Block {
                    branches: vec![
                        vec![
                            Layer::conv2d("b1", 16, 16, ConvGeometry::same(3)),
                            Layer::conv2d("b2", 16, 16, ConvGeometry::same(3)),
                        ],
                        vec![],
                    ],
                    join: JoinOp::Add,
                },
                SegmentSpec::Single(Layer::pool(
                    "gap",
                    PoolKind::Avg,
                    ConvGeometry::new(8, 8, 0),
                )),
                SegmentSpec::Single(Layer::flatten("flat")),
                SegmentSpec::Single(Layer::linear("fc", 16, 10)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn linear_chain_resolves_shapes() {
        let net = Network::build(
            "mlp",
            FeatureShape::fc(4, 20),
            vec![
                SegmentSpec::Single(Layer::linear("fc1", 20, 10)),
                SegmentSpec::Single(Layer::activation("relu", Activation::Relu)),
                SegmentSpec::Single(Layer::linear("fc2", 10, 5)),
            ],
        )
        .unwrap();
        assert_eq!(net.output(), FeatureShape::fc(4, 5));
        assert_eq!(net.len(), 3);
        assert_eq!(net.weighted_layers().count(), 2);
    }

    #[test]
    fn residual_block_resolves() {
        let net = residual_net();
        assert_eq!(net.output(), FeatureShape::fc(8, 10));
        assert_eq!(net.weighted_layers().count(), 4);
        let block = &net.segments()[1];
        assert_eq!(block.input(), FeatureShape::conv(8, 16, 8, 8));
        assert_eq!(block.output(), FeatureShape::conv(8, 16, 8, 8));
    }

    #[test]
    fn add_join_rejects_mismatched_branches() {
        let err = Network::build(
            "bad",
            FeatureShape::conv(1, 8, 8, 8),
            vec![SegmentSpec::Block {
                branches: vec![
                    vec![Layer::conv2d("a", 8, 16, ConvGeometry::same(3))],
                    vec![],
                ],
                join: JoinOp::Add,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::BranchMismatch { .. }));
    }

    #[test]
    fn concat_join_sums_channels() {
        let net = Network::build(
            "inception-ish",
            FeatureShape::conv(1, 8, 8, 8),
            vec![SegmentSpec::Block {
                branches: vec![
                    vec![Layer::conv2d("a", 8, 16, ConvGeometry::same(3))],
                    vec![Layer::conv2d("b", 8, 4, ConvGeometry::same(1))],
                ],
                join: JoinOp::Concat,
            }],
        )
        .unwrap();
        assert_eq!(net.output().channels(), 20);
    }

    #[test]
    fn empty_block_rejected() {
        let err = Network::build(
            "bad",
            FeatureShape::conv(1, 8, 8, 8),
            vec![SegmentSpec::Block {
                branches: vec![vec![], vec![]],
                join: JoinOp::Add,
            }],
        )
        .unwrap_err();
        assert_eq!(err, NetworkError::EmptyBlock);
    }

    #[test]
    fn unweighted_network_rejected() {
        let err = Network::build(
            "bad",
            FeatureShape::conv(1, 8, 8, 8),
            vec![SegmentSpec::Single(Layer::flatten("flat"))],
        )
        .unwrap_err();
        assert_eq!(err, NetworkError::NoWeightedLayer);
    }

    #[test]
    fn with_batch_rescales_every_shape() {
        let net = residual_net();
        let big = net.with_batch(64).unwrap();
        assert_eq!(big.batch(), 64);
        assert_eq!(big.output(), FeatureShape::fc(64, 10));
        assert_eq!(big.len(), net.len());
        for (a, b) in net.layers().zip(big.layers()) {
            assert_eq!(a.input().channels(), b.input().channels());
            assert_eq!(b.input().batch(), 64);
        }
    }

    #[test]
    fn display_renders_blocks() {
        let s = residual_net().to_string();
        assert!(s.contains("block"));
        assert!(s.contains("identity"));
    }
}
