//! Structural isomorphism classes over a [`TrainView`].
//!
//! Transformer graphs are dozens of *identical* encoder blocks, so the
//! layer-wise DP would redo the same cost-table row once per repeat.
//! This module canonicalizes each weighted layer — its kind, every
//! resolved shape and meta-dimension, the attention stage, the
//! first-layer position rule and its *fan-in context* (what structurally
//! feeds it) — into a value-complete equivalence-class key, and
//! partitions the view into classes of mutually isomorphic layers and
//! elements.
//!
//! Two layers land in the same class only if every field that can enter
//! a cost-table row is bitwise equal *and* their predecessors are
//! themselves class-equal, so a search row computed for one member can
//! be replayed bit-identically for every other member (see
//! `accpar-core::search`). Class ids are assigned in first-occurrence
//! order over the deterministic element walk, so the partition itself is
//! deterministic — no hasher state leaks into ids.
//!
//! # Example
//!
//! ```
//! use accpar_dnn::{iso::IsoClasses, zoo};
//!
//! // 12 identical encoder blocks: q/k/v/o/ffn_up/ffn_down repeat, so
//! // only the first block (plus the embedding) contributes classes.
//! let view = zoo::bert_base(8, 128)?.train_view()?;
//! let classes = IsoClasses::of(&view);
//! assert!(classes.layer_classes() < view.weighted_len() / 4);
//! # Ok::<(), accpar_dnn::NetworkError>(())
//! ```

use crate::train::{AttnStage, TrainElem, TrainLayer, TrainView};
use crate::WeightedKind;
use accpar_tensor::hash::FxHashMap;
use accpar_tensor::{FeatureShape, KernelShape};

/// What structurally feeds a layer — the fan-in component of its class
/// key. Expressed in *content* class ids (the fan-in-free partition of
/// the first pass), so repeated blocks converge: from the second repeat
/// on, every repeat is fed by content-identical structure and merges.
/// A full-context recursion would never merge a chain — each repeat's
/// predecessor class would differ just because *its* predecessor did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FanIn {
    /// The layer opens the network.
    Start,
    /// A trunk layer fed by the previous element (its content class).
    Elem(usize),
    /// The first layer of a block branch, fed by the fork (the content
    /// class of the element before the block, if any).
    Fork(Option<usize>),
    /// A branch layer fed by the previous layer in its branch (that
    /// layer's content class).
    Chain(usize),
}

/// Value-complete *content* key of one weighted layer: everything a
/// cost-table row can depend on. The final class key adds the fan-in
/// context on top ([`FanIn`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LayerKey {
    kind: WeightedKind,
    d_in: usize,
    d_out: usize,
    in_fmap: FeatureShape,
    out_fmap: FeatureShape,
    weight: KernelShape,
    attn: Option<AttnStage>,
    heads: Option<usize>,
    /// The skip-first-backward position rule: layer 0 never merges with
    /// a repeat, whatever the cost configuration says.
    first: bool,
}

impl LayerKey {
    fn of(l: &TrainLayer) -> Self {
        Self {
            kind: l.kind(),
            d_in: l.d_in(),
            d_out: l.d_out(),
            in_fmap: l.in_fmap(),
            out_fmap: l.out_fmap(),
            weight: l.weight(),
            attn: l.attn(),
            heads: l.heads(),
            first: l.index() == 0,
        }
    }
}

/// Content key of one chain element: a trunk layer collapses to its
/// layer content class; a block is its fork/join shapes plus its
/// branches as layer content class sequences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ElemKey {
    Layer(usize),
    Block {
        fork: FeatureShape,
        join: FeatureShape,
        branches: Vec<Vec<usize>>,
    },
}

/// The structural class partition of one [`TrainView`]: every weighted
/// layer and every chain element mapped to an equivalence class, with
/// one representative (the first occurrence) per class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsoClasses {
    /// Weighted-layer index → layer class id.
    layer_class: Vec<usize>,
    /// Layer class id → representative weighted-layer index.
    layer_rep: Vec<usize>,
    /// Element index → element class id.
    elem_class: Vec<usize>,
    /// Element class id → representative element index.
    elem_rep: Vec<usize>,
}

impl IsoClasses {
    /// Partitions the view. Two deterministic passes over the element
    /// walk — content classes first, then content + fan-in context —
    /// in `O(weighted layers)` time and space.
    #[must_use]
    pub fn of(view: &TrainView) -> Self {
        // Pass 1: fan-in-free content classes for layers and elements.
        let mut layer_content_ids: FxHashMap<LayerKey, usize> = FxHashMap::default();
        let mut elem_content_ids: FxHashMap<ElemKey, usize> = FxHashMap::default();
        let mut layer_content = vec![0usize; view.weighted_len()];
        let mut elem_content = Vec::with_capacity(view.elems().len());
        for elem in view.elems() {
            let key = match elem {
                TrainElem::Layer(l) => {
                    let next = layer_content_ids.len();
                    let id = *layer_content_ids.entry(LayerKey::of(l)).or_insert(next);
                    layer_content[l.index()] = id;
                    ElemKey::Layer(id)
                }
                TrainElem::Block {
                    branches,
                    fork,
                    join,
                } => ElemKey::Block {
                    fork: *fork,
                    join: *join,
                    branches: branches
                        .iter()
                        .map(|b| {
                            b.iter()
                                .map(|l| {
                                    let next = layer_content_ids.len();
                                    let id = *layer_content_ids
                                        .entry(LayerKey::of(l))
                                        .or_insert(next);
                                    layer_content[l.index()] = id;
                                    id
                                })
                                .collect()
                        })
                        .collect(),
                },
            };
            let next = elem_content_ids.len();
            elem_content.push(*elem_content_ids.entry(key).or_insert(next));
        }

        // Pass 2: refine by fan-in context. Two layers are class-equal
        // iff their content and their *feeding* content are equal, so
        // repeat 2..N of an identical block all merge (each is fed by a
        // content-identical repeat) while repeat 1 — fed by whatever
        // precedes the stack — stays its own class.
        let mut layer_ids: FxHashMap<(usize, FanIn), usize> = FxHashMap::default();
        let mut elem_ids: FxHashMap<(usize, Option<usize>), usize> = FxHashMap::default();
        let mut layer_class = vec![0usize; view.weighted_len()];
        let mut layer_rep = Vec::new();
        let mut elem_class = Vec::with_capacity(view.elems().len());
        let mut elem_rep = Vec::new();

        let mut intern_layer = |layer_rep: &mut Vec<usize>, index: usize, fan_in| {
            let next = layer_rep.len();
            let id = *layer_ids.entry((layer_content[index], fan_in)).or_insert(next);
            if id == next {
                layer_rep.push(index);
            }
            id
        };

        let mut prev: Option<usize> = None;
        for (e, elem) in view.elems().iter().enumerate() {
            match elem {
                TrainElem::Layer(l) => {
                    let fan_in = prev.map_or(FanIn::Start, FanIn::Elem);
                    layer_class[l.index()] = intern_layer(&mut layer_rep, l.index(), fan_in);
                }
                TrainElem::Block { branches, .. } => {
                    for b in branches {
                        let mut prev_layer: Option<usize> = None;
                        for l in b {
                            let fan_in = prev_layer.map_or(FanIn::Fork(prev), FanIn::Chain);
                            layer_class[l.index()] =
                                intern_layer(&mut layer_rep, l.index(), fan_in);
                            prev_layer = Some(layer_content[l.index()]);
                        }
                    }
                }
            }
            let next = elem_rep.len();
            let id = *elem_ids.entry((elem_content[e], prev)).or_insert(next);
            if id == next {
                elem_rep.push(e);
            }
            elem_class.push(id);
            prev = Some(elem_content[e]);
        }

        Self {
            layer_class,
            layer_rep,
            elem_class,
            elem_rep,
        }
    }

    /// Number of distinct layer classes.
    #[must_use]
    pub fn layer_classes(&self) -> usize {
        self.layer_rep.len()
    }

    /// Number of distinct element classes.
    #[must_use]
    pub fn elem_classes(&self) -> usize {
        self.elem_rep.len()
    }

    /// Number of weighted layers partitioned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layer_class.len()
    }

    /// Whether the view had no weighted layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layer_class.is_empty()
    }

    /// The class id of one weighted layer (by its weighted index).
    #[must_use]
    pub fn layer_class(&self, layer: usize) -> usize {
        self.layer_class[layer]
    }

    /// All layer class ids, indexed by weighted-layer index.
    #[must_use]
    pub fn layer_class_ids(&self) -> &[usize] {
        &self.layer_class
    }

    /// The class id of one chain element (by element index).
    #[must_use]
    pub fn elem_class(&self, elem: usize) -> usize {
        self.elem_class[elem]
    }

    /// All element class ids, in element-walk order.
    #[must_use]
    pub fn elem_class_ids(&self) -> &[usize] {
        &self.elem_class
    }

    /// The representative (first-occurring) weighted-layer index of a
    /// layer class.
    #[must_use]
    pub fn layer_rep(&self, class: usize) -> usize {
        self.layer_rep[class]
    }

    /// The representative (first-occurring) element index of an element
    /// class.
    #[must_use]
    pub fn elem_rep(&self, class: usize) -> usize {
        self.elem_rep[class]
    }

    /// `classes / layers` — 1.0 means nothing collapsed; a 96-block
    /// stack collapses towards `O(1/depth)`.
    #[must_use]
    pub fn collapse_ratio(&self) -> f64 {
        if self.layer_class.is_empty() {
            return 1.0;
        }
        self.layer_rep.len() as f64 / self.layer_class.len() as f64
    }

    /// Rows a collapsed cost-table build stamps instead of computing:
    /// `layers − classes`.
    #[must_use]
    pub fn stamped(&self) -> usize {
        self.layer_class.len() - self.layer_rep.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use crate::{Layer, NetworkBuilder};
    use accpar_tensor::ConvGeometry;

    #[test]
    fn identical_repeats_share_a_class() {
        // Three identical FC layers after the first: the first is its
        // own class (position rule + Start fan-in), the second starts
        // the repeating context, the rest merge into it.
        let net = NetworkBuilder::new("t", FeatureShape::fc(8, 64))
            .linear("a", 64, 64)
            .linear("b", 64, 64)
            .linear("c", 64, 64)
            .linear("d", 64, 64)
            .build()
            .unwrap();
        let view = net.train_view().unwrap();
        let c = IsoClasses::of(&view);
        assert_eq!(c.len(), 4);
        assert_eq!(c.layer_classes(), 3);
        assert_ne!(c.layer_class(0), c.layer_class(1));
        // `b` is fed by the unique first layer; `c` and `d` are both
        // fed by a repeat — only those two merge.
        assert_ne!(c.layer_class(1), c.layer_class(2));
        assert_eq!(c.layer_class(2), c.layer_class(3));
        assert_eq!(c.layer_rep(c.layer_class(3)), 2);
        assert_eq!(c.stamped(), 1);
    }

    #[test]
    fn shape_differences_split_classes() {
        let net = NetworkBuilder::new("t", FeatureShape::fc(8, 64))
            .linear("a", 64, 64)
            .linear("b", 64, 64)
            .linear("c", 64, 128)
            .build()
            .unwrap();
        let view = net.train_view().unwrap();
        let c = IsoClasses::of(&view);
        assert_eq!(c.layer_classes(), 3);
    }

    #[test]
    fn deep_encoder_stacks_collapse_near_constant() {
        // The whole point: class count must not grow with depth.
        let shallow = IsoClasses::of(&zoo::deep_stack(4, 32, 8).unwrap().train_view().unwrap());
        let deep = IsoClasses::of(&zoo::deep_stack(4, 32, 32).unwrap().train_view().unwrap());
        assert_eq!(shallow.layer_classes(), deep.layer_classes());
        assert!(deep.collapse_ratio() < shallow.collapse_ratio());
        assert!(deep.layer_classes() <= 14, "{}", deep.layer_classes());
    }

    #[test]
    fn residual_blocks_classify_as_elements() {
        let net = NetworkBuilder::new("r", FeatureShape::conv(8, 8, 8, 8))
            .conv2d("stem", 8, 8, ConvGeometry::same(3))
            .residual(
                vec![Layer::conv2d("b1", 8, 8, ConvGeometry::same(3))],
                vec![],
            )
            .residual(
                vec![Layer::conv2d("b2", 8, 8, ConvGeometry::same(3))],
                vec![],
            )
            .build()
            .unwrap();
        let view = net.train_view().unwrap();
        let c = IsoClasses::of(&view);
        assert_eq!(view.elems().len(), 3);
        // The first block is fed by the unique stem; the second by a
        // block — distinct fan-in context, distinct element classes.
        assert_eq!(c.elem_classes(), 3);
        assert_eq!(c.elem_rep(c.elem_class(2)), 2);
    }

    #[test]
    fn class_ids_are_first_occurrence_ordered() {
        let view = zoo::bert_base(4, 32).unwrap().train_view().unwrap();
        let c = IsoClasses::of(&view);
        let mut seen = 0;
        for &id in c.layer_class_ids() {
            assert!(id <= seen, "id {id} before its first occurrence");
            seen = seen.max(id + 1);
        }
        assert_eq!(seen, c.layer_classes());
    }
}
