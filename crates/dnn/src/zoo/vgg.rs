use crate::builder::NetworkBuilder;
use crate::error::NetworkError;
use crate::network::Network;
use accpar_tensor::{ConvGeometry, FeatureShape};

use super::IMAGENET_CLASSES;

/// Configuration of a VGG variant (Simonyan & Zisserman, 2014): the
/// number of 3×3 convolutions in each of the five blocks.
///
/// Blocks use channel widths 64, 128, 256, 512, 512 and are separated by
/// 2×2/2 max pooling; the classifier is 25088 → 4096 → 4096 → 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VggConfig {
    /// Display name, e.g. `"vgg16"`.
    pub name: &'static str,
    /// Convolutions per block (5 blocks).
    pub convs_per_block: [usize; 5],
}

/// VGG-11 (configuration A).
pub const VGG11: VggConfig = VggConfig {
    name: "vgg11",
    convs_per_block: [1, 1, 2, 2, 2],
};

/// VGG-13 (configuration B).
pub const VGG13: VggConfig = VggConfig {
    name: "vgg13",
    convs_per_block: [2, 2, 2, 2, 2],
};

/// VGG-16 (configuration D).
pub const VGG16: VggConfig = VggConfig {
    name: "vgg16",
    convs_per_block: [2, 2, 3, 3, 3],
};

/// VGG-19 (configuration E).
pub const VGG19: VggConfig = VggConfig {
    name: "vgg19",
    convs_per_block: [2, 2, 4, 4, 4],
};

const BLOCK_CHANNELS: [usize; 5] = [64, 128, 256, 512, 512];

/// Builds a VGG variant from its configuration.
///
/// # Errors
///
/// Construction is infallible for any positive batch; errors indicate a
/// bug in this function.
pub fn vgg(config: VggConfig, batch: usize) -> Result<Network, NetworkError> {
    let mut b = NetworkBuilder::new(config.name, FeatureShape::conv(batch, 3, 224, 224));
    let mut c_in = 3;
    for (block, (&n_convs, &c_out)) in config
        .convs_per_block
        .iter()
        .zip(BLOCK_CHANNELS.iter())
        .enumerate()
    {
        for i in 0..n_convs {
            let name = format!("cv{}_{}", block + 1, i + 1);
            b = b
                .conv2d(&name, c_in, c_out, ConvGeometry::same(3))
                .relu(format!("relu{}_{}", block + 1, i + 1));
            c_in = c_out;
        }
        b = b.max_pool(format!("pool{}", block + 1), ConvGeometry::new(2, 2, 0));
    }
    b.flatten("flatten")
        .linear("fc1", 512 * 7 * 7, 4096)
        .relu("relu_fc1")
        .dropout("drop1")
        .linear("fc2", 4096, 4096)
        .relu("relu_fc2")
        .dropout("drop2")
        .linear("fc3", 4096, IMAGENET_CLASSES)
        .softmax("softmax")
        .build()
}

/// VGG-11 at the given batch size.
///
/// # Errors
///
/// See [`vgg`].
pub fn vgg11(batch: usize) -> Result<Network, NetworkError> {
    vgg(VGG11, batch)
}

/// VGG-13 at the given batch size.
///
/// # Errors
///
/// See [`vgg`].
pub fn vgg13(batch: usize) -> Result<Network, NetworkError> {
    vgg(VGG13, batch)
}

/// VGG-16 at the given batch size.
///
/// # Errors
///
/// See [`vgg`].
pub fn vgg16(batch: usize) -> Result<Network, NetworkError> {
    vgg(VGG16, batch)
}

/// VGG-19 at the given batch size.
///
/// # Errors
///
/// See [`vgg`].
pub fn vgg19(batch: usize) -> Result<Network, NetworkError> {
    vgg(VGG19, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_layer_counts_match_names() {
        let cases = [(VGG11, 11), (VGG13, 13), (VGG16, 16), (VGG19, 19)];
        for (cfg, expected) in cases {
            let net = vgg(cfg, 2).unwrap();
            assert_eq!(
                net.train_view().unwrap().weighted_len(),
                expected,
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn vgg16_params_match_simonyan_zisserman() {
        // 138,344,128 weight parameters (weights only, no biases).
        let params = vgg16(1).unwrap().stats().params;
        assert_eq!(params, 138_344_128);
    }

    #[test]
    fn final_conv_block_reaches_7x7() {
        let net = vgg19(2).unwrap();
        let view = net.train_view().unwrap();
        let convs: Vec<_> = view.layers().filter(|l| l.kind().is_conv()).collect();
        let last_conv = convs.last().unwrap();
        assert_eq!(last_conv.out_fmap().spatial(), (14, 14));
        // After pool5 the fc1 input is flat 512·7·7.
        let fc1 = view.layers().find(|l| l.name() == "fc1").unwrap();
        assert_eq!(fc1.d_in(), 25_088);
    }

    #[test]
    fn vgg_sizes_increase_with_depth() {
        let p11 = vgg11(1).unwrap().stats();
        let p19 = vgg19(1).unwrap().stats();
        assert!(p19.params > p11.params);
        assert!(p19.train_flops > p11.train_flops);
    }
}
