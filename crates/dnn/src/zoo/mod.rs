//! The model zoo of the paper's evaluation (§6.1): LeNet on MNIST-shaped
//! inputs, and AlexNet, the VGG series and the ResNet series on
//! ImageNet-shaped inputs — plus the transformer extension models
//! [`bert_base`], [`gpt2_small`] and [`vit_b16`].
//!
//! All constructors take the mini-batch size (the paper uses 512) and
//! return a fully shape-resolved [`Network`]; the language models also
//! take a sequence length ([`by_name`] uses [`DEFAULT_SEQ_LEN`]).
//!
//! # Example
//!
//! ```
//! use accpar_dnn::zoo;
//!
//! for net in zoo::evaluation_suite(512)? {
//!     assert_eq!(net.batch(), 512);
//! }
//! # Ok::<(), accpar_dnn::NetworkError>(())
//! ```

mod alexnet;
mod googlenet;
mod lenet;
mod resnet;
mod transformer;
mod vgg;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use lenet::lenet;
pub use resnet::{resnet, resnet101, resnet152, resnet18, resnet34, resnet50, ResnetConfig};
pub use transformer::{
    bert_base, deep_stack, gpt2_small, gpt2_xl, vit_b16, BERT_VOCAB, GPT2_VOCAB,
};
pub use vgg::{vgg, vgg11, vgg13, vgg16, vgg19, VggConfig};

use crate::error::NetworkError;
use crate::network::Network;

/// Number of ImageNet classes used by every large model.
pub const IMAGENET_CLASSES: usize = 1000;

/// Number of MNIST classes used by LeNet.
pub const MNIST_CLASSES: usize = 10;

/// Sequence length used when a transformer model is requested
/// [`by_name`] (which has no sequence-length argument).
pub const DEFAULT_SEQ_LEN: usize = 128;

/// The nine networks of the paper's evaluation, in Figure 5 order,
/// followed by the transformer extension models.
pub const EVALUATION_NAMES: [&str; 12] = [
    "lenet",
    "alexnet",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "resnet18",
    "resnet34",
    "resnet50",
    "bert_base",
    "gpt2_small",
    "vit_b16",
];

/// Builds a zoo network by its [`EVALUATION_NAMES`] name.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidGraph`] for an unknown name and
/// propagates shape errors (which indicate a bug in the zoo itself).
pub fn by_name(name: &str, batch: usize) -> Result<Network, NetworkError> {
    match name {
        "lenet" => lenet(batch),
        "alexnet" => alexnet(batch),
        "vgg11" => vgg11(batch),
        "vgg13" => vgg13(batch),
        "vgg16" => vgg16(batch),
        "vgg19" => vgg19(batch),
        "resnet18" => resnet18(batch),
        "resnet34" => resnet34(batch),
        "resnet50" => resnet50(batch),
        "resnet101" => resnet101(batch),
        "resnet152" => resnet152(batch),
        "googlenet" => googlenet(batch),
        "bert_base" => bert_base(batch, DEFAULT_SEQ_LEN),
        "gpt2_small" => gpt2_small(batch, DEFAULT_SEQ_LEN),
        "gpt2_xl" => gpt2_xl(batch, DEFAULT_SEQ_LEN),
        "deep48" => deep_stack(batch, DEFAULT_SEQ_LEN, 48),
        "deep96" => deep_stack(batch, DEFAULT_SEQ_LEN, 96),
        "vit_b16" => vit_b16(batch),
        other => Err(NetworkError::InvalidGraph(format!(
            "unknown zoo network `{other}`"
        ))),
    }
}

/// Builds all twelve evaluation networks: the paper's nine in Figure 5
/// order, then the transformer extension models.
///
/// # Errors
///
/// Propagates construction errors (which indicate a bug in the zoo).
pub fn evaluation_suite(batch: usize) -> Result<Vec<Network>, NetworkError> {
    EVALUATION_NAMES
        .iter()
        .map(|name| by_name(name, batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_evaluation_names() {
        for name in EVALUATION_NAMES {
            let net = by_name(name, 2).unwrap();
            assert_eq!(net.name(), name);
            assert_eq!(net.batch(), 2);
        }
    }

    #[test]
    fn unknown_name_is_rejected() {
        assert!(by_name("gpt5", 2).is_err());
    }

    #[test]
    fn suite_has_twelve_networks() {
        let suite = evaluation_suite(2).unwrap();
        assert_eq!(suite.len(), 12);
    }

    #[test]
    fn imagenet_models_end_in_1000_classes() {
        // The CNN slice [1..9]; the language models end in d_model and
        // vit_b16 is checked in the transformer module.
        for name in &EVALUATION_NAMES[1..9] {
            let net = by_name(name, 2).unwrap();
            assert_eq!(net.output().channels(), IMAGENET_CLASSES, "{name}");
        }
    }
}
