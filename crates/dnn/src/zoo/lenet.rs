use crate::builder::NetworkBuilder;
use crate::error::NetworkError;
use crate::network::Network;
use accpar_tensor::{ConvGeometry, FeatureShape};

use super::MNIST_CLASSES;

/// LeNet-5 (LeCun et al.) for MNIST: two 5×5 convolutions with 2×2
/// average pooling, then three fully-connected layers
/// (400 → 120 → 84 → 10).
///
/// The 28×28 MNIST digits are zero-padded to 32×32 by the first
/// convolution, matching the original network.
///
/// # Errors
///
/// Construction is infallible for any positive batch; errors indicate a
/// bug in this function.
pub fn lenet(batch: usize) -> Result<Network, NetworkError> {
    NetworkBuilder::new("lenet", FeatureShape::conv(batch, 1, 28, 28))
        .conv2d("cv1", 1, 6, ConvGeometry::new(5, 1, 2))
        .relu("relu1")
        .avg_pool("pool1", ConvGeometry::new(2, 2, 0))
        .conv2d("cv2", 6, 16, ConvGeometry::new(5, 1, 0))
        .relu("relu2")
        .avg_pool("pool2", ConvGeometry::new(2, 2, 0))
        .flatten("flatten")
        .linear("fc1", 16 * 5 * 5, 120)
        .relu("relu3")
        .linear("fc2", 120, 84)
        .relu("relu4")
        .linear("fc3", 84, MNIST_CLASSES)
        .softmax("softmax")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_shapes() {
        let net = lenet(128).unwrap();
        assert_eq!(net.output(), FeatureShape::fc(128, 10));
        let view = net.train_view().unwrap();
        assert_eq!(view.weighted_len(), 5);
        let fcs: Vec<_> = view.layers().filter(|l| !l.kind().is_conv()).collect();
        assert_eq!(fcs[0].d_in(), 400);
        assert_eq!(fcs[0].d_out(), 120);
    }

    #[test]
    fn lenet_parameter_count() {
        // Weights only: 1·6·25 + 6·16·25 + 400·120 + 120·84 + 84·10
        let expected = 150 + 2400 + 48_000 + 10_080 + 840;
        assert_eq!(lenet(1).unwrap().stats().params, expected);
    }
}
