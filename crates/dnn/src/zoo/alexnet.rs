use crate::builder::NetworkBuilder;
use crate::error::NetworkError;
use crate::network::Network;
use accpar_tensor::{ConvGeometry, FeatureShape};

use super::IMAGENET_CLASSES;

/// AlexNet (Krizhevsky et al., NIPS 2012) in its single-tower form: five
/// convolutions (`cv1`–`cv5`) and three fully-connected layers
/// (`fc1`–`fc3`), the layer naming used by Figure 7 of the AccPar paper.
///
/// Channel plan 96 → 256 → 384 → 384 → 256 follows the original paper;
/// the classifier is 9216 → 4096 → 4096 → 1000.
///
/// # Errors
///
/// Construction is infallible for any positive batch; errors indicate a
/// bug in this function.
pub fn alexnet(batch: usize) -> Result<Network, NetworkError> {
    NetworkBuilder::new("alexnet", FeatureShape::conv(batch, 3, 224, 224))
        .conv2d("cv1", 3, 96, ConvGeometry::new(11, 4, 2))
        .relu("relu1")
        .lrn("lrn1")
        .max_pool("pool1", ConvGeometry::new(3, 2, 0))
        .conv2d("cv2", 96, 256, ConvGeometry::new(5, 1, 2))
        .relu("relu2")
        .lrn("lrn2")
        .max_pool("pool2", ConvGeometry::new(3, 2, 0))
        .conv2d("cv3", 256, 384, ConvGeometry::same(3))
        .relu("relu3")
        .conv2d("cv4", 384, 384, ConvGeometry::same(3))
        .relu("relu4")
        .conv2d("cv5", 384, 256, ConvGeometry::same(3))
        .relu("relu5")
        .max_pool("pool5", ConvGeometry::new(3, 2, 0))
        .flatten("flatten")
        .dropout("drop1")
        .linear("fc1", 256 * 6 * 6, 4096)
        .relu("relu6")
        .dropout("drop2")
        .linear("fc2", 4096, 4096)
        .relu("relu7")
        .linear("fc3", 4096, IMAGENET_CLASSES)
        .softmax("softmax")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shapes() {
        let net = alexnet(512).unwrap();
        assert_eq!(net.output(), FeatureShape::fc(512, 1000));
        let view = net.train_view().unwrap();
        assert_eq!(view.weighted_len(), 8);
        let names: Vec<_> = view.layers().map(|l| l.name().to_owned()).collect();
        assert_eq!(
            names,
            ["cv1", "cv2", "cv3", "cv4", "cv5", "fc1", "fc2", "fc3"]
        );
    }

    #[test]
    fn conv_feature_extents_match_original_paper() {
        let net = alexnet(1).unwrap();
        let view = net.train_view().unwrap();
        let spatials: Vec<_> = view
            .layers()
            .filter(|l| l.kind().is_conv())
            .map(|l| l.out_fmap().spatial())
            .collect();
        assert_eq!(
            spatials,
            [(55, 55), (27, 27), (13, 13), (13, 13), (13, 13)]
        );
    }

    #[test]
    fn alexnet_parameter_count_is_about_61m() {
        // Single-tower weights-only count.
        let params = alexnet(1).unwrap().stats().params;
        assert!(params > 55_000_000 && params < 65_000_000, "{params}");
        // FC layers dominate: fc1 alone is 9216*4096 ≈ 37.7 M.
        assert!(params > 9216 * 4096);
    }
}
