use crate::builder::NetworkBuilder;
use crate::error::NetworkError;
use crate::network::Network;
use accpar_tensor::{ConvGeometry, FeatureShape};

use super::IMAGENET_CLASSES;

/// BERT-base WordPiece vocabulary size.
pub const BERT_VOCAB: usize = 30_522;

/// GPT-2 BPE vocabulary size.
pub const GPT2_VOCAB: usize = 50_257;

/// Appends `blocks` pre-norm transformer encoder blocks to `b`: each is
/// multi-head self-attention followed by a `d_model → 4·d_model → d_model`
/// feed-forward pair, with layer norms in between.
///
/// Residual shortcuts are deliberately omitted: attention lowers to a
/// parallel block in the train view and parallel blocks do not nest, so the
/// zoo keeps the trunk linear. Residuals are element-wise and unweighted —
/// they change neither the weighted-layer set nor its shapes, only which
/// conversion edges exist, so the partition search sees the same per-layer
/// problem.
fn encoder_stack(
    mut b: NetworkBuilder,
    blocks: usize,
    heads: usize,
    d_model: usize,
) -> NetworkBuilder {
    let d_head = d_model / heads;
    let d_ff = 4 * d_model;
    for i in 0..blocks {
        b = b
            .layer_norm(format!("blk{i}.ln1"))
            .multi_head_attention(format!("blk{i}.attn"), heads, d_model, d_head)
            .layer_norm(format!("blk{i}.ln2"))
            .linear(format!("blk{i}.ffn_up"), d_model, d_ff)
            .relu(format!("blk{i}.gelu"))
            .linear(format!("blk{i}.ffn_down"), d_ff, d_model);
    }
    b
}

/// BERT-base (Devlin et al.): token embedding followed by 12 encoder
/// blocks with 12 heads over `d_model = 768`.
///
/// # Errors
///
/// Construction is infallible for positive `batch` / `seq`; errors
/// indicate a bug in this function.
pub fn bert_base(batch: usize, seq: usize) -> Result<Network, NetworkError> {
    let b = NetworkBuilder::new("bert_base", FeatureShape::seq(batch, seq, 1))
        .embedding("embed", BERT_VOCAB, 768);
    encoder_stack(b, 12, 12, 768).layer_norm("final_ln").build()
}

/// GPT-2-small (Radford et al.): the same 12×12×768 stack as BERT-base
/// but with the GPT-2 vocabulary. The planner sees training FLOPs and
/// tensor shapes, so causal masking (a zeroed half of the score matrix)
/// is not modelled separately.
///
/// # Errors
///
/// Construction is infallible for positive `batch` / `seq`; errors
/// indicate a bug in this function.
pub fn gpt2_small(batch: usize, seq: usize) -> Result<Network, NetworkError> {
    let b = NetworkBuilder::new("gpt2_small", FeatureShape::seq(batch, seq, 1))
        .embedding("embed", GPT2_VOCAB, 768);
    encoder_stack(b, 12, 12, 768).layer_norm("final_ln").build()
}

/// ViT-B/16 (Dosovitskiy et al.): a 16×16/stride-16 convolutional patch
/// embedding of a 224×224 image into 196 tokens of `d_model = 768`,
/// 12 encoder blocks, and a 1000-class head.
///
/// # Errors
///
/// Construction is infallible for positive `batch`; errors indicate a bug
/// in this function.
pub fn vit_b16(batch: usize) -> Result<Network, NetworkError> {
    let b = NetworkBuilder::new("vit_b16", FeatureShape::conv(batch, 3, 224, 224))
        .conv2d("patch_embed", 3, 768, ConvGeometry::new(16, 16, 0))
        .to_sequence("to_seq");
    encoder_stack(b, 12, 12, 768)
        .layer_norm("final_ln")
        .linear("head", 768, IMAGENET_CLASSES)
        .build()
}

/// GPT-2-XL-class depth (Radford et al.): 48 encoder blocks with
/// 25 heads over `d_model = 1600` (`d_head = 64`) behind the GPT-2
/// vocabulary — the configuration that makes planning time *depth*-bound
/// rather than width-bound, exercised by the isomorphism-collapse path.
///
/// # Errors
///
/// Construction is infallible for positive `batch` / `seq`; errors
/// indicate a bug in this function.
pub fn gpt2_xl(batch: usize, seq: usize) -> Result<Network, NetworkError> {
    let b = NetworkBuilder::new("gpt2_xl", FeatureShape::seq(batch, seq, 1))
        .embedding("embed", GPT2_VOCAB, 1600);
    encoder_stack(b, 48, 25, 1600).layer_norm("final_ln").build()
}

/// A synthetic deep stack for depth-scaling studies: `blocks` identical
/// BERT-base-shaped encoder blocks (12 heads, `d_model = 768`) with no
/// embedding, named `deep{blocks}`. Every block is isomorphic to its
/// neighbours, so the planner's structural-hash collapse reduces the
/// whole stack to a handful of layer classes regardless of `blocks`.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidGraph`] for `blocks == 0`; otherwise
/// construction is infallible for positive `batch` / `seq`.
pub fn deep_stack(batch: usize, seq: usize, blocks: usize) -> Result<Network, NetworkError> {
    if blocks == 0 {
        return Err(NetworkError::InvalidGraph(
            "deep_stack needs at least one block".into(),
        ));
    }
    let b = NetworkBuilder::new(
        format!("deep{blocks}"),
        FeatureShape::seq(batch, seq, 768),
    );
    encoder_stack(b, blocks, 12, 768).layer_norm("final_ln").build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_shapes_and_size() {
        let net = bert_base(4, 128).unwrap();
        assert_eq!(net.output(), FeatureShape::seq(4, 128, 768));
        let view = net.train_view().unwrap();
        // embed + 12 × (q, k, v, o, up, down)
        assert_eq!(view.weighted_len(), 1 + 12 * 6);
        // One q|k|v block per encoder layer.
        assert_eq!(
            view.elems()
                .iter()
                .filter(|e| matches!(e, crate::TrainElem::Block { .. }))
                .count(),
            12
        );
        // Weight count: embedding + 12 × (4·768² attention + 2·4·768² ffn).
        let expected = (BERT_VOCAB * 768 + 12 * (4 * 768 * 768 + 8 * 768 * 768)) as u64;
        assert_eq!(net.stats().params, expected);
    }

    #[test]
    fn gpt2_small_uses_its_own_vocabulary() {
        let net = gpt2_small(2, 64).unwrap();
        let view = net.train_view().unwrap();
        let embed = view.layers().next().unwrap();
        assert_eq!(embed.d_in(), GPT2_VOCAB);
        assert_eq!(embed.d_out(), 768);
    }

    #[test]
    fn gpt2_xl_is_48_wide_blocks() {
        let net = gpt2_xl(2, 32).unwrap();
        assert_eq!(net.output(), FeatureShape::seq(2, 32, 1600));
        let view = net.train_view().unwrap();
        assert_eq!(view.weighted_len(), 1 + 48 * 6);
        let q = view.layers().find(|l| l.heads().is_some()).unwrap();
        assert_eq!(q.heads(), Some(25));
        assert_eq!(q.d_out(), 1600); // 25 heads × d_head 64
    }

    #[test]
    fn deep_stack_scales_by_blocks_only() {
        let d48 = deep_stack(2, 32, 48).unwrap();
        let d96 = deep_stack(2, 32, 96).unwrap();
        assert_eq!(d48.name(), "deep48");
        assert_eq!(d96.name(), "deep96");
        assert_eq!(d48.train_view().unwrap().weighted_len(), 48 * 6);
        assert_eq!(d96.train_view().unwrap().weighted_len(), 96 * 6);
        assert!(deep_stack(2, 32, 0).is_err());
    }

    #[test]
    fn vit_b16_patches_into_196_tokens() {
        let net = vit_b16(2).unwrap();
        assert_eq!(net.output().channels(), IMAGENET_CLASSES);
        let view = net.train_view().unwrap();
        // patch conv + 12 × 6 + head
        assert_eq!(view.weighted_len(), 1 + 12 * 6 + 1);
        // 224/16 = 14 ⇒ 196 tokens after to_sequence.
        let q = view.layers().nth(1).unwrap();
        assert_eq!(q.in_fmap(), FeatureShape::seq(2, 196, 768));
    }
}
