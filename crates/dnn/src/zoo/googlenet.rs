use crate::builder::NetworkBuilder;
use crate::error::NetworkError;
use crate::layer::{Activation, Layer, LayerKind, PoolKind};
use crate::network::{JoinOp, Network};
use accpar_tensor::{ConvGeometry, FeatureShape};

use super::IMAGENET_CLASSES;

/// Channel plan of one Inception module:
/// `(1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj)`.
type InceptionCfg = (usize, usize, usize, usize, usize, usize);

/// GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015) — an *extension*
/// beyond the paper's evaluation suite: its inception modules are
/// four-way channel-concatenation blocks, exercising the multi-path
/// search (§5.2) on `Concat` joins with more than two branches (ResNet's
/// blocks are two-way `Add` joins).
///
/// The auxiliary classifiers (training-time side heads) are omitted, as
/// is standard for architectural analysis.
///
/// # Errors
///
/// Construction is infallible for any positive batch; errors indicate a
/// bug in this function.
pub fn googlenet(batch: usize) -> Result<Network, NetworkError> {
    let mut b = NetworkBuilder::new("googlenet", FeatureShape::conv(batch, 3, 224, 224))
        .conv2d("conv1", 3, 64, ConvGeometry::new(7, 2, 3))
        .relu("relu1")
        .max_pool("pool1", ConvGeometry::new(3, 2, 1))
        .lrn("lrn1")
        .conv2d("conv2r", 64, 64, ConvGeometry::pointwise(1))
        .relu("relu2r")
        .conv2d("conv2", 64, 192, ConvGeometry::same(3))
        .relu("relu2")
        .lrn("lrn2")
        .max_pool("pool2", ConvGeometry::new(3, 2, 1));

    // (name, c_in, cfg). Output channels = 1x1 + 3x3 + 5x5 + pool proj.
    let modules: [(&str, usize, InceptionCfg); 9] = [
        ("3a", 192, (64, 96, 128, 16, 32, 32)),    // -> 256
        ("3b", 256, (128, 128, 192, 32, 96, 64)),  // -> 480
        ("4a", 480, (192, 96, 208, 16, 48, 64)),   // -> 512
        ("4b", 512, (160, 112, 224, 24, 64, 64)),  // -> 512
        ("4c", 512, (128, 128, 256, 24, 64, 64)),  // -> 512
        ("4d", 512, (112, 144, 288, 32, 64, 64)),  // -> 528
        ("4e", 528, (256, 160, 320, 32, 128, 128)), // -> 832
        ("5a", 832, (256, 160, 320, 32, 128, 128)), // -> 832
        ("5b", 832, (384, 192, 384, 48, 128, 128)), // -> 1024
    ];

    for (name, c_in, cfg) in modules {
        b = b.block(JoinOp::Concat, inception_branches(name, c_in, cfg));
        match name {
            "3b" | "4e" => {
                b = b.max_pool(format!("pool_{name}"), ConvGeometry::new(3, 2, 1));
            }
            _ => {}
        }
    }

    b.avg_pool("avgpool", ConvGeometry::new(7, 1, 0))
        .flatten("flatten")
        .dropout("dropout")
        .linear("fc", 1024, IMAGENET_CLASSES)
        .softmax("softmax")
        .build()
}

fn inception_branches(name: &str, c_in: usize, cfg: InceptionCfg) -> Vec<Vec<Layer>> {
    let (p1, p3r, p3, p5r, p5, pp) = cfg;
    vec![
        // 1x1 branch.
        vec![
            Layer::conv2d(format!("i{name}.b1"), c_in, p1, ConvGeometry::pointwise(1)),
            Layer::activation(format!("i{name}.b1r"), Activation::Relu),
        ],
        // 1x1 reduce -> 3x3 branch.
        vec![
            Layer::conv2d(format!("i{name}.b3r"), c_in, p3r, ConvGeometry::pointwise(1)),
            Layer::activation(format!("i{name}.b3rr"), Activation::Relu),
            Layer::conv2d(format!("i{name}.b3"), p3r, p3, ConvGeometry::same(3)),
            Layer::activation(format!("i{name}.b3a"), Activation::Relu),
        ],
        // 1x1 reduce -> 5x5 branch.
        vec![
            Layer::conv2d(format!("i{name}.b5r"), c_in, p5r, ConvGeometry::pointwise(1)),
            Layer::activation(format!("i{name}.b5rr"), Activation::Relu),
            Layer::conv2d(format!("i{name}.b5"), p5r, p5, ConvGeometry::same(5)),
            Layer::activation(format!("i{name}.b5a"), Activation::Relu),
        ],
        // 3x3 maxpool -> 1x1 projection branch.
        vec![
            Layer::pool(
                format!("i{name}.pp"),
                PoolKind::Max,
                ConvGeometry::new(3, 1, 1),
            ),
            Layer::conv2d(format!("i{name}.ppc"), c_in, pp, ConvGeometry::pointwise(1)),
            Layer::new(format!("i{name}.ppr"), LayerKind::Activation(Activation::Relu)),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainElem;

    #[test]
    fn googlenet_shapes() {
        let net = googlenet(32).unwrap();
        assert_eq!(net.output(), FeatureShape::fc(32, 1000));
        let view = net.train_view().unwrap();
        // 3 stem convs + 9 modules x 6 convs + 1 fc = 58 weighted layers.
        assert_eq!(view.weighted_len(), 58);
    }

    #[test]
    fn inception_modules_are_four_way_blocks() {
        let view = googlenet(2).unwrap().train_view().unwrap();
        let blocks: Vec<_> = view
            .elems()
            .iter()
            .filter_map(|e| match e {
                TrainElem::Block { branches, .. } => Some(branches),
                TrainElem::Layer(_) => None,
            })
            .collect();
        assert_eq!(blocks.len(), 9);
        for branches in blocks {
            assert_eq!(branches.len(), 4);
            // 1x1 branch has one conv; 3x3 and 5x5 have two; pool has one.
            let lens: Vec<usize> = branches.iter().map(Vec::len).collect();
            assert_eq!(lens, vec![1, 2, 2, 1]);
        }
    }

    #[test]
    fn concat_channels_accumulate() {
        let net = googlenet(1).unwrap();
        let view = net.train_view().unwrap();
        // Module 3a: 64 + 128 + 32 + 32 = 256 channels at 28x28.
        let first_block = view
            .elems()
            .iter()
            .find_map(|e| match e {
                TrainElem::Block { join, .. } => Some(*join),
                TrainElem::Layer(_) => None,
            })
            .unwrap();
        assert_eq!(first_block.channels(), 256);
        assert_eq!(first_block.spatial(), (28, 28));
    }

    #[test]
    fn googlenet_parameter_count_is_about_6m() {
        // ~6.6 M conv+fc weights (no biases, no aux heads).
        let params = googlenet(1).unwrap().stats().params;
        assert!(params > 5_000_000 && params < 8_000_000, "{params}");
    }
}
