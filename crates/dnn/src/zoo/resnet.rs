use crate::builder::NetworkBuilder;
use crate::error::NetworkError;
use crate::layer::{Activation, Layer, LayerKind};
use crate::network::Network;
use accpar_tensor::{ConvGeometry, FeatureShape};

use super::IMAGENET_CLASSES;

/// The two residual block flavors of He et al. (CVPR 2016).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Two 3×3 convolutions (ResNet-18/34); expansion 1.
    Basic,
    /// 1×1 → 3×3 → 1×1 bottleneck (ResNet-50/101/152); expansion 4.
    Bottleneck,
}

impl BlockKind {
    /// Output-channel multiplier of the block.
    #[must_use]
    pub const fn expansion(self) -> usize {
        match self {
            BlockKind::Basic => 1,
            BlockKind::Bottleneck => 4,
        }
    }
}

/// Configuration of a ResNet variant: block flavor and per-stage depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResnetConfig {
    /// Display name, e.g. `"resnet50"`.
    pub name: &'static str,
    /// Basic or bottleneck residual blocks.
    pub block: BlockKind,
    /// Number of residual blocks in each of the four stages.
    pub stages: [usize; 4],
}

/// ResNet-18.
pub const RESNET18: ResnetConfig = ResnetConfig {
    name: "resnet18",
    block: BlockKind::Basic,
    stages: [2, 2, 2, 2],
};

/// ResNet-34.
pub const RESNET34: ResnetConfig = ResnetConfig {
    name: "resnet34",
    block: BlockKind::Basic,
    stages: [3, 4, 6, 3],
};

/// ResNet-50.
pub const RESNET50: ResnetConfig = ResnetConfig {
    name: "resnet50",
    block: BlockKind::Bottleneck,
    stages: [3, 4, 6, 3],
};

/// ResNet-101.
pub const RESNET101: ResnetConfig = ResnetConfig {
    name: "resnet101",
    block: BlockKind::Bottleneck,
    stages: [3, 4, 23, 3],
};

/// ResNet-152.
pub const RESNET152: ResnetConfig = ResnetConfig {
    name: "resnet152",
    block: BlockKind::Bottleneck,
    stages: [3, 8, 36, 3],
};

const STAGE_WIDTHS: [usize; 4] = [64, 128, 256, 512];

/// Builds a ResNet variant from its configuration: 7×7/2 stem, 3×3/2 max
/// pooling, four residual stages, global average pooling and a final
/// fully-connected classifier — the multi-path topology AccPar's §5.2
/// algorithm exists to handle.
///
/// # Errors
///
/// Construction is infallible for any positive batch; errors indicate a
/// bug in this function.
pub fn resnet(config: ResnetConfig, batch: usize) -> Result<Network, NetworkError> {
    let expansion = config.block.expansion();
    let mut b = NetworkBuilder::new(config.name, FeatureShape::conv(batch, 3, 224, 224))
        .conv2d("conv1", 3, 64, ConvGeometry::new(7, 2, 3))
        .batch_norm("bn1")
        .relu("relu1")
        .max_pool("maxpool", ConvGeometry::new(3, 2, 1));

    let mut c_in = 64;
    for (stage, (&depth, &width)) in config.stages.iter().zip(STAGE_WIDTHS.iter()).enumerate() {
        for block in 0..depth {
            // Stage 1 keeps the 56×56 extent; stages 2–4 downsample in
            // their first block.
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let c_out = width * expansion;
            let prefix = format!("l{}b{}", stage + 1, block + 1);
            let branch = residual_branch(config.block, &prefix, c_in, width, stride);
            let shortcut = if stride != 1 || c_in != c_out {
                vec![
                    Layer::conv2d(
                        format!("{prefix}.down"),
                        c_in,
                        c_out,
                        ConvGeometry::pointwise(stride),
                    ),
                    Layer::new(format!("{prefix}.downbn"), LayerKind::BatchNorm),
                ]
            } else {
                vec![]
            };
            b = b
                .residual(branch, shortcut)
                .relu(format!("{prefix}.relu_out"));
            c_in = c_out;
        }
    }

    b.avg_pool("avgpool", ConvGeometry::new(7, 1, 0))
        .flatten("flatten")
        .linear("fc", 512 * expansion, IMAGENET_CLASSES)
        .softmax("softmax")
        .build()
}

fn residual_branch(
    kind: BlockKind,
    prefix: &str,
    c_in: usize,
    width: usize,
    stride: usize,
) -> Vec<Layer> {
    match kind {
        BlockKind::Basic => vec![
            Layer::conv2d(
                format!("{prefix}.conv1"),
                c_in,
                width,
                ConvGeometry::try_new((3, 3), (stride, stride), (1, 1)).expect("valid geometry"),
            ),
            Layer::new(format!("{prefix}.bn1"), LayerKind::BatchNorm),
            Layer::activation(format!("{prefix}.relu1"), Activation::Relu),
            Layer::conv2d(format!("{prefix}.conv2"), width, width, ConvGeometry::same(3)),
            Layer::new(format!("{prefix}.bn2"), LayerKind::BatchNorm),
        ],
        BlockKind::Bottleneck => vec![
            Layer::conv2d(format!("{prefix}.conv1"), c_in, width, ConvGeometry::pointwise(1)),
            Layer::new(format!("{prefix}.bn1"), LayerKind::BatchNorm),
            Layer::activation(format!("{prefix}.relu1"), Activation::Relu),
            Layer::conv2d(
                format!("{prefix}.conv2"),
                width,
                width,
                ConvGeometry::try_new((3, 3), (stride, stride), (1, 1)).expect("valid geometry"),
            ),
            Layer::new(format!("{prefix}.bn2"), LayerKind::BatchNorm),
            Layer::activation(format!("{prefix}.relu2"), Activation::Relu),
            Layer::conv2d(
                format!("{prefix}.conv3"),
                width,
                width * 4,
                ConvGeometry::pointwise(1),
            ),
            Layer::new(format!("{prefix}.bn3"), LayerKind::BatchNorm),
        ],
    }
}

/// ResNet-18 at the given batch size.
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet18(batch: usize) -> Result<Network, NetworkError> {
    resnet(RESNET18, batch)
}

/// ResNet-34 at the given batch size.
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet34(batch: usize) -> Result<Network, NetworkError> {
    resnet(RESNET34, batch)
}

/// ResNet-50 at the given batch size.
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet50(batch: usize) -> Result<Network, NetworkError> {
    resnet(RESNET50, batch)
}

/// ResNet-101 at the given batch size.
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet101(batch: usize) -> Result<Network, NetworkError> {
    resnet(RESNET101, batch)
}

/// ResNet-152 at the given batch size.
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet152(batch: usize) -> Result<Network, NetworkError> {
    resnet(RESNET152, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainElem;

    #[test]
    fn weighted_layer_counts() {
        // Weighted = convs (incl. downsample convs) + final fc.
        // resnet18: 1 + 2·(2+2+2+2) + 3 downsamples + 1 = 21
        let r18 = resnet18(2).unwrap().train_view().unwrap();
        assert_eq!(r18.weighted_len(), 21);
        // resnet34: 1 + 2·16 + 3 + 1 = 37
        let r34 = resnet34(2).unwrap().train_view().unwrap();
        assert_eq!(r34.weighted_len(), 37);
        // resnet50: 1 + 3·16 + 4 + 1 = 54
        let r50 = resnet50(2).unwrap().train_view().unwrap();
        assert_eq!(r50.weighted_len(), 54);
    }

    #[test]
    fn blocks_are_preserved_in_train_view() {
        let view = resnet18(2).unwrap().train_view().unwrap();
        let blocks = view
            .elems()
            .iter()
            .filter(|e| matches!(e, TrainElem::Block { .. }))
            .count();
        assert_eq!(blocks, 8);
        // First block of stage 1 has an identity shortcut.
        let first_block = view
            .elems()
            .iter()
            .find_map(|e| match e {
                TrainElem::Block { branches, .. } => Some(branches),
                TrainElem::Layer(_) => None,
            })
            .unwrap();
        assert!(first_block.iter().any(Vec::is_empty));
    }

    #[test]
    fn spatial_pyramid_is_correct() {
        let view = resnet50(1).unwrap().train_view().unwrap();
        // Stem output 112², stages run at 56², 28², 14², 7².
        let stem = view.layers().next().unwrap();
        assert_eq!(stem.out_fmap().spatial(), (112, 112));
        let fc = view.layers().find(|l| !l.kind().is_conv()).unwrap();
        assert_eq!(fc.d_in(), 2048);
        assert_eq!(fc.d_out(), 1000);
    }

    #[test]
    fn resnet_is_compute_dense_relative_to_vgg() {
        // §6.2: "the computation densities of Resnet series are higher
        // than those of Vgg series" — training FLOPs per parameter.
        let r50 = resnet50(32).unwrap().stats();
        let v16 = super::super::vgg16(32).unwrap().stats();
        assert!(r50.flops_per_param() > v16.flops_per_param());
        assert!(v16.params > 5 * r50.params);
    }

    #[test]
    fn deeper_resnets_have_more_parameters() {
        let p18 = resnet18(1).unwrap().stats().params;
        let p34 = resnet34(1).unwrap().stats().params;
        let p50 = resnet50(1).unwrap().stats().params;
        let p101 = resnet101(1).unwrap().stats().params;
        assert!(p18 < p34 && p34 < p50 && p50 < p101);
        // resnet50 ≈ 25.5 M params (weights only ≈ 23.5 M).
        assert!(p50 > 20_000_000 && p50 < 26_000_000, "{p50}");
    }
}
