use crate::network::Network;
use accpar_tensor::DataFormat;
use std::fmt;

/// Aggregate size and compute statistics of a network.
///
/// Used by the evaluation discussion in §6.2 of the paper, which explains
/// the VGG-vs-ResNet speedup gap through *model size* (favoring Type-II /
/// Type-III partitions) versus *computation density* (favoring Type-I).
///
/// # Example
///
/// ```
/// use accpar_dnn::zoo;
///
/// let stats = zoo::vgg16(32)?.stats();
/// // VGG-16 carries ~138 M weight parameters.
/// assert!(stats.params > 130_000_000 && stats.params < 140_000_000);
/// # Ok::<(), accpar_dnn::NetworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total weight-tensor elements across all weighted layers (biases,
    /// which never participate in partitioning, are excluded).
    pub params: u64,
    /// Number of weighted (CONV + FC) layers.
    pub weighted_layers: usize,
    /// Number of convolutional layers.
    pub conv_layers: usize,
    /// Number of fully-connected layers.
    pub fc_layers: usize,
    /// Total layers including unweighted ones.
    pub total_layers: usize,
    /// Sum of `A(F_l)` over all weighted layers' inputs — the activation
    /// footprint of one training step before any partitioning.
    pub activation_elements: u64,
    /// FLOPs of one full training step (forward + backward + gradient) at
    /// the network's batch size.
    pub train_flops: u64,
    /// FLOPs of the forward (inference) pass only.
    pub forward_flops: u64,
}

impl NetworkStats {
    /// Model size in bytes for the given data format.
    #[must_use]
    pub const fn model_bytes(&self, format: DataFormat) -> u64 {
        format.bytes(self.params)
    }

    /// The paper's "computation density" notion for a model: training
    /// FLOPs per weight parameter. ResNets score much higher than VGGs,
    /// which is why Type-I (data) partitioning dominates there (§6.2).
    #[must_use]
    pub fn flops_per_param(&self) -> f64 {
        self.train_flops as f64 / self.params as f64
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} weighted layers ({} conv, {} fc), {:.1} M params, {:.1} GFLOP/step",
            self.weighted_layers,
            self.conv_layers,
            self.fc_layers,
            self.params as f64 / 1e6,
            self.train_flops as f64 / 1e9
        )
    }
}

impl Network {
    /// Computes aggregate statistics for this network.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        let view = self
            .train_view()
            .expect("a built network has weighted layers");
        let mut stats = NetworkStats {
            params: 0,
            weighted_layers: 0,
            conv_layers: 0,
            fc_layers: 0,
            total_layers: self.len(),
            activation_elements: 0,
            train_flops: 0,
            forward_flops: 0,
        };
        for layer in view.layers() {
            stats.params += layer.weight().size();
            stats.weighted_layers += 1;
            if layer.kind().is_conv() {
                stats.conv_layers += 1;
            } else {
                stats.fc_layers += 1;
            }
            stats.activation_elements += layer.in_fmap().size();
            stats.train_flops += layer.total_flops();
            stats.forward_flops += layer.forward_flops();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use accpar_tensor::FeatureShape;

    #[test]
    fn stats_for_tiny_mlp() {
        let net = NetworkBuilder::new("mlp", FeatureShape::fc(4, 10))
            .linear("fc1", 10, 20)
            .relu("r")
            .linear("fc2", 20, 5)
            .build()
            .unwrap();
        let s = net.stats();
        assert_eq!(s.params, 10 * 20 + 20 * 5);
        assert_eq!(s.weighted_layers, 2);
        assert_eq!(s.fc_layers, 2);
        assert_eq!(s.conv_layers, 0);
        assert_eq!(s.total_layers, 3);
        assert_eq!(s.activation_elements, 4 * 10 + 4 * 20);
        assert_eq!(s.model_bytes(DataFormat::Bf16), 2 * s.params);
        assert!(s.flops_per_param() > 0.0);
    }

    #[test]
    fn train_flops_exceed_forward_flops() {
        let net = NetworkBuilder::new("mlp", FeatureShape::fc(4, 10))
            .linear("fc1", 10, 20)
            .build()
            .unwrap();
        let s = net.stats();
        assert!(s.train_flops > s.forward_flops);
        // Training ≈ 3× inference for FC layers.
        assert!(s.train_flops < 4 * s.forward_flops);
    }
}
