//! A std-only worker pool for the planning engine.
//!
//! The workspace is deliberately dependency-free, so this crate provides
//! the minimal parallel primitives the planner needs on top of
//! [`std::thread::scope`]:
//!
//! * [`Pool::par_map`] — a fork-join map over a slice with
//!   **deterministic result ordering**: results come back in item order
//!   regardless of which worker computed them or when it finished.
//! * [`Pool::par_join`] — run two closures concurrently (the
//!   independent left/right recursion of the hierarchical planner).
//! * [`Pool::split`] — divide a pool between two nested branches so
//!   recursive parallelism never oversubscribes the machine.
//!
//! A pool is just a thread *budget*; threads are spawned per call and
//! joined before the call returns, so no state leaks between calls and
//! borrowed data flows in freely. The budget is a cap, not a demand:
//! physical workers are additionally clamped to the machine's available
//! parallelism, since oversubscribing cores cannot make a
//! deterministically ordered fork-join faster. With a budget of one (or single-item
//! inputs) every primitive degrades to plain serial execution on the
//! calling thread — the planner's serial and parallel paths therefore
//! share one code path and produce bit-identical results by
//! construction.
//!
//! The default budget honors the `ACCPAR_THREADS` environment variable
//! (falling back to [`std::thread::available_parallelism`]):
//!
//! ```
//! use accpar_runtime::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! let (a, b) = pool.par_join(|| 2 + 2, || "concurrently");
//! assert_eq!((a, b), (4, "concurrently"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// The machine's available parallelism (1 when undeterminable), cached
/// for the process lifetime.
fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Environment variable overriding the default thread budget.
pub const THREADS_ENV: &str = "ACCPAR_THREADS";

/// A fork-join thread budget (see the [module docs](self)).
///
/// Cheap to copy; carries no OS resources. Threads are scoped to each
/// `par_map`/`par_join` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with the given thread budget (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: every primitive runs serially on the
    /// calling thread.
    #[must_use]
    pub const fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The default pool: `ACCPAR_THREADS` when set to a positive
    /// integer, otherwise the machine's available parallelism (1 when
    /// that cannot be determined).
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        Self::new(threads)
    }

    /// The thread budget.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Whether every primitive will run serially.
    #[must_use]
    pub const fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Splits the budget across two concurrent branches: `(ceil, floor)`
    /// halves, each at least 1. Used by recursive fork-join so the total
    /// live thread count stays within the original budget.
    #[must_use]
    pub const fn split(&self) -> (Pool, Pool) {
        let a = self.threads.div_ceil(2);
        let b = if self.threads / 2 > 1 {
            self.threads / 2
        } else {
            1
        };
        (Pool { threads: a }, Pool { threads: b })
    }

    /// Maps `f` over `items` with up to [`Pool::threads`] workers and
    /// returns the results **in item order**. `f` receives the item's
    /// index alongside the item. Panics in `f` are propagated to the
    /// caller after all workers stop.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        // The budget is an upper bound; physical workers never exceed
        // the machine's parallelism — spawning more threads than cores
        // cannot make the (deterministically ordered) map faster.
        let workers = self.threads.min(items.len()).min(hardware_threads());
        let obs = accpar_obs::global();
        if obs.enabled() {
            obs.counter("pool.par_map.calls").inc();
            obs.counter("pool.par_map.items").add(items.len() as u64);
            // Items beyond the worker count wait in the striped queue.
            obs.histogram("pool.queue_depth")
                .record(items.len().saturating_sub(workers) as u64);
        }
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }

        let next = AtomicUsize::new(0);
        let mut buckets: Vec<Vec<(usize, U)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Merge the per-worker buckets back into item order.
        let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for bucket in &mut buckets {
            for (i, v) in bucket.drain(..) {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Runs `a` and `b` concurrently (serially, `a` first, when the
    /// budget is 1) and returns both results. Panics are propagated.
    pub fn par_join<RA, RB, FA, FB>(&self, a: FA, b: FB) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        FA: FnOnce() -> RA + Send,
        FB: FnOnce() -> RB + Send,
    {
        if self.threads <= 1 || hardware_threads() <= 1 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let obs = accpar_obs::global();
        if obs.enabled() {
            obs.counter("pool.par_join.calls").inc();
        }
        thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_actually_uses_multiple_workers() {
        // With more items than threads every worker claims at least one
        // item under the striped counter; assert the work all happened.
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        Pool::new(4).par_map(&items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_join_returns_both_results() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let (a, b) = pool.par_join(|| 40 + 2, || "b".to_string());
            assert_eq!(a, 42);
            assert_eq!(b, "b");
        }
    }

    #[test]
    fn split_conserves_the_budget() {
        for threads in 1..=9 {
            let (a, b) = Pool::new(threads).split();
            assert!(a.threads() >= 1 && b.threads() >= 1);
            assert!(a.threads() + b.threads() <= threads.max(2));
        }
        assert_eq!(Pool::new(1).split(), (Pool::new(1), Pool::new(1)));
        assert_eq!(Pool::new(8).split(), (Pool::new(4), Pool::new(4)));
        assert_eq!(Pool::new(5).split(), (Pool::new(3), Pool::new(2)));
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(0).is_serial());
    }

    #[test]
    fn env_override_parses_positive_integers() {
        // Set/unset the variable in one test to avoid races between
        // tests sharing the process environment.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Pool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Pool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Pool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Pool::from_env().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panic bubbles up")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        Pool::new(4).par_map(&items, |i, _| {
            if i == 7 {
                panic!("worker panic bubbles up");
            }
            i
        });
    }
}
