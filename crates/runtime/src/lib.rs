//! A std-only worker pool for the planning engine.
//!
//! The workspace is deliberately dependency-free, so this crate provides
//! the minimal parallel primitives the planner needs on top of
//! [`std::thread::scope`]:
//!
//! * [`Pool::par_map`] — a fork-join map over a slice with
//!   **deterministic result ordering**: results come back in item order
//!   regardless of which worker computed them or when it finished.
//! * [`Pool::par_join`] — run two closures concurrently (the
//!   independent left/right recursion of the hierarchical planner).
//! * [`Pool::split`] — divide a pool between two nested branches so
//!   recursive parallelism never oversubscribes the machine.
//!
//! A pool is just a thread *budget*; threads are spawned per call and
//! joined before the call returns, so no state leaks between calls and
//! borrowed data flows in freely. The budget is a cap, not a demand:
//! physical workers are additionally clamped to the machine's available
//! parallelism, since oversubscribing cores cannot make a
//! deterministically ordered fork-join faster. With a budget of one (or single-item
//! inputs) every primitive degrades to plain serial execution on the
//! calling thread — the planner's serial and parallel paths therefore
//! share one code path and produce bit-identical results by
//! construction.
//!
//! The default budget honors the `ACCPAR_THREADS` environment variable
//! (falling back to [`std::thread::available_parallelism`]):
//!
//! ```
//! use accpar_runtime::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! let (a, b) = pool.par_join(|| 2 + 2, || "concurrently");
//! assert_eq!((a, b), (4, "concurrently"));
//! ```
//!
//! # Cooperative cancellation and deadlines
//!
//! [`Budget`] bounds a computation by wall-clock deadline, by a
//! monotone *nodes-expanded* counter, or by an external [`CancelToken`]
//! — all three compose. Work loops call [`Budget::try_charge`] at their
//! natural unit of progress (the planner charges one node per DP layer
//! row); an unlimited budget reduces to a single `Option` check so the
//! common uncancellable path stays free:
//!
//! ```
//! use accpar_runtime::{Budget, StopReason};
//!
//! let budget = Budget::unlimited().max_nodes(2);
//! assert_eq!(budget.try_charge(1), Ok(()));
//! assert_eq!(budget.try_charge(1), Ok(()));
//! assert_eq!(budget.try_charge(1), Err(StopReason::NodeBudget));
//! ```
//!
//! # Panic isolation
//!
//! [`Pool::try_par_map`] is the fallible sibling of [`Pool::par_map`]:
//! each worker closure runs under [`std::panic::catch_unwind`], a
//! panicking unit is retried with seeded deterministic exponential
//! backoff ([`RetryPolicy`]), and a unit that keeps panicking surfaces
//! as a typed [`WorkerPanic`] instead of unwinding through the pool.
//! Shared pool state lives behind mutexes acquired via
//! [`lock_unpoisoned`], so a panic can never poison the pool for later
//! calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// The machine's available parallelism (1 when undeterminable), cached
/// for the process lifetime.
fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Environment variable overriding the default thread budget.
pub const THREADS_ENV: &str = "ACCPAR_THREADS";

/// A fork-join thread budget (see the [module docs](self)).
///
/// Cheap to copy; carries no OS resources. Threads are scoped to each
/// `par_map`/`par_join` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with the given thread budget (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: every primitive runs serially on the
    /// calling thread.
    #[must_use]
    pub const fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The default pool: `ACCPAR_THREADS` when set to a positive
    /// integer, otherwise the machine's available parallelism (1 when
    /// that cannot be determined).
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        Self::new(threads)
    }

    /// The thread budget.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Whether every primitive will run serially.
    #[must_use]
    pub const fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Splits the budget across two concurrent branches: `(ceil, floor)`
    /// halves, each at least 1. Used by recursive fork-join so the total
    /// live thread count stays within the original budget.
    #[must_use]
    pub const fn split(&self) -> (Pool, Pool) {
        let a = self.threads.div_ceil(2);
        let b = if self.threads / 2 > 1 {
            self.threads / 2
        } else {
            1
        };
        (Pool { threads: a }, Pool { threads: b })
    }

    /// Maps `f` over `items` with up to [`Pool::threads`] workers and
    /// returns the results **in item order**. `f` receives the item's
    /// index alongside the item. Panics in `f` are propagated to the
    /// caller after all workers stop.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        // The budget is an upper bound; physical workers never exceed
        // the machine's parallelism — spawning more threads than cores
        // cannot make the (deterministically ordered) map faster.
        let workers = self.threads.min(items.len()).min(hardware_threads());
        let obs = accpar_obs::global();
        if obs.enabled() {
            obs.counter("pool.par_map.calls").inc();
            obs.counter("pool.par_map.items").add(items.len() as u64);
            // Items beyond the worker count wait in the striped queue.
            obs.histogram("pool.queue_depth")
                .record(items.len().saturating_sub(workers) as u64);
        }
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }

        let next = AtomicUsize::new(0);
        let mut buckets: Vec<Vec<(usize, U)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Merge the per-worker buckets back into item order.
        let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for bucket in &mut buckets {
            for (i, v) in bucket.drain(..) {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Runs `a` and `b` concurrently (serially, `a` first, when the
    /// budget is 1) and returns both results. Panics are propagated.
    pub fn par_join<RA, RB, FA, FB>(&self, a: FA, b: FB) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        FA: FnOnce() -> RA + Send,
        FB: FnOnce() -> RB + Send,
    {
        if self.threads <= 1 || hardware_threads() <= 1 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let obs = accpar_obs::global();
        if obs.enabled() {
            obs.counter("pool.par_join.calls").inc();
        }
        thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// The pool's shared state is plain data (result slots, failure
/// records): a panic mid-update leaves it value-consistent, so the
/// poison flag is noise here — recovering via
/// [`PoisonError::into_inner`] keeps one worker's panic from wedging
/// every later `par_map` call on the same state.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a budgeted computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The nodes-expanded counter exceeded its cap.
    NodeBudget,
    /// An external [`CancelToken`] was triggered.
    Cancelled,
}

impl StopReason {
    /// Stable lowercase label (used in traces and event payloads).
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            StopReason::Deadline => "deadline",
            StopReason::NodeBudget => "node-budget",
            StopReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A shared cancellation flag: clone it, hand one copy to the worker
/// and keep the other to [`cancel`](CancelToken::cancel) from outside.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been triggered.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Deadline checks read the clock only every `DEADLINE_STRIDE`-th
/// charged node: a syscall per DP row would dominate the warm-cache
/// path, and a stride of 16 bounds detection latency to 16 cheap rows.
const DEADLINE_STRIDE: u64 = 16;

/// Construction-time description of a [`Budget`]'s limits.
#[derive(Debug, Clone, Default)]
struct BudgetSpec {
    deadline: Option<Instant>,
    max_nodes: Option<u64>,
    cancel: Option<CancelToken>,
    chaos_node: Option<u64>,
}

#[derive(Debug)]
struct BudgetInner {
    spec: BudgetSpec,
    /// Monotone nodes-expanded counter, shared by every clone.
    nodes: AtomicU64,
    /// Node index at which the chaos hook fires (once); `u64::MAX`
    /// once disarmed.
    chaos_armed: AtomicU64,
}

/// A cooperative execution budget: wall-clock deadline, cap on nodes
/// expanded, external cancellation — any combination, or none.
///
/// Cloning shares the underlying counters, so one budget can be
/// threaded through parallel workers and observed from outside via
/// [`nodes_expanded`](Budget::nodes_expanded). An
/// [`unlimited`](Budget::unlimited) budget carries no allocation and
/// every check on it is a single `Option` test.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl Budget {
    /// A budget with no limits: every check passes, for free.
    #[must_use]
    pub const fn unlimited() -> Self {
        Self { inner: None }
    }

    fn with_spec(spec: BudgetSpec) -> Self {
        let chaos_armed = AtomicU64::new(spec.chaos_node.unwrap_or(u64::MAX));
        Self {
            inner: Some(Arc::new(BudgetInner {
                spec,
                nodes: AtomicU64::new(0),
                chaos_armed,
            })),
        }
    }

    fn update(self, f: impl FnOnce(&mut BudgetSpec)) -> Self {
        let mut spec = match &self.inner {
            Some(inner) => inner.spec.clone(),
            None => BudgetSpec::default(),
        };
        f(&mut spec);
        Self::with_spec(spec)
    }

    /// Adds a wall-clock deadline `after` from now. The counter resets;
    /// apply combinators before handing the budget to workers.
    #[must_use]
    pub fn deadline(self, after: Duration) -> Self {
        self.deadline_at(Instant::now() + after)
    }

    /// Adds a wall-clock deadline at an absolute instant.
    #[must_use]
    pub fn deadline_at(self, at: Instant) -> Self {
        self.update(|s| s.deadline = Some(at))
    }

    /// Caps the number of nodes that may be charged. A cap of 0 makes
    /// the very first charge fail — useful to force the fallback path.
    #[must_use]
    pub fn max_nodes(self, cap: u64) -> Self {
        self.update(|s| s.max_nodes = Some(cap))
    }

    /// Attaches an external cancellation token (cloned; cancel the
    /// original to stop the work).
    #[must_use]
    pub fn cancel_token(self, token: &CancelToken) -> Self {
        self.update(|s| s.cancel = Some(token.clone()))
    }

    /// Test/chaos hook: panic (once) inside whichever worker charges
    /// the `node`-th node. Exercises the pool's panic isolation without
    /// instrumenting the cost model. Deterministic under serial
    /// execution; under parallel execution the panicking worker varies
    /// but exactly one panic fires.
    #[must_use]
    pub fn chaos_panic_at_node(self, node: u64) -> Self {
        self.update(|s| s.chaos_node = Some(node))
    }

    /// Whether this budget can never stop work (constructed via
    /// [`unlimited`](Budget::unlimited) with no combinators applied).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// A stable *class* descriptor for content-addressed caching: which
    /// limit kinds are armed, plus the node cap (the only limit whose
    /// value is reproducible across processes — deadlines are absolute
    /// [`Instant`]s and cancel tokens are runtime handles, so only
    /// their presence is encoded). Two budgets in the same class stop
    /// the search for the same reasons, which is what a plan-cache key
    /// needs; the exact wall-clock remaining is deliberately excluded.
    #[must_use]
    pub fn class_bits(&self) -> u64 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let s = &inner.spec;
        let mut bits = 1u64; // bounded
        if s.deadline.is_some() {
            bits |= 1 << 1;
        }
        if s.cancel.is_some() {
            bits |= 1 << 2;
        }
        if let Some(cap) = s.max_nodes {
            bits |= 1 << 3;
            bits ^= cap.rotate_left(8);
        }
        bits
    }

    /// Nodes charged so far across all clones.
    #[must_use]
    pub fn nodes_expanded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.nodes.load(Ordering::Relaxed))
    }

    /// Charges `rows` nodes and reports whether work may continue.
    ///
    /// Cancellation is checked on every call; the node cap on every
    /// call; the deadline only when the counter crosses a
    /// `DEADLINE_STRIDE` boundary (and on the first charge), keeping
    /// the per-row cost to an atomic add. Once a limit trips, every
    /// subsequent charge keeps failing (the counter is monotone and the
    /// clock does not run backwards).
    pub fn try_charge(&self, rows: u64) -> Result<(), StopReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(token) = &inner.spec.cancel {
            if token.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
        }
        let before = inner.nodes.fetch_add(rows, Ordering::Relaxed);
        let after = before + rows;
        let chaos = inner.chaos_armed.load(Ordering::Relaxed);
        if after >= chaos
            && inner
                .chaos_armed
                .compare_exchange(chaos, u64::MAX, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            panic!("chaos: injected worker panic at node {chaos}");
        }
        if let Some(cap) = inner.spec.max_nodes {
            if after > cap {
                return Err(StopReason::NodeBudget);
            }
        }
        if let Some(deadline) = inner.spec.deadline {
            let crossed = before / DEADLINE_STRIDE != after / DEADLINE_STRIDE || before == 0;
            if crossed && Instant::now() >= deadline {
                return Err(StopReason::Deadline);
            }
        }
        Ok(())
    }

    /// Checks cancellation and the deadline without charging nodes —
    /// for loops whose progress unit is already paid for (e.g. the DP
    /// trunk scan over a cost table that was charged row by row).
    pub fn check(&self) -> Result<(), StopReason> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(token) = &inner.spec.cancel {
            if token.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = inner.spec.deadline {
            if Instant::now() >= deadline {
                return Err(StopReason::Deadline);
            }
        }
        Ok(())
    }
}

/// Bounded, seeded, deterministic exponential backoff for retrying a
/// panicked work unit.
///
/// `attempts` counts *re*-tries: a unit runs `attempts + 1` times
/// before its failure becomes a [`WorkerPanic`]. Backoff for (unit,
/// attempt) is a pure function of the seed, so retry schedules are
/// reproducible run to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure.
    pub attempts: u32,
    /// Base backoff in microseconds; doubles per attempt.
    pub base_backoff_us: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 2,
            base_backoff_us: 50,
            seed: 0xACC9A7,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first panic is final.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            attempts: 0,
            base_backoff_us: 0,
            seed: 0,
        }
    }

    /// Deterministic backoff before retry number `attempt` (1-based) of
    /// `unit`: exponential in the attempt with up to +50% seeded jitter.
    #[must_use]
    pub fn backoff(&self, unit: usize, attempt: u32) -> Duration {
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(10));
        if exp == 0 {
            return Duration::ZERO;
        }
        let jitter = splitmix64(self.seed ^ (unit as u64) ^ (u64::from(attempt) << 32)) % exp;
        Duration::from_micros(exp + jitter / 2)
    }
}

/// SplitMix64: tiny, seedable, and good enough for backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A work unit kept panicking through every retry attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// Total attempts made (retries + 1).
    pub attempts: u32,
    /// Panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {} after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl Pool {
    /// Fallible [`par_map`](Pool::par_map): same deterministic item
    /// ordering, but each worker closure runs under `catch_unwind`. A
    /// panicking unit is retried per `retry` (seeded deterministic
    /// exponential backoff); a unit that exhausts its attempts turns
    /// the whole map into `Err(WorkerPanic)` after in-flight units
    /// finish. Counters (`pool.panics_caught`, `pool.panics_recovered`,
    /// `pool.retries`) are recorded on `obs`.
    ///
    /// Shared result state lives behind mutexes locked via
    /// [`lock_unpoisoned`], so even an uncaught panic path cannot
    /// poison the pool for subsequent calls.
    pub fn try_par_map<T, U, F>(
        &self,
        items: &[T],
        retry: &RetryPolicy,
        obs: &accpar_obs::Obs,
        f: F,
    ) -> Result<Vec<U>, WorkerPanic>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let workers = self.threads.min(items.len()).min(hardware_threads());
        if obs.enabled() {
            obs.counter("pool.par_map.calls").inc();
            obs.counter("pool.par_map.items").add(items.len() as u64);
            obs.histogram("pool.queue_depth")
                .record(items.len().saturating_sub(workers) as u64);
        }

        let attempt_item = |i: usize| -> Result<U, WorkerPanic> {
            let mut message = String::new();
            for attempt in 0..=retry.attempts {
                if attempt > 0 {
                    if obs.enabled() {
                        obs.counter("pool.retries").inc();
                    }
                    thread::sleep(retry.backoff(i, attempt));
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(v) => {
                        if attempt > 0 && obs.enabled() {
                            obs.counter("pool.panics_recovered").inc();
                        }
                        return Ok(v);
                    }
                    Err(payload) => {
                        if obs.enabled() {
                            obs.counter("pool.panics_caught").inc();
                        }
                        message = panic_message(payload.as_ref());
                    }
                }
            }
            Err(WorkerPanic {
                index: i,
                attempts: retry.attempts + 1,
                message,
            })
        };

        if workers <= 1 {
            let mut out = Vec::with_capacity(items.len());
            for i in 0..items.len() {
                out.push(attempt_item(i)?);
            }
            return Ok(out);
        }

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
        let failure: Mutex<Option<WorkerPanic>> = Mutex::new(None);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            if lock_unpoisoned(&failure).is_some() {
                                break;
                            }
                            match attempt_item(i) {
                                Ok(v) => local.push((i, v)),
                                Err(e) => {
                                    let mut first = lock_unpoisoned(&failure);
                                    if first.is_none() {
                                        *first = Some(e);
                                    }
                                    break;
                                }
                            }
                        }
                        let mut merged = lock_unpoisoned(&slots);
                        for (i, v) in local {
                            merged[i] = Some(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    // Worker bodies catch closure panics, so this is
                    // unreachable in practice; don't swallow it if the
                    // impossible happens.
                    std::panic::resume_unwind(payload);
                }
            }
        });

        if let Some(e) = lock_unpoisoned(&failure).take() {
            return Err(e);
        }
        let merged = slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        Ok(merged
            .into_iter()
            .map(|s| s.expect("every index was claimed exactly once"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_actually_uses_multiple_workers() {
        // With more items than threads every worker claims at least one
        // item under the striped counter; assert the work all happened.
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        Pool::new(4).par_map(&items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_join_returns_both_results() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let (a, b) = pool.par_join(|| 40 + 2, || "b".to_string());
            assert_eq!(a, 42);
            assert_eq!(b, "b");
        }
    }

    #[test]
    fn split_conserves_the_budget() {
        for threads in 1..=9 {
            let (a, b) = Pool::new(threads).split();
            assert!(a.threads() >= 1 && b.threads() >= 1);
            assert!(a.threads() + b.threads() <= threads.max(2));
        }
        assert_eq!(Pool::new(1).split(), (Pool::new(1), Pool::new(1)));
        assert_eq!(Pool::new(8).split(), (Pool::new(4), Pool::new(4)));
        assert_eq!(Pool::new(5).split(), (Pool::new(3), Pool::new(2)));
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(0).is_serial());
    }

    #[test]
    fn env_override_parses_positive_integers() {
        // Set/unset the variable in one test to avoid races between
        // tests sharing the process environment.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Pool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Pool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Pool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Pool::from_env().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panic bubbles up")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        Pool::new(4).par_map(&items, |i, _| {
            if i == 7 {
                panic!("worker panic bubbles up");
            }
            i
        });
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        assert_eq!(budget.try_charge(1_000_000), Ok(()));
        assert_eq!(budget.check(), Ok(()));
        assert_eq!(budget.nodes_expanded(), 0);
    }

    #[test]
    fn node_budget_trips_exactly_at_the_cap() {
        let budget = Budget::unlimited().max_nodes(3);
        assert_eq!(budget.try_charge(1), Ok(()));
        assert_eq!(budget.try_charge(2), Ok(()));
        assert_eq!(budget.try_charge(1), Err(StopReason::NodeBudget));
        // The counter stays monotone: later charges keep failing.
        assert_eq!(budget.try_charge(1), Err(StopReason::NodeBudget));
        assert!(budget.nodes_expanded() >= 3);

        let zero = Budget::unlimited().max_nodes(0);
        assert_eq!(zero.try_charge(1), Err(StopReason::NodeBudget));
    }

    #[test]
    fn expired_deadline_is_detected_on_the_first_charge() {
        let budget = Budget::unlimited().deadline(Duration::ZERO);
        assert_eq!(budget.try_charge(1), Err(StopReason::Deadline));
        assert_eq!(budget.check(), Err(StopReason::Deadline));
        // A stride-width bulk charge also crosses the check boundary.
        let bulk = Budget::unlimited().deadline(Duration::ZERO);
        assert_eq!(bulk.try_charge(DEADLINE_STRIDE * 2), Err(StopReason::Deadline));
    }

    #[test]
    fn cancel_token_stops_all_clones() {
        let token = CancelToken::new();
        let budget = Budget::unlimited().cancel_token(&token);
        let clone = budget.clone();
        assert_eq!(budget.try_charge(1), Ok(()));
        token.cancel();
        assert_eq!(budget.try_charge(1), Err(StopReason::Cancelled));
        assert_eq!(clone.check(), Err(StopReason::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn chaos_hook_fires_exactly_once() {
        let budget = Budget::unlimited().chaos_panic_at_node(2);
        assert_eq!(budget.try_charge(1), Ok(()));
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| budget.try_charge(1)));
        assert!(hit.is_err(), "second charge crosses node 2 and panics");
        // Disarmed after firing: the same budget keeps working.
        assert_eq!(budget.try_charge(10), Ok(()));
    }

    #[test]
    fn retry_backoff_is_deterministic_and_grows() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(3, 1), policy.backoff(3, 1));
        assert_ne!(policy.backoff(3, 1), policy.backoff(4, 1));
        assert!(policy.backoff(0, 3) >= policy.backoff(0, 1));
        assert_eq!(RetryPolicy::none().backoff(0, 1), Duration::ZERO);
    }

    #[test]
    fn try_par_map_matches_par_map_on_the_happy_path() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let out = pool
                .try_par_map(&items, &RetryPolicy::none(), &accpar_obs::Obs::off(), |_, &x| x * 3)
                .expect("no panics");
            assert_eq!(out, pool.par_map(&items, |_, &x| x * 3));
        }
    }

    #[test]
    fn try_par_map_retries_a_transient_panic() {
        let failures = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4] {
            failures.store(0, Ordering::Relaxed);
            let policy = RetryPolicy {
                base_backoff_us: 1,
                ..RetryPolicy::default()
            };
            let out = Pool::new(threads)
                .try_par_map(&items, &policy, &accpar_obs::Obs::off(), |i, &x| {
                    if i == 5 && failures.fetch_add(1, Ordering::Relaxed) == 0 {
                        panic!("transient");
                    }
                    x + 1
                })
                .expect("transient panic is retried");
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
            assert_eq!(failures.load(Ordering::Relaxed), 2, "one panic + one retry");
        }
    }

    #[test]
    fn try_par_map_reports_a_persistent_panic_and_leaves_the_pool_usable() {
        let items: Vec<usize> = (0..16).collect();
        let pool = Pool::new(4);
        let policy = RetryPolicy {
            attempts: 1,
            base_backoff_us: 1,
            seed: 7,
        };
        let err = pool
            .try_par_map(&items, &policy, &accpar_obs::Obs::off(), |i, &x| {
                if i == 7 {
                    panic!("persistent failure");
                }
                x
            })
            .expect_err("item 7 always panics");
        assert_eq!(err.index, 7);
        assert_eq!(err.attempts, 2);
        assert!(err.message.contains("persistent failure"));
        // Regression: the panic must not poison pool state for later
        // calls — both map flavors still work on the same pool value.
        assert_eq!(pool.par_map(&items, |_, &x| x), items);
        assert_eq!(
            pool.try_par_map(&items, &RetryPolicy::none(), &accpar_obs::Obs::off(), |_, &x| x),
            Ok(items.clone())
        );
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let shared = Mutex::new(vec![1, 2, 3]);
        let poison = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = shared.lock().expect("first lock");
            panic!("poison the mutex");
        }));
        assert!(poison.is_err());
        assert!(shared.is_poisoned(), "the mutex really was poisoned");
        let mut guard = lock_unpoisoned(&shared);
        guard.push(4);
        assert_eq!(*guard, vec![1, 2, 3, 4]);
    }
}
