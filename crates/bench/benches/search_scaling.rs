//! Measures the O(N) layer-wise DP against network depth — the paper's
//! complexity claim for the search itself (§5.1: O(3^N) brute force
//! reduced to linear).

use accpar_bench::harness::{bench, group};
use accpar_core::{LevelSearcher, SearchConfig};
use accpar_cost::{CostConfig, CostModel, PairEnv};
use accpar_dnn::NetworkBuilder;
use accpar_hw::{AcceleratorArray, GroupTree};
use accpar_tensor::FeatureShape;
use std::hint::black_box;

fn chain(n: usize) -> accpar_dnn::Network {
    let mut b = NetworkBuilder::new("chain", FeatureShape::fc(64, 256));
    for i in 0..n {
        b = b.linear(format!("fc{i}"), 256, 256);
    }
    b.build().unwrap()
}

fn main() {
    let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let config = SearchConfig::accpar();

    group("search_scaling");
    for n in [8usize, 32, 128, 512] {
        let net = chain(n);
        let view = net.train_view().unwrap();
        let searcher = LevelSearcher::new(&view, &model, &config, &env, None).unwrap();
        bench(&format!("layers/{n}"), || black_box(searcher.search()));
    }
}
