//! Ablation: the faithful HyPar baseline (linearized, single top-level
//! plan) versus the strengthened scale-aware multi-path variant that
//! borrows AccPar's §5.2 machinery. Measures planning time; the quality
//! comparison is printed by `--bin ablations`.

use accpar_bench::harness::{bench, group};
use accpar_core::baselines::{hypar_multipath_plan, hypar_plan};
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, GroupTree};
use std::hint::black_box;

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let tree = GroupTree::bisect(&array, 8).unwrap();
    let net = zoo::resnet18(512).unwrap();
    let view = net.train_view().unwrap();

    group("hypar_variants");
    bench("faithful", || black_box(hypar_plan(&view, &tree).unwrap()));
    bench("multipath_scale_aware", || {
        black_box(hypar_multipath_plan(&view, &tree).unwrap())
    });
}
