//! Ablation: the faithful HyPar baseline (linearized, single top-level
//! plan) versus the strengthened scale-aware multi-path variant that
//! borrows AccPar's §5.2 machinery. Measures planning time; the quality
//! comparison is printed by `--bin ablations`.

use accpar_core::baselines::{hypar_multipath_plan, hypar_plan};
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, GroupTree};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let tree = GroupTree::bisect(&array, 8).unwrap();
    let net = zoo::resnet18(512).unwrap();
    let view = net.train_view().unwrap();

    let mut group = c.benchmark_group("hypar_variants");
    group.sample_size(10);
    group.bench_function("faithful", |b| {
        b.iter(|| black_box(hypar_plan(&view, &tree).unwrap()));
    });
    group.bench_function("multipath_scale_aware", |b| {
        b.iter(|| black_box(hypar_multipath_plan(&view, &tree).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
