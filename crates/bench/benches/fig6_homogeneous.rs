//! Bench regenerating Figure 6's data points on the homogeneous
//! 128x TPU-v3 array.

use accpar_bench::harness::{bench, group};
use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::SimConfig;
use std::hint::black_box;

fn main() {
    let array = AcceleratorArray::homogeneous_tpu_v3(128);
    group("fig6");
    for name in ["alexnet", "resnet18"] {
        let net = zoo::by_name(name, 512).unwrap();
        let planner = Planner::builder(&net, &array).sim_config(SimConfig::default()).build().unwrap();
        bench(&format!("plan_all/{name}"), || {
            for s in Strategy::ALL {
                black_box(planner.plan(s).unwrap());
            }
        });
    }
}
