//! Measures the two simulator backends against each other: the
//! bulk-synchronous lockstep executor and the dependency-driven
//! discrete-event scheduler.

use accpar_bench::harness::{bench, group};
use accpar_core::baselines::data_parallel_plan;
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, GroupTree};
use accpar_sim::{simulate_des, simulate_des_in, DesArena, SimConfig, Simulator};
use std::hint::black_box;

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let tree = GroupTree::bisect(&array, 8).unwrap();
    let net = zoo::resnet18(512).unwrap();
    let view = net.train_view().unwrap();
    let plan = data_parallel_plan(&view, 8);
    let config = SimConfig::default();

    group("backends");
    bench("bsp/resnet18_h8", || {
        black_box(Simulator::new(config).simulate(&view, &plan, &tree, None).unwrap())
    });
    bench("des/resnet18_h8", || {
        black_box(simulate_des(&config, &view, &plan, &tree, None).unwrap())
    });
    // The sweep shape: one arena amortized across simulations, so the
    // steady-state iteration allocates nothing.
    let mut arena = DesArena::new();
    bench("des_arena_reuse/resnet18_h8", || {
        black_box(simulate_des_in(&mut arena, &config, &view, &plan, &tree, None).unwrap())
    });
}
