//! Ablation: the paper's Eq. 10 linear ratio solver versus the
//! exact-balance variant that honors Table 4's ratio-independent
//! intra-layer term (see DESIGN.md). Measures solver runtime; the
//! quality comparison is printed by `--bin ablations`.

use accpar_bench::harness::{bench, group};
use accpar_cost::{CostConfig, CostModel, PairEnv, RatioSolver};
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, GroupTree};
use accpar_partition::{PartitionType, ShardScales};
use std::hint::black_box;

fn main() {
    let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(128, 128), 1).unwrap();
    let env = PairEnv::from_node(tree.root()).unwrap();
    let model = CostModel::new(CostConfig::default());
    let net = zoo::alexnet(512).unwrap();
    let view = net.train_view().unwrap();
    let layers: Vec<_> = view.layers().cloned().collect();

    group("ratio_solver");
    for (name, solver) in [
        ("paper_linear", RatioSolver::PaperLinear),
        ("balanced_exact", RatioSolver::BalancedExact),
    ] {
        bench(name, || {
            for layer in &layers {
                for t in PartitionType::ALL {
                    black_box(solver.solve(&model, layer, t, &env, ShardScales::full()));
                }
            }
        });
    }
}
