//! Bench regenerating Figure 7's data: the AccPar hierarchical
//! plan for AlexNet at 7 levels, batch 128.

use accpar_bench::figure7;
use accpar_bench::harness::{bench, group};
use std::hint::black_box;

fn main() {
    group("fig7");
    bench("alexnet_h7_type_histogram", || black_box(figure7()));
}
