//! Criterion bench regenerating Figure 7's data: the AccPar hierarchical
//! plan for AlexNet at 7 levels, batch 128.

use accpar_bench::figure7;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("alexnet_h7_type_histogram", |b| {
        b.iter(|| black_box(figure7()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
