//! Criterion bench regenerating Figure 8's data points: the VGG-19
//! hierarchy sweep at representative depths.

use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let net = zoo::vgg19(512).unwrap();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for h in [2usize, 5, 9] {
        let planner = Planner::new(&net, &array)
            .with_levels(h)
            .with_sim_config(SimConfig::default());
        group.bench_function(format!("vgg19/h{h}"), |b| {
            b.iter(|| black_box(planner.plan(Strategy::AccPar).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
