//! Bench regenerating Figure 8's data points: the VGG-19
//! hierarchy sweep at representative depths.

use accpar_bench::harness::{bench, group};
use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::SimConfig;
use std::hint::black_box;

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let net = zoo::vgg19(512).unwrap();
    group("fig8");
    for h in [2usize, 5, 9] {
        let planner = Planner::builder(&net, &array)
            .levels(h)
            .sim_config(SimConfig::default()).build().unwrap();
        bench(&format!("vgg19/h{h}"), || {
            black_box(planner.plan(Strategy::AccPar).unwrap())
        });
    }
}
