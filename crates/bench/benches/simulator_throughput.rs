//! Measures the trace-based simulator's throughput on the largest
//! evaluation network.

use accpar_bench::harness::{bench, group};
use accpar_core::baselines::data_parallel_plan;
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, GroupTree};
use accpar_sim::{SimConfig, Simulator};
use std::hint::black_box;

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let tree = GroupTree::bisect(&array, 8).unwrap();
    let net = zoo::resnet50(512).unwrap();
    let view = net.train_view().unwrap();
    let plan = data_parallel_plan(&view, 8);
    let sim = Simulator::new(SimConfig::default());

    group("simulator");
    bench("resnet50_h8_256_boards", || {
        black_box(sim.simulate(&view, &plan, &tree, None).unwrap())
    });
}
