//! Bench regenerating Figure 5's data points: time to plan and
//! simulate each scheme on the heterogeneous array. The printed figure
//! itself comes from `--bin fig5`; this bench tracks the harness cost.

use accpar_bench::harness::{bench, group};
use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::SimConfig;
use std::hint::black_box;

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    group("fig5");
    for name in ["lenet", "alexnet", "vgg19", "resnet50"] {
        let net = zoo::by_name(name, 512).unwrap();
        let planner = Planner::builder(&net, &array).sim_config(SimConfig::default()).build().unwrap();
        bench(&format!("plan_all/{name}"), || {
            for s in Strategy::ALL {
                black_box(planner.plan(s).unwrap());
            }
        });
    }
}
