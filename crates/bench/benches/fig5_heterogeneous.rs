//! Criterion bench regenerating Figure 5's data points: time to plan and
//! simulate each scheme on the heterogeneous array. The printed figure
//! itself comes from `--bin fig5`; this bench tracks the harness cost.

use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for name in ["lenet", "alexnet", "vgg19", "resnet50"] {
        let net = zoo::by_name(name, 512).unwrap();
        let planner = Planner::new(&net, &array).with_sim_config(SimConfig::default());
        group.bench_function(format!("plan_all/{name}"), |b| {
            b.iter(|| {
                for s in Strategy::ALL {
                    black_box(planner.plan(s).unwrap());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
