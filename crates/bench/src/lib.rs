//! Experiment harness for the AccPar reproduction: one entry point per
//! table and figure of the paper's evaluation (§6).
//!
//! The binaries (`fig5`, `fig6`, `fig7`, `fig8`, `tables`, `ablations`,
//! `experiments`, `robustness`, `chaos`) print the same rows/series the
//! paper reports — plus the fault-injection ablation and the seeded
//! health-timeline chaos harness; the benches in `benches/` measure the
//! implementation itself (search and simulator throughput) and
//! regenerate the figure data under timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod json;
pub mod render;
pub mod robustness;
pub mod svg;
pub mod tables;

pub use experiments::{
    figure5, figure6, figure7, figure8, geomean, speedup_rows, transformer_speedups, Figure7,
    Fig8Row, SpeedupRow,
    PAPER_BATCH,
};
