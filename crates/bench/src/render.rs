//! Plain-text rendering of experiment results, shared by the binaries.

use crate::experiments::{geomean, Fig8Row, Figure7, SpeedupRow};
use accpar_core::Strategy;
use std::fmt::Write as _;

/// Renders a speedup table (Figures 5/6 style) with per-strategy
/// geometric means, optionally annotated with the paper's reported
/// geomeans.
#[must_use]
pub fn speedup_table(title: &str, rows: &[SpeedupRow], paper_geomeans: Option<[f64; 4]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<10}", "network");
    for s in Strategy::ALL {
        let _ = write!(out, "{:>10}", s.to_string());
    }
    let _ = writeln!(out, "   (speedup over DP; step ms in parentheses)");
    for row in rows {
        let _ = write!(out, "{:<10}", row.network);
        for i in 0..4 {
            let _ = write!(out, "{:>9.2}x", row.speedups[i]);
        }
        let _ = write!(out, "   (");
        for (i, ms) in row.step_ms.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{ms:.2}");
        }
        let _ = writeln!(out, ")");
    }
    let _ = write!(out, "{:<10}", "geomean");
    for i in 0..4 {
        let _ = write!(out, "{:>9.2}x", geomean(rows, i));
    }
    let _ = writeln!(out);
    if let Some(paper) = paper_geomeans {
        let _ = write!(out, "{:<10}", "paper");
        for p in paper {
            let _ = write!(out, "{p:>9.2}x");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the Figure 7 per-layer type-selection histogram.
#[must_use]
pub fn figure7_table(fig: &Figure7) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — partition types selected for AlexNet (h=7, batch 128)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>9}   selection share",
        "layer", "Type-I", "Type-II", "Type-III"
    );
    for (name, counts) in fig.layer_names.iter().zip(&fig.counts) {
        let total: usize = counts.iter().sum();
        let bar: String = {
            let width = 24usize;
            let mut bar = String::new();
            for (i, ch) in ['I', '2', '3'].iter().enumerate() {
                let n = (counts[i] * width + total / 2) / total.max(1);
                bar.extend(std::iter::repeat_n(*ch, n));
            }
            bar
        };
        let _ = writeln!(
            out,
            "{name:<8} {:>8} {:>8} {:>9}   {bar}",
            counts[0], counts[1], counts[2]
        );
    }
    let _ = writeln!(out, "top-level plan: {}", fig.top_level);
    out
}

/// Renders the Figure 8 hierarchy sweep.
#[must_use]
pub fn figure8_table(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — VGG-19 speedup vs hierarchy level (heterogeneous array)"
    );
    let _ = write!(out, "{:<4}", "h");
    for s in Strategy::ALL {
        let _ = write!(out, "{:>10}", s.to_string());
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:<4}", row.levels);
        for v in row.speedups {
            let _ = write!(out, "{v:>9.2}x");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SpeedupRow> {
        vec![SpeedupRow {
            network: "toy".into(),
            step_ms: [4.0, 2.0, 2.0, 1.0],
            speedups: [1.0, 2.0, 2.0, 4.0],
        }]
    }

    #[test]
    fn speedup_table_contains_geomean_and_paper_row() {
        let s = speedup_table("t", &rows(), Some([1.0, 2.98, 3.78, 6.30]));
        assert!(s.contains("geomean"));
        assert!(s.contains("paper"));
        assert!(s.contains("4.00x"));
        assert!(s.contains("6.30x"));
    }

    #[test]
    fn figure8_table_lists_levels() {
        let s = figure8_table(&[Fig8Row {
            levels: 3,
            speedups: [1.0, 2.0, 3.0, 4.0],
        }]);
        assert!(s.lines().any(|l| l.starts_with("3 ")));
    }

    #[test]
    fn figure7_bar_width_is_bounded() {
        let fig = Figure7 {
            layer_names: vec!["cv1".into()],
            counts: vec![[3, 2, 2]],
            top_level: "I".into(),
        };
        let s = figure7_table(&fig);
        let bar_line = s.lines().find(|l| l.starts_with("cv1")).unwrap();
        assert!(bar_line.contains('I'));
    }
}
