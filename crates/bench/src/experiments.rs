//! The evaluation experiments of §6: speedups on heterogeneous and
//! homogeneous arrays (Figures 5 and 6), the per-layer partition types of
//! AlexNet (Figure 7), and the hierarchy-level scalability sweep on
//! VGG-19 (Figure 8).

use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::SimConfig;

/// The paper's mini-batch size (§6.1).
pub const PAPER_BATCH: usize = 512;

/// Speedups of the four schemes on one network, normalized to data
/// parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Network name.
    pub network: String,
    /// Simulated step time in milliseconds, in [`Strategy::ALL`] order.
    pub step_ms: [f64; 4],
    /// Speedup over the DP baseline, in [`Strategy::ALL`] order.
    pub speedups: [f64; 4],
}

/// Geometric mean of one strategy column over a set of rows.
///
/// # Panics
///
/// Panics if `rows` is empty.
#[must_use]
pub fn geomean(rows: &[SpeedupRow], strategy: usize) -> f64 {
    assert!(!rows.is_empty(), "geomean needs at least one row");
    let log_sum: f64 = rows.iter().map(|r| r.speedups[strategy].ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

/// Plans and simulates all four schemes for every named network on the
/// given array, in parallel across networks.
///
/// `levels` overrides the hierarchy depth (default: bisect to single
/// boards).
///
/// # Panics
///
/// Panics if a zoo network fails to build or plan — both indicate a bug,
/// not an input error.
#[must_use]
pub fn speedup_rows(
    array: &AcceleratorArray,
    batch: usize,
    levels: Option<usize>,
    networks: &[&str],
) -> Vec<SpeedupRow> {
    let mut rows: Vec<Option<SpeedupRow>> = vec![None; networks.len()];
    std::thread::scope(|scope| {
        for (slot, name) in rows.iter_mut().zip(networks) {
            scope.spawn(move || {
                *slot = Some(run_network(array, batch, levels, name));
            });
        }
    });
    rows.into_iter().map(|r| r.expect("filled")).collect()
}

fn run_network(
    array: &AcceleratorArray,
    batch: usize,
    levels: Option<usize>,
    name: &str,
) -> SpeedupRow {
    let net = zoo::by_name(name, batch).expect("known zoo network");
    let mut builder = Planner::builder(&net, array).sim_config(SimConfig::default());
    if let Some(l) = levels {
        builder = builder.levels(l);
    }
    let planner = builder.build().expect("zoo networks configure cleanly");
    let mut step_ms = [0.0f64; 4];
    for (i, &strategy) in Strategy::ALL.iter().enumerate() {
        let planned = planner.plan(strategy).expect("zoo networks plan cleanly");
        step_ms[i] = planned.modeled_cost() * 1e3;
    }
    let dp = step_ms[0];
    SpeedupRow {
        network: name.to_owned(),
        step_ms,
        speedups: [dp / step_ms[0], dp / step_ms[1], dp / step_ms[2], dp / step_ms[3]],
    }
}

/// The paper's nine CNN evaluation networks — the first nine entries of
/// [`zoo::EVALUATION_NAMES`]; the remainder are the transformer
/// extension covered by [`transformer_speedups`].
const PAPER_NETWORKS: usize = 9;

/// **Figure 5**: speedups on the heterogeneous array of 128 TPU-v2 +
/// 128 TPU-v3 boards, batch 512, the paper's nine evaluation networks.
#[must_use]
pub fn figure5() -> Vec<SpeedupRow> {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    speedup_rows(&array, PAPER_BATCH, None, &zoo::EVALUATION_NAMES[..PAPER_NETWORKS])
}

/// **Figure 6**: speedups on the homogeneous array of 128 TPU-v3 boards,
/// batch 512, the paper's nine evaluation networks.
#[must_use]
pub fn figure6() -> Vec<SpeedupRow> {
    let array = AcceleratorArray::homogeneous_tpu_v3(128);
    speedup_rows(&array, PAPER_BATCH, None, &zoo::EVALUATION_NAMES[..PAPER_NETWORKS])
}

/// **Transformer extension**: the Figure 5 protocol (heterogeneous
/// 128+128 array, batch 512) on the transformer zoo. Not a paper figure
/// — the paper evaluates CNNs only — but the identical pipeline: plan
/// under all four schemes, simulate, normalize to data parallelism.
#[must_use]
pub fn transformer_speedups() -> Vec<SpeedupRow> {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    speedup_rows(&array, PAPER_BATCH, None, &zoo::EVALUATION_NAMES[PAPER_NETWORKS..])
}

/// **Figure 7** data: for each weighted AlexNet layer, how many of the
/// hierarchy's bisections selected each partition type.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure7 {
    /// Weighted-layer names (`cv1`…`cv5`, `fc1`…`fc3`).
    pub layer_names: Vec<String>,
    /// Per layer: selections of `[Type-I, Type-II, Type-III]` summed over
    /// all tree nodes.
    pub counts: Vec<[usize; 3]>,
    /// The top-level plan's type string.
    pub top_level: String,
}

/// **Figure 7**: the partition types AccPar selects for AlexNet's
/// weighted layers with 7 hierarchy levels and batch 128 (§6.3).
///
/// # Panics
///
/// Panics if planning fails (indicates a bug).
#[must_use]
pub fn figure7() -> Figure7 {
    let net = zoo::alexnet(128).expect("alexnet builds");
    let array = AcceleratorArray::homogeneous_tpu_v3(128);
    let planned = Planner::builder(&net, &array)
        .levels(7)
        .build()
        .expect("alexnet configures cleanly")
        .plan(Strategy::AccPar)
        .expect("alexnet plans cleanly");
    let view = net.train_view().expect("alexnet has weighted layers");
    let mut layers: Vec<_> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    Figure7 {
        layer_names: layers.iter().map(|l| l.name().to_owned()).collect(),
        counts: planned.plan().per_layer_type_counts(),
        top_level: planned.plan().plan().type_string(),
    }
}

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Hierarchy level `h`.
    pub levels: usize,
    /// Speedup over DP at the same `h`, in [`Strategy::ALL`] order.
    pub speedups: [f64; 4],
}

/// **Figure 8**: speedups of the four schemes on VGG-19 over the
/// heterogeneous array as the partitioning hierarchy deepens
/// (`h = 2..=9`; levels beyond 8 split boards into core groups).
#[must_use]
pub fn figure8() -> Vec<Fig8Row> {
    figure8_range(2, 9)
}

/// The Figure 8 sweep over a custom hierarchy range.
#[must_use]
pub fn figure8_range(min_levels: usize, max_levels: usize) -> Vec<Fig8Row> {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);
    let hs: Vec<usize> = (min_levels..=max_levels).collect();
    let mut rows: Vec<Option<Fig8Row>> = vec![None; hs.len()];
    std::thread::scope(|scope| {
        for (slot, &h) in rows.iter_mut().zip(&hs) {
            let array = &array;
            scope.spawn(move || {
                let row = run_network(array, PAPER_BATCH, Some(h), "vgg19");
                *slot = Some(Fig8Row {
                    levels: h,
                    speedups: row.speedups,
                });
            });
        }
    });
    rows.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rows_normalize_to_dp() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let rows = speedup_rows(&array, 64, Some(2), &["lenet", "alexnet"]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!((row.speedups[0] - 1.0).abs() < 1e-12, "{row:?}");
            assert!(row.step_ms.iter().all(|&t| t > 0.0));
        }
    }

    #[test]
    fn geomean_of_identity_is_one() {
        let rows = vec![
            SpeedupRow {
                network: "a".into(),
                step_ms: [1.0; 4],
                speedups: [1.0, 2.0, 4.0, 8.0],
            },
            SpeedupRow {
                network: "b".into(),
                step_ms: [1.0; 4],
                speedups: [1.0, 8.0, 4.0, 2.0],
            },
        ];
        assert!((geomean(&rows, 0) - 1.0).abs() < 1e-12);
        assert!((geomean(&rows, 1) - 4.0).abs() < 1e-12);
        assert!((geomean(&rows, 3) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn figure8_small_range_is_monotone_in_h_for_accpar() {
        // Tiny smoke version of Figure 8: AccPar's speedup should not
        // collapse as h grows in the small range.
        let rows = figure8_range(2, 3);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.speedups[3] >= 1.0, "{row:?}");
        }
    }
}
