//! Self-contained SVG rendering of the paper's figures — no plotting
//! dependencies, just strings. `--bin figures` writes the files.
//!
//! Three chart shapes cover the evaluation: grouped bars (Figures 5
//! and 6), a multi-series line chart (Figure 8) and a stacked
//! type-selection histogram (Figure 7).

use crate::experiments::{Fig8Row, Figure7, SpeedupRow};
use std::fmt::Write as _;

const WIDTH: f64 = 900.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_B: f64 = 60.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_R: f64 = 20.0;

/// One color per strategy, DP/OWT/HyPar/AccPar.
const COLORS: [&str; 4] = ["#9aa0a6", "#f2a03d", "#4f9bd9", "#c3423f"];
const STRATEGY_NAMES: [&str; 4] = ["DP", "OWT", "HyPar", "AccPar"];

fn header(title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    let _ = writeln!(
        s,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = writeln!(
        s,
        r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
        WIDTH / 2.0,
        escape(title)
    );
    s
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn legend(out: &mut String, x: f64, y: f64) {
    for (i, name) in STRATEGY_NAMES.iter().enumerate() {
        let lx = x + i as f64 * 90.0;
        let _ = writeln!(
            out,
            r#"<rect x="{lx}" y="{y}" width="12" height="12" fill="{}"/>"#,
            COLORS[i]
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{name}</text>"#,
            lx + 16.0,
            y + 10.0
        );
    }
}

fn y_axis(out: &mut String, max_v: f64, label: &str) {
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let ticks = 5usize;
    for t in 0..=ticks {
        let v = max_v * t as f64 / ticks as f64;
        let y = HEIGHT - MARGIN_B - plot_h * t as f64 / ticks as f64;
        let _ = writeln!(
            out,
            r##"<line x1="{MARGIN_L}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/>"##,
            WIDTH - MARGIN_R
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{v:.0}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0
        );
    }
    let _ = writeln!(
        out,
        r#"<text x="16" y="{}" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {})" text-anchor="middle">{}</text>"#,
        HEIGHT / 2.0,
        HEIGHT / 2.0,
        escape(label)
    );
}

/// Renders a Figures-5/6-style grouped bar chart of speedups.
#[must_use]
pub fn speedup_bars(title: &str, rows: &[SpeedupRow]) -> String {
    let mut out = header(title);
    let max_v = rows
        .iter()
        .flat_map(|r| r.speedups.iter().copied())
        .fold(1.0f64, f64::max)
        .ceil();
    y_axis(&mut out, max_v, "speedup over DP");

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let group_w = plot_w / rows.len() as f64;
    let bar_w = (group_w * 0.8) / 4.0;

    for (gi, row) in rows.iter().enumerate() {
        let gx = MARGIN_L + gi as f64 * group_w + group_w * 0.1;
        for (si, &v) in row.speedups.iter().enumerate() {
            let h = plot_h * v / max_v;
            let x = gx + si as f64 * bar_w;
            let y = HEIGHT - MARGIN_B - h;
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{}"><title>{}: {} {:.2}x</title></rect>"#,
                COLORS[si],
                escape(&row.network),
                STRATEGY_NAMES[si],
                v
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
            gx + group_w * 0.4,
            HEIGHT - MARGIN_B + 16.0,
            escape(&row.network)
        );
    }
    legend(&mut out, MARGIN_L, HEIGHT - 20.0);
    out.push_str("</svg>\n");
    out
}

/// Renders the Figure-8-style hierarchy sweep as a line chart.
#[must_use]
pub fn hierarchy_lines(title: &str, rows: &[Fig8Row]) -> String {
    let mut out = header(title);
    let max_v = rows
        .iter()
        .flat_map(|r| r.speedups.iter().copied())
        .fold(1.0f64, f64::max)
        .ceil();
    y_axis(&mut out, max_v, "speedup over DP");

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let (h_min, h_max) = (
        rows.first().map_or(0, |r| r.levels) as f64,
        rows.last().map_or(1, |r| r.levels) as f64,
    );
    let x_of = |h: f64| MARGIN_L + plot_w * (h - h_min) / (h_max - h_min).max(1.0);
    let y_of = |v: f64| HEIGHT - MARGIN_B - plot_h * v / max_v;

    for row in rows {
        let x = x_of(row.levels as f64);
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
            HEIGHT - MARGIN_B + 16.0,
            row.levels
        );
    }

    for si in 0..4 {
        let mut path = String::new();
        for (i, row) in rows.iter().enumerate() {
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(
                path,
                "{cmd}{:.1} {:.1} ",
                x_of(row.levels as f64),
                y_of(row.speedups[si])
            );
        }
        let _ = writeln!(
            out,
            r#"<path d="{path}" fill="none" stroke="{}" stroke-width="2.5"/>"#,
            COLORS[si]
        );
        for row in rows {
            let _ = writeln!(
                out,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="{}"><title>h={} {}: {:.2}x</title></circle>"#,
                x_of(row.levels as f64),
                y_of(row.speedups[si]),
                COLORS[si],
                row.levels,
                STRATEGY_NAMES[si],
                row.speedups[si]
            );
        }
    }
    legend(&mut out, MARGIN_L, HEIGHT - 20.0);
    out.push_str("</svg>\n");
    out
}

/// Renders the Figure-7-style stacked type-selection histogram.
#[must_use]
pub fn type_histogram(title: &str, fig: &Figure7) -> String {
    let type_colors = ["#9aa0a6", "#4f9bd9", "#c3423f"];
    let type_names = ["Type-I", "Type-II", "Type-III"];
    let mut out = header(title);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let group_w = plot_w / fig.counts.len() as f64;
    let bar_w = group_w * 0.6;

    for (gi, (name, counts)) in fig.layer_names.iter().zip(&fig.counts).enumerate() {
        let total: usize = counts.iter().sum();
        let x = MARGIN_L + gi as f64 * group_w + group_w * 0.2;
        let mut y = HEIGHT - MARGIN_B;
        for (ti, &c) in counts.iter().enumerate() {
            let h = plot_h * c as f64 / total.max(1) as f64;
            y -= h;
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{}"><title>{}: {} {}/{}</title></rect>"#,
                type_colors[ti],
                escape(name),
                type_names[ti],
                c,
                total
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
            x + bar_w / 2.0,
            HEIGHT - MARGIN_B + 16.0,
            escape(name)
        );
    }
    for (i, name) in type_names.iter().enumerate() {
        let lx = MARGIN_L + i as f64 * 90.0;
        let y = HEIGHT - 20.0;
        let _ = writeln!(
            out,
            r#"<rect x="{lx}" y="{y}" width="12" height="12" fill="{}"/>"#,
            type_colors[i]
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{name}</text>"#,
            lx + 16.0,
            y + 10.0
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SpeedupRow> {
        vec![
            SpeedupRow {
                network: "alexnet".into(),
                step_ms: [4.0, 2.0, 2.0, 1.0],
                speedups: [1.0, 2.0, 2.0, 4.0],
            },
            SpeedupRow {
                network: "vgg<16>".into(),
                step_ms: [9.0, 3.0, 3.0, 1.0],
                speedups: [1.0, 3.0, 3.0, 9.0],
            },
        ]
    }

    #[test]
    fn bars_are_well_formed_svg() {
        let svg = speedup_bars("Figure 5", &rows());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 2 networks x 4 strategies bars plus the legend swatches.
        assert_eq!(svg.matches("<rect").count(), 2 * 4 + 4 + 1);
        // Escaping.
        assert!(svg.contains("vgg&lt;16&gt;"));
        assert!(!svg.contains("vgg<16>"));
    }

    #[test]
    fn lines_cover_all_levels() {
        let rows: Vec<Fig8Row> = (2..=5)
            .map(|h| Fig8Row {
                levels: h,
                speedups: [1.0, 2.0, 2.5, h as f64],
            })
            .collect();
        let svg = hierarchy_lines("Figure 8", &rows);
        assert_eq!(svg.matches("<path").count(), 4);
        assert_eq!(svg.matches("<circle").count(), 4 * 4);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn histogram_stacks_to_full_height() {
        let fig = Figure7 {
            layer_names: vec!["cv1".into(), "fc1".into()],
            counts: vec![[10, 0, 0], [0, 7, 3]],
            top_level: "I2".into(),
        };
        let svg = type_histogram("Figure 7", &fig);
        // Zero-count segments still emit (zero-height) rects: 2 layers x 3.
        assert_eq!(svg.matches("<rect").count(), 2 * 3 + 3 + 1);
        assert!(svg.contains("cv1"));
        assert!(svg.contains("Type-III"));
    }
}
