//! Robustness ablation: how the four schemes degrade under injected
//! faults, and how much graceful re-planning recovers.
//!
//! For every scenario and strategy the ablation reports three step
//! times: the healthy plan on healthy hardware (*nominal*), the same
//! stale plan on the faulted hardware (*degraded*), and the plan the
//! [`replan`](mod@accpar_core::replan) machinery adopts on the faulted
//! hardware (*replanned*). The replanner's never-worse guarantee means
//! `replanned <= degraded` whenever the stale plan can still run; under
//! dropout the stale plan cannot run at all and only the replanned time
//! exists.
//!
//! Everything is seeded and analytic — two runs of the same scenario
//! produce bit-identical rows.

use accpar_core::{replan, PlanError, Planner, ReplanConfig, Strategy};
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, FaultModel, GroupTree};
use accpar_sim::{SimConfig, Simulator};

/// A named fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// The injected faults.
    pub faults: FaultModel,
}

/// The standard scenario suite for a tree with `n_leaves` leaves and
/// `n_cuts` cuts (needs at least two leaves and one cut).
///
/// The first entries are the fixed single-fault probes (one straggler at
/// half compute, one cut at quarter bandwidth, a 1 ms stall), then their
/// combination — the issue's acceptance scenario — then a seeded random
/// scenario and a dropout of the last leaf.
///
/// # Panics
///
/// Panics if the tree is trivial (no cuts or fewer than two leaves).
#[must_use]
pub fn standard_scenarios(seed: u64, n_leaves: usize, n_cuts: usize) -> Vec<Scenario> {
    assert!(n_leaves >= 2 && n_cuts >= 1, "need a non-trivial tree");
    let cut = 1.min(n_cuts - 1);
    let mk = |name: &str, faults: FaultModel| Scenario {
        name: name.to_owned(),
        faults,
    };
    vec![
        mk(
            "straggler-0.5x",
            FaultModel::with_seed(seed)
                .slow_leaf(0, 0.5)
                .expect("valid factor"),
        ),
        mk(
            "link-0.25x",
            FaultModel::with_seed(seed)
                .degrade_cut(cut, 0.25)
                .expect("valid factor"),
        ),
        mk(
            "stall-1ms",
            FaultModel::with_seed(seed)
                .stall_leaf(0, 1e-3)
                .expect("valid stall"),
        ),
        mk(
            "straggler+link",
            FaultModel::with_seed(seed)
                .slow_leaf(0, 0.5)
                .expect("valid factor")
                .degrade_cut(cut, 0.25)
                .expect("valid factor"),
        ),
        mk(
            "random-2",
            FaultModel::random(seed, n_leaves, n_cuts, 2).expect("non-empty tree"),
        ),
        mk(
            "dropout-last",
            FaultModel::with_seed(seed).drop_leaf(n_leaves - 1),
        ),
    ]
}

/// One strategy's degradation under one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// The scheme whose healthy plan is subjected to the faults.
    pub strategy: Strategy,
    /// Healthy plan on healthy hardware, milliseconds.
    pub nominal_ms: f64,
    /// Stale healthy plan on faulted hardware (`None` under dropout).
    pub degraded_ms: Option<f64>,
    /// The replanner's adopted plan on faulted hardware.
    pub replanned_ms: f64,
    /// Whether the replanner adopted a new plan.
    pub replanned: bool,
}

impl RobustnessRow {
    /// Speedup of the replanned plan over the stale plan on the faulted
    /// hardware (`None` under dropout).
    #[must_use]
    pub fn recovery(&self) -> Option<f64> {
        self.degraded_ms.map(|d| d / self.replanned_ms)
    }

    /// Slowdown of the replanned degraded step versus the nominal step.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.nominal_ms > 0.0 {
            self.replanned_ms / self.nominal_ms
        } else {
            1.0
        }
    }
}

/// Runs one scenario over all four schemes.
///
/// # Errors
///
/// Propagates planning, simulation and replanning errors.
pub fn scenario_rows(
    network: &str,
    batch: usize,
    array: &AcceleratorArray,
    levels: usize,
    faults: &FaultModel,
) -> Result<Vec<RobustnessRow>, PlanError> {
    let net = zoo::by_name(network, batch)?;
    let view = net.train_view()?;
    let tree = GroupTree::bisect(array, levels)?;
    let sim_config = SimConfig::default();
    let planner = Planner::builder(&net, array)
        .levels(levels)
        .sim_config(sim_config).build().unwrap();
    let sim = Simulator::new(sim_config);
    let config = ReplanConfig {
        sim_config,
        sensitivity: false,
        ..ReplanConfig::default()
    };

    let mut rows = Vec::with_capacity(Strategy::ALL.len());
    for &strategy in &Strategy::ALL {
        let planned = planner.plan(strategy)?;
        let degraded_ms = if faults.dropped_leaves().is_empty() {
            Some(
                sim.simulate(&view, planned.plan(), &tree, Some(faults))?
                    .total_secs
                    * 1e3,
            )
        } else {
            None
        };
        let outcome = replan(&view, array, &tree, planned.plan(), faults, &config)?;
        rows.push(RobustnessRow {
            strategy,
            nominal_ms: planned.modeled_cost() * 1e3,
            degraded_ms,
            replanned_ms: outcome.degraded_secs * 1e3,
            replanned: outcome.replanned,
        });
    }
    Ok(rows)
}

/// The full ablation: the standard scenario suite on one network.
///
/// # Errors
///
/// Propagates planning, simulation and replanning errors.
pub fn robustness_ablation(
    network: &str,
    batch: usize,
    array: &AcceleratorArray,
    levels: usize,
    seed: u64,
) -> Result<Vec<(Scenario, Vec<RobustnessRow>)>, PlanError> {
    let tree = GroupTree::bisect(array, levels)?;
    let scenarios = standard_scenarios(seed, tree.leaf_count(), tree.cut_count());
    scenarios
        .into_iter()
        .map(|s| scenario_rows(network, batch, array, levels, &s.faults).map(|rows| (s, rows)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_is_seeded_and_complete() {
        let a = standard_scenarios(7, 4, 3);
        let b = standard_scenarios(7, 4, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().any(|s| !s.faults.dropped_leaves().is_empty()));
    }

    #[test]
    fn ablation_rows_respect_the_never_worse_guarantee() {
        let array = AcceleratorArray::heterogeneous_tpu(1, 1);
        let rows = scenario_rows(
            "lenet",
            64,
            &array,
            1,
            &FaultModel::with_seed(3)
                .slow_leaf(0, 0.5)
                .unwrap()
                .degrade_cut(0, 0.25)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            let degraded = row.degraded_ms.unwrap();
            assert!(
                row.replanned_ms <= degraded * (1.0 + 1e-12),
                "{row:?}"
            );
            assert!(degraded >= row.nominal_ms * (1.0 - 1e-12), "{row:?}");
            assert!(row.recovery().unwrap() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn dropout_rows_have_no_stale_time() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let rows = scenario_rows(
            "lenet",
            64,
            &array,
            2,
            &FaultModel::with_seed(3).drop_leaf(3),
        )
        .unwrap();
        for row in &rows {
            assert_eq!(row.degraded_ms, None);
            assert!(row.replanned, "dropout always forces a new plan");
            assert!(row.replanned_ms > 0.0);
        }
    }

    #[test]
    fn ablation_is_deterministic() {
        let array = AcceleratorArray::heterogeneous_tpu(1, 1);
        let a = robustness_ablation("lenet", 32, &array, 1, 11).unwrap();
        let b = robustness_ablation("lenet", 32, &array, 1, 11).unwrap();
        assert_eq!(a, b);
    }
}
