//! Minimal JSON emitter and parser for archival output.
//!
//! The value tree, pretty printer, and recursive-descent parser now
//! live in [`accpar_obs::json`] so the core crate's plan cache can
//! share the codec; this module re-exports them to keep the historic
//! `accpar_bench::json` path working for the bench binaries.

pub use accpar_obs::json::*;
