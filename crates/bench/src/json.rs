//! Minimal JSON emitter for archival output.
//!
//! The workspace builds fully offline, so instead of an external
//! serialization crate the bench harness carries this ~100-line value
//! tree + pretty printer. It only *writes* JSON (the archives are
//! consumed by external plotting scripts); no parser is needed.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Pretty-prints with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) if n.is_finite() => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::str("a\"b\n").pretty(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn nested_structure_renders() {
        let v = Json::obj(vec![
            ("rows", Json::from(vec![1.0, 2.5])),
            ("name", Json::str("fig")),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"rows\": [\n"));
        assert!(text.contains("2.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with('}'));
        // Balanced braces and brackets.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                text.matches(open).count(),
                text.matches(close).count()
            );
        }
    }
}
