//! Renders Tables 3–7 of the paper directly from the implementation, so
//! the printed tables are *derived from the code under test*, not
//! hard-coded strings.

use accpar_cost::comm::{inter_conversion_elems, intra_psum_elems};
use accpar_cost::compute::phase_flops;
use accpar_dnn::{NetworkBuilder, TrainLayer};
use accpar_hw::AcceleratorSpec;
use accpar_partition::symmetry::table3;
use accpar_partition::{PartitionType, Phase};
use accpar_tensor::FeatureShape;
use std::fmt::Write as _;

/// A reference FC layer `(B, D_i, D_o) = (B, Di, Do)` used to exhibit the
/// symbolic table entries numerically.
fn reference_layer(b: usize, d_i: usize, d_o: usize) -> TrainLayer {
    NetworkBuilder::new("ref", FeatureShape::fc(b, d_i))
        .linear("fc", d_i, d_o)
        .build()
        .expect("reference layer builds")
        .train_view()
        .expect("has weighted layers")
        .layers()
        .next()
        .expect("one layer")
        .clone()
}

/// Table 3: rotational symmetry of the three tensor multiplications.
#[must_use]
pub fn render_table3() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3 — rotational symmetry of the three multiplications"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:<14} {:<10}",
        "phase", "partition dim", "psum shape", "basic type"
    );
    for row in table3() {
        let _ = writeln!(
            out,
            "{:<10} {:<14} ({:?}, {:?})   {}",
            row.phase.to_string(),
            row.partition_dim.to_string(),
            row.psum_shape.0,
            row.psum_shape.1,
            row.basic_type
        );
    }
    out
}

/// Table 4: intra-layer communication volumes for a reference layer.
#[must_use]
pub fn render_table4() -> String {
    let layer = reference_layer(512, 4096, 1024);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4 — intra-layer psum tensor, reference FC layer (B=512, D_i=4096, D_o=1024)"
    );
    for t in PartitionType::ALL {
        let tensor = match t {
            PartitionType::TypeI => "A(W_l)",
            PartitionType::TypeII => "A(F_l+1)",
            PartitionType::TypeIII => "A(E_l)",
        };
        let _ = writeln!(
            out,
            "{:<10} {:<9} = {:>10} elements (psum phase: {})",
            t.to_string(),
            tensor,
            intra_psum_elems(t, &layer),
            t.psum_phase()
        );
    }
    out
}

/// Table 5: inter-layer conversion volumes for all nine type pairs at a
/// given ratio, as fractions of the boundary tensor size.
#[must_use]
pub fn render_table5(alpha: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5 — inter-layer conversion volume / A(F) for group a, alpha = {alpha}"
    );
    let _ = write!(out, "{:<10}", "l \\ l+1");
    for next in PartitionType::ALL {
        let _ = write!(out, "{:>10}", next.to_string());
    }
    let _ = writeln!(out);
    for prev in PartitionType::ALL {
        let _ = write!(out, "{:<10}", prev.to_string());
        for next in PartitionType::ALL {
            // Unit-size boundary: volumes are directly the coefficients.
            let (a, _) = inter_conversion_elems(prev, alpha, next, alpha, 1_000_000, 1_000_000);
            let _ = write!(out, "{:>10.4}", a / 1_000_000.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Table 6: FLOP counts of the three multiplications for a reference
/// layer, shown against the closed forms.
#[must_use]
pub fn render_table6() -> String {
    let (b, d_i, d_o) = (512u64, 4096u64, 1024u64);
    let layer = reference_layer(b as usize, d_i as usize, d_o as usize);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6 — FLOP counts, reference FC layer (B={b}, D_i={d_i}, D_o={d_o})"
    );
    let rows = [
        (Phase::Forward, "A(F_l+1)·(2·D_i−1)", b * d_o * (2 * d_i - 1)),
        (Phase::Backward, "A(E_l)·(2·D_o−1)", b * d_i * (2 * d_o - 1)),
        (Phase::Gradient, "A(W_l)·(2·B−1)", d_i * d_o * (2 * b - 1)),
    ];
    for (phase, formula, expected) in rows {
        let got = phase_flops(&layer, phase);
        assert_eq!(got, expected, "table 6 self-check");
        let _ = writeln!(out, "{:<10} {formula:<22} = {got:>15} FLOP", phase.to_string());
    }
    out
}

/// Table 7: the accelerator specifications.
#[must_use]
pub fn render_table7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 7 — accelerator specifications");
    for spec in [AcceleratorSpec::tpu_v2(), AcceleratorSpec::tpu_v3()] {
        let _ = writeln!(out, "{spec}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_render() {
        for table in [
            render_table3(),
            render_table4(),
            render_table5(0.5),
            render_table6(),
            render_table7(),
        ] {
            assert!(table.lines().count() >= 3, "{table}");
        }
    }

    #[test]
    fn table5_diagonal_entries() {
        let s = render_table5(0.5);
        // I->I entry is exactly zero; the rendered row for Type-I starts
        // with 0.0000.
        let row = s.lines().find(|l| l.starts_with("Type-I ")).unwrap();
        assert!(row.contains("0.0000"));
    }

    #[test]
    fn table4_volumes_match_reference_shapes() {
        let s = render_table4();
        // A(W) = 4096·1024; A(F_{l+1}) = 512·1024; A(E_l) = 512·4096.
        assert!(s.contains(&(4096 * 1024).to_string()));
        assert!(s.contains(&(512 * 1024).to_string()));
        assert!(s.contains(&(512 * 4096).to_string()));
    }
}
