//! Deterministic chaos harness: replay seeded hardware health
//! timelines through the live-replanning
//! [`Supervisor`] and report serving metrics.
//!
//! For every (network, seed) pair the harness generates a random
//! [`HealthSchedule`] over the supervised tree's leaves and cuts,
//! replays it, and reports **MTTR**, **availability**, **replan
//! count**, and **steady-state degradation** — plus a convergence
//! check: the supervisor's settled plan must be bit-identical to
//! running the never-worse replanner once against the terminal fault
//! set with a fresh cache. Everything is seeded and analytic, so two
//! runs of the same arguments produce identical rows.

use accpar_core::replan::{replan, ReplanConfig};
use accpar_core::supervise::{SuperviseAction, SuperviseConfig, Supervisor};
use accpar_core::PlanError;
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, FaultModel, GroupTree, HealthSchedule};

/// One chaos replay: a network under one seeded health timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Network name.
    pub network: String,
    /// Schedule seed.
    pub seed: u64,
    /// Health events replayed.
    pub events: usize,
    /// Decisions the supervisor took (debouncing batches events).
    pub decisions: usize,
    /// Searches actually run.
    pub replans: usize,
    /// Decisions on each ladder rung, in order:
    /// (hold, adopt, keep, promote, fallback, shed).
    pub rungs: (usize, usize, usize, usize, usize, usize),
    /// Time-weighted fraction of the timeline spent serving.
    pub availability: f64,
    /// Mean time to re-enter the tolerance band (`None`: no closed
    /// excursion).
    pub mttr: Option<f64>,
    /// Final serving degradation over nominal.
    pub steady_degradation: f64,
    /// Whether the settled plan is bit-identical to replanning against
    /// the terminal fault set directly (fresh cache, no supervisor).
    pub converged: bool,
}

/// Replays one seeded timeline of `n_events` over `network` and checks
/// terminal convergence.
///
/// # Errors
///
/// Propagates planning, simulation, and schedule-generation errors.
pub fn chaos_run(
    network: &str,
    batch: usize,
    array: &AcceleratorArray,
    levels: usize,
    seed: u64,
    n_events: usize,
) -> Result<ChaosRow, PlanError> {
    let net = zoo::by_name(network, batch)?;
    let config = SuperviseConfig {
        threads: Some(1),
        ..SuperviseConfig::default()
    };
    let mut sup = Supervisor::new(&net, array, Some(levels), config)?;
    let schedule = HealthSchedule::random(seed, sup.leaf_count(), sup.cut_count(), n_events)
        .map_err(PlanError::Hw)?;
    let report = sup.run(&schedule)?;

    // Convergence: one direct replan against the terminal fault set,
    // fresh cache, must reproduce the settled plan bit for bit.
    let terminal = schedule
        .fold_all(FaultModel::new())
        .map_err(PlanError::Hw)?;
    let view = net.train_view()?;
    let tree = GroupTree::bisect(array, levels)?;
    let direct = replan(
        &view,
        array,
        &tree,
        sup.healthy_plan(),
        &terminal,
        &ReplanConfig {
            sensitivity: false,
            threads: Some(1),
            ..ReplanConfig::default()
        },
    )?;
    let converged = sup.plan() == Some(&direct.plan);

    let mut rungs = (0, 0, 0, 0, 0, 0);
    for decision in &report.decisions {
        match decision.action {
            SuperviseAction::Hold => rungs.0 += 1,
            SuperviseAction::Adopt => rungs.1 += 1,
            SuperviseAction::Keep => rungs.2 += 1,
            SuperviseAction::Promote => rungs.3 += 1,
            SuperviseAction::Fallback => rungs.4 += 1,
            SuperviseAction::Shed => rungs.5 += 1,
            // `SuperviseAction` is non-exhaustive; future rungs just
            // don't show up in the fixed tally.
            _ => {}
        }
    }
    Ok(ChaosRow {
        network: network.to_owned(),
        seed,
        events: report.events,
        decisions: report.decisions.len(),
        replans: report.replans,
        rungs,
        availability: report.availability,
        mttr: report.mttr,
        steady_degradation: report.steady_degradation,
        converged,
    })
}

/// The standard chaos suite: every named network under `n_seeds`
/// consecutive seeds starting at `seed`.
///
/// # Errors
///
/// Propagates the first failing replay.
pub fn chaos_suite(
    networks: &[&str],
    batch: usize,
    array: &AcceleratorArray,
    levels: usize,
    seed: u64,
    n_events: usize,
    n_seeds: u64,
) -> Result<Vec<ChaosRow>, PlanError> {
    let mut rows = Vec::new();
    for &network in networks {
        for s in 0..n_seeds {
            rows.push(chaos_run(network, batch, array, levels, seed + s, n_events)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_runs_are_deterministic_and_converge() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let a = chaos_run("lenet", 64, &array, 2, 9, 30).unwrap();
        let b = chaos_run("lenet", 64, &array, 2, 9, 30).unwrap();
        assert_eq!(a, b);
        assert!(a.converged, "terminal plan diverged: {a:?}");
        assert_eq!(a.events, 30);
        assert!(a.decisions <= a.events + 1);
        assert!(a.availability > 0.0);
    }

    #[test]
    fn suite_covers_every_network_and_seed() {
        let array = AcceleratorArray::heterogeneous_tpu(1, 1);
        let rows = chaos_suite(&["lenet", "vgg16"], 32, &array, 1, 3, 10, 2).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.converged, "{row:?}");
        }
    }
}
