//! Tiny wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the `benches/` entry points
//! (all `harness = false`) use this ~50-line std-only measurer instead
//! of an external benchmarking crate: auto-calibrated iteration counts,
//! best-of-samples reporting, and a `--quick` env knob for CI.

use std::time::{Duration, Instant};

/// Runs `f` repeatedly and prints `name`, the iteration count, and the
/// best observed per-iteration time.
///
/// Calibrates so one sample takes roughly 100 ms (at least one
/// iteration), then takes three samples and reports the minimum —
/// the standard noise-resistant estimator. Set `ACCPAR_BENCH_QUICK=1`
/// to run a single iteration per sample for smoke runs.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let quick = std::env::var_os("ACCPAR_BENCH_QUICK").is_some();

    // Warm up and calibrate.
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = if quick {
        1
    } else {
        (0.1 / once.as_secs_f64()).clamp(1.0, 100_000.0) as u32
    };

    let samples = if quick { 1 } else { 3 };
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed() / iters);
    }
    println!("{name:<44} {iters:>7} iters   {best:>12.3?}/iter");
}

/// Prints a group header, mirroring the old harness's grouped output.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
