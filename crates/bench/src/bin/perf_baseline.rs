//! Tracked performance baseline for the planning engine.
//!
//! Times zoo-wide hierarchical planning (all twelve evaluation models,
//! CNNs and transformers)
//! under the serial cache-free engine and the parallel memoized one —
//! both from a cold cache (planning the zoo exactly once) and in steady
//! state (one persistent [`SearchCache`] across sweeps, the engine as
//! deployed for `replan` and fault-sensitivity scans) — verifies all
//! configurations produce bit-identical plans, times a depth-3
//! hierarchy, both simulator backends and a DES-backed fault
//! sensitivity sweep (eight single-fault scenarios through one reused
//! [`DesArena`] — the `replan_with_des` leg), and writes the results to
//! `BENCH_planner.json` so future PRs have a trajectory to compare
//! against.
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin perf_baseline -- \
//!     [--quick] [--out BENCH_planner.json] [--ceiling-ms 120000] \
//!     [--trace-json trace.jsonl]
//! ```
//!
//! `--quick` runs one repetition per measurement (CI smoke mode);
//! `--ceiling-ms` makes the process fail when zoo-wide planning under
//! the optimized engine exceeds the given wall-clock ceiling, and
//! `--des-ceiling-ms` does the same for the `sim_des/resnet18_h8` leg.
//! The process also fails if the optimized engine's plans are not
//! bit-identical to the serial engine's, or (outside `--quick`) if the
//! DES leg regresses below 10x over the pre-overhaul clone-heavy engine
//! (the `des_speedup` field).
//!
//! `--trace-json PATH` additionally runs one fully traced VGG-16 plan
//! plus one traced DES simulation (after all timing legs, so
//! instrumentation cannot skew them) and writes the JSON-lines trace —
//! `plan` / `plan.level` / `sim.step` spans, per-layer `plan.decision`
//! events, memo hit/miss counters, per-phase simulator timings and the
//! `des.*` vocabulary (`des.build_us` / `des.schedule_us` phase timers,
//! `des.sims` / `des.tasks` / `des.dep_edges` counters) — to `PATH`.
//! Validate it with the `trace_check` binary (`--expect-des`).
//!
//! `--partial-trace-json PATH` runs one VGG-16 plan under a node budget
//! sized to solve only the root level, so the trace carries the anytime
//! vocabulary (`plan.partial`, `plan.level_fallback`). Validate it with
//! `trace_check PATH --expect-partial`.
//!
//! `--cache-trace-json PATH` runs one VGG-16 plan twice through an
//! observed plan cache (a miss that admits the plan, then a validated
//! hit), so the trace carries the cache vocabulary (`cache.miss` /
//! `cache.hit` counters, the `cache.validate` span and its outcome
//! event). Validate it with `trace_check PATH --expect-cache-hit`.
//!
//! `--iso-trace-json PATH` runs one traced 48-block encoder-stack plan,
//! so the trace carries the isomorphism-collapse vocabulary (the
//! `plan.iso` span, `iso.classes` / `iso.stamped_rows` counters and the
//! `iso.collapse_ratio` gauge). Validate it with
//! `trace_check PATH --expect-iso`.
//!
//! `--health-trace-json PATH` runs one traced plan plus a supervised
//! replay of a short seeded health timeline, so the trace carries the
//! live-replanning vocabulary (`health.event` / `supervise.decision`
//! events, the `supervise.decide` span and the `supervise.*` metrics).
//! Validate it with `trace_check PATH --expect-health`.
//!
//! The `supervise` legs time the live-replanning supervisor. The
//! steady-state event→serving-decision latency (a within-tolerance
//! degrade lands on the hold rung: fold the event, simulate the
//! incumbent on the degraded tree, decide) is gated outside `--quick`
//! at <= 10% of a cold plan of the same network on the same array
//! (`supervise_reaction_pct`). The full replanning excursion (a forced
//! Degrade/Recover round trip through the supervisor's persistent warm
//! cache) is reported alongside, and the post-recovery serving plan
//! must be bit-identical to the healthy baseline.
//!
//! The `iso_depth` legs plan synthetic encoder stacks of growing depth
//! cold (caching off, so the structural collapse — not the memo —
//! carries the speedup) with isomorphism collapse on and off. The class
//! count is constant in depth, so collapsed planning stays near-flat
//! while the uncollapsed engine scales linearly; outside `--quick` the
//! 96-block stack is gated at >= 5x (`iso_speedup`), and collapsed
//! plans must stay bit-identical to uncollapsed ones at every depth.
//!
//! The `serve_cache` legs time the crash-safe plan cache as deployed:
//! one cold plan, the steady-state served-hit latency (all per-hit
//! admission validation included, gated at < 5% of a cold plan), and
//! the first-serve BSP cross-check broken out on its own.
//!
//! The anytime legs measure what the budget machinery costs when armed
//! but never tripped (`anytime_overhead_pct`, acceptance target < 2%
//! against the steady-state leg) and the time-to-first-feasible-plan
//! across a node-budget sweep.

use accpar_bench::json::Json;
use accpar_core::{
    Budget, CacheOutcome, PlanCache, PlanOutcome, PlannedNetwork, Planner, SearchCache, Strategy,
    SuperviseConfig, Supervisor,
};
use accpar_dnn::{zoo, Network};
use accpar_hw::{AcceleratorArray, FaultModel, GroupTree, HealthEvent, HealthEventKind, HealthSchedule};
use accpar_obs::{JsonLines, Obs};
use accpar_runtime::Pool;
use accpar_sim::{simulate_des, simulate_des_in, DesArena, SimConfig, Simulator};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The `sim_des/resnet18_h8` wall time recorded by the last
/// pre-overhaul run of this benchmark (clone-heavy graph builder,
/// quadratic dependency fan-in). The overhauled arena engine is gated
/// at >= 10x over this number.
const DES_PRE_OVERHAUL_MS: f64 = 104.636109;

/// One `BENCH_planner.json` entry.
struct Entry {
    name: String,
    wall_ms: f64,
    threads: usize,
    cache_hit_rate: f64,
}

/// Minimum wall time of `reps` runs, in milliseconds.
fn time_best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Plans every zoo network under AccPar with the given engine knobs,
/// sharing `cache` across the sweep — the benchmark's workload is one
/// accelerator array, so VGG variants share conv shapes and ResNet
/// variants share whole blocks across networks.
fn plan_zoo(
    nets: &[Network],
    array: &AcceleratorArray,
    threads: usize,
    caching: bool,
    cache: &Arc<SearchCache>,
) -> Vec<PlannedNetwork> {
    let mut plans = Vec::with_capacity(nets.len());
    for net in nets {
        let planner = Planner::builder(net, array)
            .threads(threads)
            .caching(caching)
            .cache(Arc::clone(cache)).build().unwrap();
        plans.push(planner.plan(Strategy::AccPar).expect("zoo plans"));
    }
    plans
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_planner.json");
    let mut ceiling_ms: Option<f64> = None;
    let mut des_ceiling_ms: Option<f64> = None;
    let mut trace_json: Option<String> = None;
    let mut partial_trace_json: Option<String> = None;
    let mut cache_trace_json: Option<String> = None;
    let mut iso_trace_json: Option<String> = None;
    let mut health_trace_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--trace-json" => trace_json = Some(args.next().expect("--trace-json needs a path")),
            "--partial-trace-json" => {
                partial_trace_json =
                    Some(args.next().expect("--partial-trace-json needs a path"));
            }
            "--cache-trace-json" => {
                cache_trace_json = Some(args.next().expect("--cache-trace-json needs a path"));
            }
            "--iso-trace-json" => {
                iso_trace_json = Some(args.next().expect("--iso-trace-json needs a path"));
            }
            "--health-trace-json" => {
                health_trace_json =
                    Some(args.next().expect("--health-trace-json needs a path"));
            }
            "--ceiling-ms" => {
                ceiling_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--ceiling-ms needs a number"),
                );
            }
            "--des-ceiling-ms" => {
                des_ceiling_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--des-ceiling-ms needs a number"),
                );
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let reps = if quick { 1 } else { 5 };
    let threads = Pool::from_env().threads().max(4);

    let batch = 256;
    let nets = zoo::evaluation_suite(batch).expect("zoo builds");
    let hetero = AcceleratorArray::heterogeneous_tpu(4, 4);
    let mut entries: Vec<Entry> = Vec::new();

    // Zoo-wide hierarchical planning, three engine configurations:
    //   serial — one thread, caching off (the pre-optimization path);
    //   cold   — threads + memoization, but a fresh cache per sweep
    //            (the cost of planning the zoo exactly once);
    //   steady — threads + one persistent cache across sweeps (the
    //            engine as deployed: `replan` sweeps, fault-sensitivity
    //            scans and repeated planning amortize the same tables).
    // Every leg is warmed before timing so measurement order is fair.
    println!("zoo-wide AccPar planning ({} nets, batch {batch}, 4+4 boards)", nets.len());
    let serial_plans = plan_zoo(&nets, &hetero, 1, false, &Arc::new(SearchCache::new()));
    let serial_ms = time_best_ms(reps, || {
        plan_zoo(&nets, &hetero, 1, false, &Arc::new(SearchCache::new()))
    });
    entries.push(Entry {
        name: "zoo_plan/serial".into(),
        wall_ms: serial_ms,
        threads: 1,
        cache_hit_rate: 0.0,
    });

    let cold_cache = Arc::new(SearchCache::new());
    let cold_plans = plan_zoo(&nets, &hetero, threads, true, &cold_cache);
    let cold_hit_rate = cold_cache.stats().hit_rate();
    let cold_ms = time_best_ms(reps, || {
        plan_zoo(&nets, &hetero, threads, true, &Arc::new(SearchCache::new()))
    });
    entries.push(Entry {
        name: "zoo_plan/parallel_cold".into(),
        wall_ms: cold_ms,
        threads,
        cache_hit_rate: cold_hit_rate,
    });

    let steady_cache = Arc::new(SearchCache::new());
    let steady_plans = plan_zoo(&nets, &hetero, threads, true, &steady_cache);
    let steady_ms =
        time_best_ms(reps, || plan_zoo(&nets, &hetero, threads, true, &steady_cache));
    let steady_hit_rate = steady_cache.stats().hit_rate();
    entries.push(Entry {
        name: "zoo_plan/parallel".into(),
        wall_ms: steady_ms,
        threads,
        cache_hit_rate: steady_hit_rate,
    });

    let same = |a: &[PlannedNetwork], b: &[PlannedNetwork]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(s, p)| {
                s.plan() == p.plan() && s.modeled_cost().to_bits() == p.modeled_cost().to_bits()
            })
    };
    let identical = same(&serial_plans, &cold_plans) && same(&serial_plans, &steady_plans);
    let speedup = serial_ms / steady_ms;
    let cold_speedup = serial_ms / cold_ms;
    println!("  serial        {serial_ms:9.3} ms");
    println!(
        "  memoized cold {cold_ms:9.3} ms  ({threads} threads, {cold_speedup:.2}x, hit rate {:.1}%)",
        cold_hit_rate * 100.0
    );
    println!(
        "  memoized      {steady_ms:9.3} ms  ({threads} threads, {speedup:.2}x, hit rate {:.1}%)",
        steady_hit_rate * 100.0
    );
    println!("  bit-identical: {identical}");

    // The transformer slice of the zoo on its own: attention lowers to
    // q|k|v blocks plus a stage-carrying o projection, so this leg
    // tracks the multi-path search and the attention cost terms without
    // the CNNs diluting the signal.
    let transformers: Vec<Network> = ["bert_base", "gpt2_small", "vit_b16"]
        .iter()
        .map(|name| zoo::by_name(name, batch).expect("transformer builds"))
        .collect();
    let tf_cache = Arc::new(SearchCache::new());
    plan_zoo(&transformers, &hetero, threads, true, &tf_cache);
    let tf_ms = time_best_ms(reps, || {
        plan_zoo(&transformers, &hetero, threads, true, &Arc::new(SearchCache::new()))
    });
    entries.push(Entry {
        name: "zoo_plan/transformer".into(),
        wall_ms: tf_ms,
        threads,
        cache_hit_rate: tf_cache.stats().hit_rate(),
    });
    println!(
        "transformer slice (bert/gpt2/vit): {tf_ms:.3} ms ({threads} threads, hit rate {:.1}%)",
        tf_cache.stats().hit_rate() * 100.0
    );

    // Depth-3 hierarchy on a homogeneous array: the level memo resolves
    // entire symmetric subtrees.
    let hom = AcceleratorArray::homogeneous_tpu_v3(8);
    let vgg = zoo::vgg16(batch).expect("vgg16 builds");
    let depth3 = |threads: usize, caching: bool| {
        Planner::builder(&vgg, &hom)
            .levels(3)
            .threads(threads)
            .caching(caching).build().unwrap()
            .plan(Strategy::AccPar)
            .expect("depth-3 plan")
    };
    let d3_ms = time_best_ms(reps, || depth3(threads, true));
    let d3_planner = Planner::builder(&vgg, &hom)
        .levels(3)
        .threads(threads)
        .caching(true).build().unwrap();
    d3_planner.plan(Strategy::AccPar).expect("depth-3 plan");
    let d3_stats = d3_planner.cache_stats();
    entries.push(Entry {
        name: "hierarchy_depth3/vgg16_hom8".into(),
        wall_ms: d3_ms,
        threads,
        cache_hit_rate: d3_stats.hit_rate(),
    });
    println!(
        "depth-3 hierarchy (vgg16, 8 boards): {d3_ms:.3} ms, hit rate {:.1}%",
        d3_stats.hit_rate() * 100.0
    );

    // Anytime planning: an armed-but-never-tripped budget must be
    // invisible — same bits, and within 2% of the unbudgeted wall time
    // on the steady-state VGG-16 leg (budget charges are per DP layer
    // row, and deadline clock reads are strided).
    let anytime_cache = Arc::new(SearchCache::new());
    let anytime_planner = Planner::builder(&vgg, &hetero)
        .threads(threads)
        .cache(Arc::clone(&anytime_cache)).build().unwrap();
    let unbudgeted_plan = anytime_planner.plan(Strategy::AccPar).expect("steady plan");
    let unbudgeted_ms =
        time_best_ms(reps, || anytime_planner.plan(Strategy::AccPar).expect("steady plan"));
    let armed = || {
        Budget::unlimited()
            .deadline(Duration::from_secs(3600))
            .max_nodes(u64::MAX / 2)
    };
    let armed_outcome = anytime_planner
        .plan_with_budget(Strategy::AccPar, &armed())
        .expect("armed plan");
    let armed_ms = time_best_ms(reps, || {
        anytime_planner
            .plan_with_budget(Strategy::AccPar, &armed())
            .expect("armed plan")
    });
    let armed_identical = armed_outcome.is_complete()
        && armed_outcome.planned().plan() == unbudgeted_plan.plan()
        && armed_outcome.planned().modeled_cost().to_bits() == unbudgeted_plan.modeled_cost().to_bits();
    let anytime_overhead_pct = (armed_ms - unbudgeted_ms) / unbudgeted_ms * 100.0;
    entries.push(Entry {
        name: "anytime/vgg16_steady_unbudgeted".into(),
        wall_ms: unbudgeted_ms,
        threads,
        cache_hit_rate: anytime_cache.stats().hit_rate(),
    });
    entries.push(Entry {
        name: "anytime/vgg16_steady_armed".into(),
        wall_ms: armed_ms,
        threads,
        cache_hit_rate: anytime_cache.stats().hit_rate(),
    });
    println!(
        "anytime budget overhead (vgg16 steady): unbudgeted {unbudgeted_ms:.3} ms, armed {armed_ms:.3} ms ({anytime_overhead_pct:+.2}%), bit-identical: {armed_identical}"
    );

    // Time-to-first-feasible-plan across a node-budget sweep: even a
    // zero budget returns a feasible (data-parallel) plan immediately;
    // larger budgets buy completeness.
    let vgg_rows = vgg.train_view().expect("train view").weighted_len() as u64;
    println!("time-to-first-feasible-plan across node budgets (vgg16, cold cache):");
    for (label, nodes) in [
        ("0", 0),
        ("1x", vgg_rows),
        ("4x", 4 * vgg_rows),
        ("max", u64::MAX / 2),
    ] {
        let sweep_planner = Planner::builder(&vgg, &hetero)
            .threads(threads)
            .caching(false).build().unwrap();
        let mut completeness = 0.0;
        let ttfp_ms = time_best_ms(reps, || {
            let outcome = sweep_planner
                .plan_with_budget(Strategy::AccPar, &Budget::unlimited().max_nodes(nodes))
                .expect("anytime plan");
            completeness = outcome.completeness();
            outcome
        });
        entries.push(Entry {
            name: format!("anytime_ttfp/nodes_{label}"),
            wall_ms: ttfp_ms,
            threads,
            cache_hit_rate: 0.0,
        });
        println!("  nodes={label:<4} {ttfp_ms:9.3} ms  completeness {:.0}%", completeness * 100.0);
    }

    // Simulator throughput, both backends, on the evaluation-scale
    // array (bit-exact replay of the planner's objective).
    let big = AcceleratorArray::heterogeneous_tpu(128, 128);
    let big_tree = GroupTree::bisect(&big, 8).expect("bisect");
    let resnet = zoo::resnet18(batch).expect("resnet18 builds");
    let view = resnet.train_view().expect("train view");
    let plan = accpar_core::baselines::data_parallel_plan(&view, 8);
    let config = SimConfig::default();
    let bsp_ms = time_best_ms(reps, || {
        Simulator::new(config)
            .simulate(&view, &plan, &big_tree, None)
            .expect("bsp sim")
    });
    entries.push(Entry {
        name: "sim_bsp/resnet18_h8".into(),
        wall_ms: bsp_ms,
        threads: 1,
        cache_hit_rate: 0.0,
    });
    let des_ms = time_best_ms(reps, || {
        simulate_des(&config, &view, &plan, &big_tree, None).expect("des sim")
    });
    entries.push(Entry {
        name: "sim_des/resnet18_h8".into(),
        wall_ms: des_ms,
        threads: 1,
        cache_hit_rate: 0.0,
    });
    let des_speedup = DES_PRE_OVERHAUL_MS / des_ms;
    println!(
        "simulator throughput (resnet18, 256 boards): bsp {bsp_ms:.3} ms, des {des_ms:.3} ms ({des_speedup:.1}x over pre-overhaul {DES_PRE_OVERHAUL_MS:.1} ms)"
    );

    // DES-backed fault-sensitivity sweep — the replan loop's inner
    // measurement as deployed: eight single-fault scenarios (degraded
    // leaves and degraded cuts) replayed through one reusable arena, so
    // only the first simulation of the sweep pays any allocation.
    let fault_scenarios: Vec<FaultModel> = (0..4)
        .map(|i| {
            FaultModel::with_seed(i as u64)
                .slow_leaf(i, 0.5)
                .expect("leaf fault")
        })
        .chain((0..4).map(|i| {
            FaultModel::with_seed(16 + i as u64)
                .degrade_cut(i, 0.25)
                .expect("cut fault")
        }))
        .collect();
    let mut des_arena = DesArena::new();
    let replan_des_ms = time_best_ms(reps, || {
        fault_scenarios
            .iter()
            .map(|faults| {
                simulate_des_in(&mut des_arena, &config, &view, &plan, &big_tree, Some(faults))
                    .expect("faulted des sim")
                    .total_secs
            })
            .fold(0.0_f64, f64::max)
    });
    entries.push(Entry {
        name: "replan_with_des/resnet18_fault_sweep".into(),
        wall_ms: replan_des_ms,
        threads: 1,
        cache_hit_rate: 0.0,
    });
    println!(
        "DES fault-sensitivity sweep ({} scenarios, shared arena): {replan_des_ms:.3} ms ({:.3} ms/scenario)",
        fault_scenarios.len(),
        replan_des_ms / fault_scenarios.len() as f64
    );

    // Crash-safe plan-cache serving: steady-state served-hit latency
    // against the cold plan it replaces. Every hit pays the admission
    // check (shape/topology on every serve; the BSP cross-check runs in
    // full on a record's first serve, then its verified report is
    // memoized in memory), so the steady-state hit carries the whole
    // per-hit validation overhead — gated at < 5% of a cold plan. The
    // first-serve cross-check (what a disk-loaded record pays once) is
    // broken out as its own leg.
    let cache_dir = std::env::temp_dir().join(format!(
        "accpar-bench-plan-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let r50 = zoo::resnet50(batch).expect("resnet50 builds");
    let plan_cache = Arc::new(PlanCache::open(&cache_dir, 64, Obs::off()));
    let cached_planner = Planner::builder(&r50, &hetero)
        .threads(threads)
        .plan_cache(Arc::clone(&plan_cache))
        .build()
        .expect("resnet50 configures cleanly");
    let cold_plan_ms = time_best_ms(reps, || {
        Planner::builder(&r50, &hetero)
            .threads(threads)
            .build()
            .expect("resnet50 configures cleanly")
            .plan(Strategy::AccPar)
            .expect("cold plan")
    });
    let (first, first_outcome) = cached_planner
        .plan_with_budget_cached(Strategy::AccPar, &Budget::unlimited())
        .expect("cache fill");
    assert_eq!(first_outcome, CacheOutcome::Miss, "fresh cache must miss");
    let cache_truth = first.into_planned();
    let hit_reps = if quick { 3 } else { 20 };
    let mut hit_identical = true;
    let hit_ms = time_best_ms(hit_reps, || {
        let (outcome, provenance) = cached_planner
            .plan_with_budget_cached(Strategy::AccPar, &Budget::unlimited())
            .expect("served hit");
        let planned = outcome.into_planned();
        hit_identical &= provenance == CacheOutcome::Hit
            && planned.plan() == cache_truth.plan()
            && planned.modeled_cost().to_bits() == cache_truth.modeled_cost().to_bits();
        planned
    });
    // The first-serve cross-check: the BSP re-simulation a record loaded
    // from disk must pass before its report is memoized.
    let r50_view = r50.train_view().expect("train view");
    let r50_tree = GroupTree::bisect(&hetero, cache_truth.plan().depth()).expect("bisect");
    let validate_ms = time_best_ms(hit_reps, || {
        Simulator::new(SimConfig::cost_model_aligned())
            .simulate(&r50_view, cache_truth.plan(), &r50_tree, None)
            .expect("validation sim")
    });
    let cache_validation_overhead_pct = hit_ms / cold_plan_ms * 100.0;
    entries.push(Entry {
        name: "serve_cache/resnet50_cold_plan".into(),
        wall_ms: cold_plan_ms,
        threads,
        cache_hit_rate: 0.0,
    });
    entries.push(Entry {
        name: "serve_cache/resnet50_served_hit".into(),
        wall_ms: hit_ms,
        threads,
        cache_hit_rate: 1.0,
    });
    entries.push(Entry {
        name: "serve_cache/resnet50_first_serve_crosscheck".into(),
        wall_ms: validate_ms,
        threads: 1,
        cache_hit_rate: 1.0,
    });
    println!(
        "plan-cache serving (resnet50): cold {cold_plan_ms:.3} ms, served hit {:.1} us ({cache_validation_overhead_pct:.2}% of cold; first-serve cross-check {:.1} us), bit-identical: {hit_identical}",
        hit_ms * 1e3,
        validate_ms * 1e3
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Isomorphism-collapse depth scaling: synthetic encoder stacks of
    // growing depth, planned cold with the memo off on both sides (the
    // shared cost cache would otherwise dedupe identical rows itself and
    // mask the structural collapse). The stack has a constant number of
    // layer equivalence classes regardless of depth, so collapsed
    // planning time stays near-flat while the uncollapsed engine pays
    // one DP row per layer per level.
    let iso_depths: &[usize] = if quick { &[12, 24] } else { &[12, 24, 48, 96] };
    let iso_batch = 64;
    let mut iso_speedup = f64::NAN;
    let mut iso_identical = true;
    let iso_tree = GroupTree::bisect(&hetero, 3).expect("bisect");
    let iso_model = accpar_cost::CostModel::new(accpar_cost::CostConfig::default());
    let iso_config = |collapse: bool| accpar_core::SearchConfig {
        collapse,
        ..accpar_core::SearchConfig::accpar()
    };
    println!("iso depth scaling (encoder stacks, cold, caching off, {threads} threads):");
    for &blocks in iso_depths {
        let net = zoo::deep_stack(iso_batch, 128, blocks).expect("deep stack builds");
        // Bit-identity through the whole pipeline (plan + simulate)...
        let plan_deep = |iso: bool| {
            Planner::builder(&net, &hetero)
                .threads(threads)
                .caching(false)
                .iso(iso)
                .build()
                .expect("deep stack configures cleanly")
                .plan(Strategy::AccPar)
                .expect("deep stack plan")
        };
        let on = plan_deep(true);
        let off = plan_deep(false);
        iso_identical &= on.plan() == off.plan()
            && on.modeled_cost().to_bits() == off.modeled_cost().to_bits();
        // ...but the timed quantity is the search itself: the BSP
        // evaluation after planning is O(layers) on both sides and
        // would otherwise dilute the collapse into the noise.
        let deep_view = net.train_view().expect("train view");
        let search_deep = |collapse: bool| {
            accpar_core::hierarchy::plan_node_with(
                &deep_view,
                iso_tree.root(),
                &iso_model,
                &iso_config(collapse),
                None,
                Pool::new(threads),
                None,
            )
            .expect("deep stack search")
            .expect("the bisected tree has levels")
        };
        iso_identical &= search_deep(true) == search_deep(false);
        let on_ms = time_best_ms(reps, || search_deep(true));
        let off_ms = time_best_ms(reps, || search_deep(false));
        entries.push(Entry {
            name: format!("iso_depth/deep{blocks}_collapsed"),
            wall_ms: on_ms,
            threads,
            cache_hit_rate: 0.0,
        });
        entries.push(Entry {
            name: format!("iso_depth/deep{blocks}_uncollapsed"),
            wall_ms: off_ms,
            threads,
            cache_hit_rate: 0.0,
        });
        let ratio = off_ms / on_ms;
        if blocks == *iso_depths.last().expect("non-empty depth sweep") {
            iso_speedup = ratio;
        }
        println!(
            "  deep{blocks:<3} collapsed {on_ms:9.3} ms, uncollapsed {off_ms:9.3} ms ({ratio:.2}x)"
        );
    }
    println!("  bit-identical: {iso_identical}");

    // Live-replanning supervisor reaction. Two rungs are timed:
    //
    //   hold   — the steady-state event→serving-decision latency: a
    //            within-tolerance degrade arrives, the supervisor folds
    //            it, simulates the incumbent on the degraded tree and
    //            decides to hold. This is the common case under jitter
    //            and must stay a small fraction of planning from
    //            scratch — gated (outside --quick) at <= 10% of a cold
    //            plan of the same network on the same array.
    //   replan — the full excursion: a forced Degrade/Recover round
    //            trip, settled after every event so both decisions
    //            replan from the healthy baseline through the
    //            supervisor's persistent warm cache (reported, not
    //            gated; the round trip restores the pre-excursion
    //            state, and the recovered plan must be bit-identical
    //            to the healthy baseline).
    let sup_cold_ms = time_best_ms(reps, || {
        Planner::builder(&r50, &hetero)
            .threads(threads)
            .build()
            .expect("resnet50 configures cleanly")
            .plan(Strategy::AccPar)
            .expect("cold plan")
    });
    let mut supervisor = Supervisor::new(
        &r50,
        &hetero,
        None,
        SuperviseConfig {
            threads: Some(threads),
            ..SuperviseConfig::default()
        },
    )
    .expect("supervisor builds");
    let mut sup_clock = 0.0_f64;
    let excursion = |sup: &mut Supervisor, clock: &mut f64| {
        for kind in [
            HealthEventKind::Degrade { leaf: 0, factor: 0.5 },
            HealthEventKind::Recover { leaf: 0 },
        ] {
            *clock += 1.0;
            sup.observe(HealthEvent { at: *clock, kind }).expect("health event observed");
            sup.settle().expect("supervised decision");
        }
    };
    excursion(&mut supervisor, &mut sup_clock); // warm the supervisor's cache
    let replan_ms =
        time_best_ms(reps, || excursion(&mut supervisor, &mut sup_clock)) / 2.0;
    // The hold rung: mild degrades (well inside the 1.25x tolerance
    // band) spaced past the debounce window, so every `observe` decides
    // the previous event without searching. The factor alternates so
    // consecutive events are distinct; set-semantics folding keeps the
    // fault set at one entry throughout.
    let mut held = 0usize;
    sup_clock += 1.0;
    supervisor
        .observe(HealthEvent {
            at: sup_clock,
            kind: HealthEventKind::Degrade { leaf: 0, factor: 0.97 },
        })
        .expect("health event observed");
    let hold_reps = if quick { 3 } else { 20 };
    let hold_ms = time_best_ms(hold_reps, || {
        sup_clock += 1.0;
        let factor = if (sup_clock as u64).is_multiple_of(2) { 0.97 } else { 0.96 };
        supervisor
            .observe(HealthEvent {
                at: sup_clock,
                kind: HealthEventKind::Degrade { leaf: 0, factor },
            })
            .expect("health event observed");
        held += 1;
    });
    assert!(
        supervisor
            .decisions()
            .iter()
            .rev()
            .take(held)
            .all(|d| d.action == accpar_core::SuperviseAction::Hold),
        "mild degrades must land on the hold rung"
    );
    // Restore the supervisor to clean health and check it re-promotes
    // the healthy baseline bit for bit.
    sup_clock += 1.0;
    supervisor
        .observe(HealthEvent { at: sup_clock, kind: HealthEventKind::Recover { leaf: 0 } })
        .expect("health event observed");
    supervisor.settle().expect("supervised decision");
    let supervise_recovered = supervisor.plan() == Some(supervisor.healthy_plan());
    let supervise_reaction_pct = hold_ms / sup_cold_ms * 100.0;
    entries.push(Entry {
        name: "supervise/resnet50_cold_plan".into(),
        wall_ms: sup_cold_ms,
        threads,
        cache_hit_rate: 0.0,
    });
    entries.push(Entry {
        name: "supervise/resnet50_hold_reaction".into(),
        wall_ms: hold_ms,
        threads,
        cache_hit_rate: 0.0,
    });
    entries.push(Entry {
        name: "supervise/resnet50_replan_excursion".into(),
        wall_ms: replan_ms,
        threads,
        cache_hit_rate: 0.0,
    });
    println!(
        "supervisor reaction (resnet50): cold plan {sup_cold_ms:.3} ms, hold {:.1} us ({supervise_reaction_pct:.2}% of cold), replan excursion {replan_ms:.3} ms, recovered to healthy plan: {supervise_recovered}",
        hold_ms * 1e3
    );

    let json = Json::obj(vec![
        ("bench", Json::str("planner")),
        ("quick", Json::Bool(quick)),
        ("batch", Json::from(batch)),
        ("zoo_speedup", Json::from(speedup)),
        ("zoo_speedup_cold", Json::from(cold_speedup)),
        ("bit_identical", Json::Bool(identical)),
        ("anytime_overhead_pct", Json::from(anytime_overhead_pct)),
        ("anytime_bit_identical", Json::Bool(armed_identical)),
        ("des_speedup", Json::from(des_speedup)),
        ("iso_speedup", Json::from(iso_speedup)),
        ("iso_bit_identical", Json::Bool(iso_identical)),
        ("supervise_reaction_pct", Json::from(supervise_reaction_pct)),
        ("supervise_recovered", Json::Bool(supervise_recovered)),
        ("serve_cache_hit_us", Json::from(hit_ms * 1e3)),
        (
            "cache_validation_overhead_pct",
            Json::from(cache_validation_overhead_pct),
        ),
        ("cache_hit_bit_identical", Json::Bool(hit_identical)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("name", Json::str(&e.name)),
                            ("wall_ms", Json::from(e.wall_ms)),
                            ("threads", Json::from(e.threads)),
                            ("cache_hit_rate", Json::from(e.cache_hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out, json.pretty() + "\n").expect("write BENCH json");
    println!("wrote {out}");

    // Optional fully traced VGG-16 plan + simulation, after every timing
    // leg so instrumentation cannot skew the numbers above. The global
    // obs additionally routes pool / cost-model / DES counters that are
    // recorded outside any one planner.
    if let Some(path) = &trace_json {
        let file = std::fs::File::create(path).expect("create trace file");
        let subscriber = Arc::new(JsonLines::new(std::io::BufWriter::new(file)));
        let obs = Obs::new(Arc::clone(&subscriber));
        accpar_obs::install_global(obs.clone());
        let traced = Planner::builder(&vgg, &hetero)
            .threads(threads)
            .obs(obs.clone())
            .build()
            .expect("vgg16 configures cleanly")
            .plan(Strategy::AccPar)
            .expect("traced plan");
        // One DES simulation under the installed global obs, so the
        // trace carries the `des.*` vocabulary for `--expect-des`.
        simulate_des(&config, &view, &plan, &big_tree, None).expect("traced des sim");
        obs.emit_metrics();
        subscriber.flush();
        println!(
            "wrote {path} (vgg16 on 4+4 boards, {} layers, modeled {:.3} ms)",
            traced.plan().plan().len(),
            traced.modeled_cost() * 1e3
        );
    }

    // A budget-stopped trace for `trace_check --expect-partial`: the
    // node budget covers exactly the root level, so the children fall
    // back and the trace carries `plan.partial` / `plan.level_fallback`.
    if let Some(path) = &partial_trace_json {
        let file = std::fs::File::create(path).expect("create partial trace file");
        let subscriber = Arc::new(JsonLines::new(std::io::BufWriter::new(file)));
        let obs = Obs::new(Arc::clone(&subscriber));
        let outcome = Planner::builder(&vgg, &hetero)
            .threads(threads)
            .obs(obs.clone())
            .build()
            .expect("vgg16 configures cleanly")
            .plan_with_budget(Strategy::AccPar, &Budget::unlimited().max_nodes(vgg_rows))
            .expect("anytime plan");
        obs.emit_metrics();
        subscriber.flush();
        let PlanOutcome::Partial(partial) = outcome else {
            eprintln!("FAIL: the root-only budget unexpectedly completed the search");
            return ExitCode::FAILURE;
        };
        println!(
            "wrote {path} (partial vgg16: {:.0}% solved, stop: {})",
            partial.completeness() * 100.0,
            partial.reason()
        );
    }

    // A traced cache miss + validated hit for `trace_check
    // --expect-cache-hit`: the trace carries `cache.miss` / `cache.hit`
    // counters and the `cache.validate` span with its outcome event.
    if let Some(path) = &cache_trace_json {
        let file = std::fs::File::create(path).expect("create cache trace file");
        let subscriber = Arc::new(JsonLines::new(std::io::BufWriter::new(file)));
        let obs = Obs::new(Arc::clone(&subscriber));
        let traced_cache = Arc::new(PlanCache::memory(64).with_obs(obs.clone()));
        let traced_planner = Planner::builder(&vgg, &hetero)
            .threads(threads)
            .obs(obs.clone())
            .plan_cache(Arc::clone(&traced_cache))
            .build()
            .expect("vgg16 configures cleanly");
        for expected in [CacheOutcome::Miss, CacheOutcome::Hit] {
            let (_, outcome) = traced_planner
                .plan_with_budget_cached(Strategy::AccPar, &Budget::unlimited())
                .expect("traced cached plan");
            assert_eq!(outcome, expected, "traced run must miss then hit");
        }
        obs.emit_metrics();
        subscriber.flush();
        println!(
            "wrote {path} (vgg16 cache miss + validated hit, {} record cached)",
            traced_cache.len()
        );
    }

    // A traced collapsed plan for `trace_check --expect-iso`: a deep
    // encoder stack collapses hard, so the trace carries the `plan.iso`
    // span, the `iso.classes` / `iso.stamped_rows` counters and the
    // `iso.collapse_ratio` gauge.
    if let Some(path) = &iso_trace_json {
        let file = std::fs::File::create(path).expect("create iso trace file");
        let subscriber = Arc::new(JsonLines::new(std::io::BufWriter::new(file)));
        let obs = Obs::new(Arc::clone(&subscriber));
        let deep = zoo::deep_stack(iso_batch, 128, 48).expect("deep stack builds");
        let traced = Planner::builder(&deep, &hetero)
            .threads(threads)
            .obs(obs.clone())
            .build()
            .expect("deep stack configures cleanly")
            .plan(Strategy::AccPar)
            .expect("traced collapsed plan");
        obs.emit_metrics();
        subscriber.flush();
        println!(
            "wrote {path} (deep48 on 4+4 boards, {} layers, modeled {:.3} ms)",
            traced.plan().plan().len(),
            traced.modeled_cost() * 1e3
        );
    }

    // A traced supervised run for `trace_check --expect-health`: one
    // traced plan carries the base contract (plan spans, decisions, the
    // sim report), then a short seeded health timeline through the
    // supervisor adds the `health.event` / `supervise.decision` events,
    // the `supervise.decide` span and the `supervise.*` metrics (the
    // final settle always replans, so `supervise.replans` is present).
    if let Some(path) = &health_trace_json {
        let file = std::fs::File::create(path).expect("create health trace file");
        let subscriber = Arc::new(JsonLines::new(std::io::BufWriter::new(file)));
        let obs = Obs::new(Arc::clone(&subscriber));
        Planner::builder(&vgg, &hetero)
            .threads(threads)
            .obs(obs.clone())
            .build()
            .expect("vgg16 configures cleanly")
            .plan(Strategy::AccPar)
            .expect("traced plan");
        let mut traced_sup = Supervisor::new(
            &vgg,
            &hetero,
            None,
            SuperviseConfig {
                threads: Some(threads),
                obs: obs.clone(),
                ..SuperviseConfig::default()
            },
        )
        .expect("supervisor builds");
        let schedule = HealthSchedule::random(
            11,
            traced_sup.leaf_count(),
            traced_sup.cut_count(),
            12,
        )
        .expect("schedule builds");
        let traced_report = traced_sup.run(&schedule).expect("supervised run");
        obs.emit_metrics();
        subscriber.flush();
        println!(
            "wrote {path} (vgg16 supervised through {} health events: {} decisions, {} replans)",
            traced_report.events,
            traced_report.decisions.len(),
            traced_report.replans
        );
    }

    if !identical {
        eprintln!("FAIL: optimized engine's plans are not bit-identical to serial");
        return ExitCode::FAILURE;
    }
    if !iso_identical {
        eprintln!("FAIL: collapsed plans are not bit-identical to uncollapsed plans");
        return ExitCode::FAILURE;
    }
    if !quick && iso_speedup < 5.0 {
        eprintln!(
            "FAIL: isomorphism collapse is only {iso_speedup:.2}x on the 96-block stack (target >= 5x)"
        );
        return ExitCode::FAILURE;
    }
    if !hit_identical {
        eprintln!("FAIL: a validated cache hit served a plan that differs from the cold plan");
        return ExitCode::FAILURE;
    }
    if !quick && cache_validation_overhead_pct > 5.0 {
        eprintln!(
            "FAIL: a steady-state served hit (admission validation included) costs {cache_validation_overhead_pct:.2}% of a cold plan, exceeding the 5% target"
        );
        return ExitCode::FAILURE;
    }
    if !armed_identical {
        eprintln!("FAIL: the armed-budget plan is not bit-identical to the unbudgeted plan");
        return ExitCode::FAILURE;
    }
    if !quick && anytime_overhead_pct > 2.0 {
        eprintln!(
            "FAIL: armed-budget overhead {anytime_overhead_pct:.2}% exceeds the 2% target"
        );
        return ExitCode::FAILURE;
    }
    if !supervise_recovered {
        eprintln!(
            "FAIL: the supervisor did not return to the healthy baseline plan after recovery"
        );
        return ExitCode::FAILURE;
    }
    if !quick && supervise_reaction_pct > 10.0 {
        eprintln!(
            "FAIL: the supervisor's hold reaction {hold_ms:.3} ms is {supervise_reaction_pct:.2}% of a cold plan, exceeding the 10% target"
        );
        return ExitCode::FAILURE;
    }
    if !quick && des_speedup < 10.0 {
        eprintln!(
            "FAIL: DES leg {des_ms:.3} ms is only {des_speedup:.2}x over the pre-overhaul {DES_PRE_OVERHAUL_MS:.1} ms baseline (target >= 10x)"
        );
        return ExitCode::FAILURE;
    }
    if let Some(ceiling) = ceiling_ms {
        if cold_ms > ceiling {
            eprintln!("FAIL: zoo planning {cold_ms:.1} ms exceeds ceiling {ceiling:.1} ms");
            return ExitCode::FAILURE;
        }
    }
    if let Some(ceiling) = des_ceiling_ms {
        if des_ms > ceiling {
            eprintln!("FAIL: DES leg {des_ms:.3} ms exceeds ceiling {ceiling:.1} ms");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
