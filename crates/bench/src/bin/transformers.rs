//! Regenerates the transformer-zoo speedup table: DP / OWT / HyPar /
//! AccPar on the heterogeneous array (128 TPU-v2 + 128 TPU-v3),
//! batch 512 — the Figure 5 protocol applied to BERT-base, GPT-2-small,
//! and ViT-B/16. See EXPERIMENTS.md "Extensions beyond the paper".

use accpar_bench::{render, transformer_speedups};

fn main() {
    let rows = transformer_speedups();
    print!(
        "{}",
        render::speedup_table(
            "Transformer zoo — heterogeneous array (128x TPU-v2 + 128x TPU-v3, batch 512)",
            &rows,
            None,
        )
    );
}
