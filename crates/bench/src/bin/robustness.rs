//! Robustness ablation: AccPar vs DP/OWT/HyPar under injected faults
//! (stragglers, degraded cut links, transient stalls, board dropout),
//! and how much the graceful replanner recovers.
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin robustness [network] [seed]
//! cargo run --release -p accpar-bench --bin robustness -- alexnet 42 --json
//! ```
//!
//! Everything is seeded: the same arguments print byte-identical output.

use accpar_bench::json::Json;
use accpar_bench::robustness::{robustness_ablation, RobustnessRow, Scenario};
use accpar_hw::AcceleratorArray;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let network = positional.first().map_or("alexnet", |s| s.as_str());
    let seed: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xacc9a5);

    // A small heterogeneous slice of the paper's array: 4 TPU-v2 +
    // 4 TPU-v3 boards, bisected to board granularity.
    let (v2, v3, levels, batch) = (4usize, 4usize, 3usize, 512usize);
    let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
    let results = match robustness_ablation(network, batch, &array, levels, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("robustness ablation failed: {e}");
            std::process::exit(1);
        }
    };

    if json {
        print_json(network, seed, &results);
    } else {
        print_table(network, v2, v3, seed, &results);
    }
}

fn print_table(
    network: &str,
    v2: usize,
    v3: usize,
    seed: u64,
    results: &[(Scenario, Vec<RobustnessRow>)],
) {
    println!(
        "=== Robustness: {network} on {v2}x TPU-v2 + {v3}x TPU-v3 (seed {seed}) ==="
    );
    for (scenario, rows) in results {
        println!("\n--- {} ---", scenario.name);
        for fault in scenario.faults.faults() {
            println!("    fault: {fault}");
        }
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>10} {:>9}",
            "scheme", "nominal ms", "degraded ms", "replanned ms", "recovery", "replanned"
        );
        for row in rows {
            let degraded = row
                .degraded_ms
                .map_or_else(|| format!("{:>12}", "n/a"), |d| format!("{d:>12.3}"));
            let recovery = row
                .recovery()
                .map_or_else(|| format!("{:>10}", "n/a"), |r| format!("{r:>9.2}x"));
            println!(
                "{:<8} {:>12.3} {degraded} {:>12.3} {recovery} {:>9}",
                row.strategy.to_string(),
                row.nominal_ms,
                row.replanned_ms,
                if row.replanned { "yes" } else { "no" }
            );
        }
    }
}

fn print_json(network: &str, seed: u64, results: &[(Scenario, Vec<RobustnessRow>)]) {
    let scenarios: Vec<Json> = results
        .iter()
        .map(|(scenario, rows)| {
            let rows: Vec<Json> = rows
                .iter()
                .map(|row| {
                    Json::obj(vec![
                        ("strategy", Json::str(row.strategy.to_string())),
                        ("nominal_ms", Json::from(row.nominal_ms)),
                        (
                            "degraded_ms",
                            row.degraded_ms.map_or(Json::Null, Json::Num),
                        ),
                        ("replanned_ms", Json::from(row.replanned_ms)),
                        ("recovery", row.recovery().map_or(Json::Null, Json::Num)),
                        ("replanned", Json::Bool(row.replanned)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("name", Json::str(&scenario.name)),
                (
                    "faults",
                    Json::Arr(
                        scenario
                            .faults
                            .faults()
                            .iter()
                            .map(|f| Json::str(f.to_string()))
                            .collect(),
                    ),
                ),
                ("rows", Json::Arr(rows)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("network", Json::str(network)),
        ("seed", Json::from(seed as f64)),
        ("scenarios", Json::Arr(scenarios)),
    ]);
    println!("{}", doc.pretty());
}
