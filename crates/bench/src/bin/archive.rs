//! Writes the full evaluation's data to `experiments.json` for archival
//! and external plotting.
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin archive
//! ```

use accpar_bench::{figure5, figure6, figure7, figure8, geomean};
use std::fs;

fn main() -> std::io::Result<()> {
    let fig5 = figure5();
    let fig6 = figure6();
    let json = serde_json::json!({
        "setup": {
            "batch": accpar_bench::PAPER_BATCH,
            "heterogeneous_array": "128x tpu-v2 + 128x tpu-v3",
            "homogeneous_array": "128x tpu-v3",
        },
        "figure5": {
            "rows": fig5,
            "geomeans": (0..4).map(|i| geomean(&fig5, i)).collect::<Vec<_>>(),
            "paper_geomeans": [1.00, 2.98, 3.78, 6.30],
        },
        "figure6": {
            "rows": fig6,
            "geomeans": (0..4).map(|i| geomean(&fig6, i)).collect::<Vec<_>>(),
            "paper_geomeans": [1.00, 2.94, 3.51, 3.86],
        },
        "figure7": figure7(),
        "figure8": figure8(),
    });
    fs::write(
        "experiments.json",
        serde_json::to_string_pretty(&json).expect("serializable"),
    )?;
    println!("wrote experiments.json");
    Ok(())
}
