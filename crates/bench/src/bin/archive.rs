//! Writes the full evaluation's data to `experiments.json` for archival
//! and external plotting.
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin archive
//! ```

use accpar_bench::json::Json;
use accpar_bench::{figure5, figure6, figure7, figure8, geomean, SpeedupRow};
use std::fs;

fn speedup_rows_json(rows: &[SpeedupRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("network", Json::str(&r.network)),
                    ("step_ms", Json::from(r.step_ms.to_vec())),
                    ("speedups", Json::from(r.speedups.to_vec())),
                ])
            })
            .collect(),
    )
}

fn main() -> std::io::Result<()> {
    let fig5 = figure5();
    let fig6 = figure6();
    let fig7 = figure7();
    let fig8 = figure8();
    let json = Json::obj(vec![
        (
            "setup",
            Json::obj(vec![
                ("batch", Json::from(accpar_bench::PAPER_BATCH)),
                (
                    "heterogeneous_array",
                    Json::str("128x tpu-v2 + 128x tpu-v3"),
                ),
                ("homogeneous_array", Json::str("128x tpu-v3")),
            ]),
        ),
        (
            "figure5",
            Json::obj(vec![
                ("rows", speedup_rows_json(&fig5)),
                (
                    "geomeans",
                    Json::from((0..4).map(|i| geomean(&fig5, i)).collect::<Vec<_>>()),
                ),
                ("paper_geomeans", Json::from(vec![1.00, 2.98, 3.78, 6.30])),
            ]),
        ),
        (
            "figure6",
            Json::obj(vec![
                ("rows", speedup_rows_json(&fig6)),
                (
                    "geomeans",
                    Json::from((0..4).map(|i| geomean(&fig6, i)).collect::<Vec<_>>()),
                ),
                ("paper_geomeans", Json::from(vec![1.00, 2.94, 3.51, 3.86])),
            ]),
        ),
        (
            "figure7",
            Json::obj(vec![
                (
                    "layer_names",
                    Json::Arr(fig7.layer_names.iter().map(Json::str).collect()),
                ),
                (
                    "counts",
                    Json::Arr(
                        fig7.counts
                            .iter()
                            .map(|c| Json::from(c.to_vec()))
                            .collect(),
                    ),
                ),
                ("top_level", Json::str(&fig7.top_level)),
            ]),
        ),
        (
            "figure8",
            Json::Arr(
                fig8.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("levels", Json::from(r.levels)),
                            ("speedups", Json::from(r.speedups.to_vec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    fs::write("experiments.json", json.pretty())?;
    println!("wrote experiments.json");
    Ok(())
}
