//! Regenerates Figure 7: the partition types AccPar selects for each
//! weighted AlexNet layer with 7 hierarchy levels and batch 128.

use accpar_bench::{figure7, render};

fn main() {
    print!("{}", render::figure7_table(&figure7()));
}
