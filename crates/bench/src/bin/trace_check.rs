//! Validates a JSON-lines trace produced by `--trace-json`.
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin perf_baseline -- \
//!     --quick --trace-json trace.jsonl
//! cargo run --release -p accpar-bench --bin trace_check -- trace.jsonl
//! ```
//!
//! Checks, line by line, that:
//!
//! * every line parses as a JSON object with a known `kind`
//!   (`span_start`, `span_end`, `event`, `metric`);
//! * every `span_end` closes a started span, and every span `parent` /
//!   event `span` reference points to a started span;
//! * the trace contains the records the observability layer promises
//!   for a planner run: a `plan` span, nested `plan.level` spans, one
//!   `plan.decision` event per (plan-tree node, layer), a
//!   `plan.cache_stats` event, a `sim.report` event, and metric records
//!   for the memo (`cost.cache.hits` / `cost.cache.misses`) and the
//!   simulator (`sim.steps`);
//! * every `plan.decision` payload is well-formed: `ptype` is one of the
//!   paper's three partition types, `layer` / `node` are integers, and
//!   `name` is a non-empty string (this covers the lowered attention
//!   projections and embedding layers too — new layer kinds must still
//!   speak the same decision vocabulary);
//! * every `plan.partial` / `plan.cancelled` payload is well-formed:
//!   `completeness` in `[0, 1]`, `reason` one of `deadline` /
//!   `node-budget` / `cancelled` (and `cancelled` for a
//!   `plan.cancelled` event), integer `solved_levels` /
//!   `fallback_levels`, boolean `baseline_adopted`.
//!
//! With `--expect-partial`, additionally fails unless the trace holds at
//! least one `plan.partial` event and a `plan.level_fallback` event —
//! the shape a budget-stopped anytime run must leave behind.
//!
//! The plan-cache vocabulary is schema-checked wherever it appears:
//! every `cache.validate` span carries a 32-hex-digit `key`, a
//! `strategy` string and an integer `levels`; every
//! `cache.validate.outcome` event carries a `result` in `hit` / `miss` /
//! `invalid` / `poisoned` / `disabled` (and, for a hit, a numeric `cost`
//! plus a boolean `fresh_sim`); `cache.quarantine` / `cache.degraded` /
//! `cache.demote` payloads are shape-checked; every `serve.shed` event
//! carries a `shed_reason` of `queue-full` or `budget-expiry`. With
//! `--expect-cache-hit`, additionally fails unless the trace holds a
//! `cache.validate` span, a `cache.validate.outcome` event with
//! `result: "hit"`, and a `cache.hit` metric — the shape a served cache
//! hit must leave behind.
//!
//! The DES vocabulary is schema-checked wherever it appears: every
//! `des.*` metric must use a known name — the counters `des.sims`,
//! `des.tasks` and `des.dep_edges` (non-negative integer `value`) and
//! the build/schedule phase timers `des.build_us` / `des.schedule_us`
//! (histograms with integer `count >= 1` and numeric `sum >= 0`). With
//! `--expect-des`, additionally fails unless the trace holds all five —
//! the shape a traced discrete-event simulation must leave behind.
//!
//! The isomorphism-collapse vocabulary is schema-checked wherever it
//! appears: every `plan.iso` span carries integer `classes >= 1` and
//! `layers >= 1` fields and a `collapse_ratio` in `(0, 1]`; every
//! `iso.*` metric must use a known name — the counters `iso.classes`
//! and `iso.stamped_rows` (non-negative integer `value`) and the gauge
//! `iso.collapse_ratio` (numeric `value` in `(0, 1]`). With
//! `--expect-iso`, additionally fails unless the trace holds a
//! `plan.iso` span and all three metrics — the shape a traced collapsed
//! planner run must leave behind.
//!
//! The live-replanning vocabulary is schema-checked wherever it
//! appears: every `supervise.decide` span carries an integer `events`
//! and a boolean `reconcile`; every `health.event` payload carries a
//! `kind` in `degrade` / `fail` / `recover` / `bandwidth-jitter`, an
//! integer `target` and a numeric `at >= 0`; every `supervise.decision`
//! payload carries an `action` in `hold` / `adopt` / `keep` /
//! `promote` / `fallback` / `shed`, integer `events`, numeric
//! `at >= 0`, a boolean `replanned` and a positive `degradation`
//! (`null` for a shed decision — non-finite values serialize as null);
//! every `supervise.*` metric must use a known name — the counters
//! `supervise.events` / `.debounced` / `.decisions` / `.replans` /
//! `.retries` / `.held` / `.adopted` / `.kept` / `.promotions` /
//! `.fallbacks` / `.sheds`, the `supervise.degradation` gauge and the
//! `supervise.reaction_ns` histogram. With `--expect-health`,
//! additionally fails unless the trace holds a `supervise.decide` span,
//! a `health.event` and a `supervise.decision` event, and the
//! `supervise.events` / `supervise.decisions` / `supervise.replans`
//! metrics — the shape a traced supervised run must leave behind.
//!
//! Exits non-zero with one message per violation.

use accpar_bench::json::Json;
use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

/// Integer span id out of a `Json` number, if present and integral.
fn id_of(record: &Json, key: &str) -> Option<u64> {
    let v = record.get(key)?.as_f64()?;
    if v.fract() == 0.0 && v >= 0.0 {
        Some(v as u64)
    } else {
        None
    }
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut expect_partial = false;
    let mut expect_cache_hit = false;
    let mut expect_des = false;
    let mut expect_iso = false;
    let mut expect_health = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expect-partial" => expect_partial = true,
            "--expect-cache-hit" => expect_cache_hit = true,
            "--expect-des" => expect_des = true,
            "--expect-iso" => expect_iso = true,
            "--expect-health" => expect_health = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: trace_check TRACE.jsonl [--expect-partial] [--expect-cache-hit] [--expect-des] [--expect-iso] [--expect-health]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: trace_check TRACE.jsonl [--expect-partial] [--expect-cache-hit] [--expect-des] [--expect-iso] [--expect-health]"
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut errors: Vec<String> = Vec::new();
    let mut started: HashSet<u64> = HashSet::new();
    let mut ended: HashSet<u64> = HashSet::new();
    let mut span_names: HashMap<u64, String> = HashMap::new();
    let mut event_counts: HashMap<String, usize> = HashMap::new();
    let mut metric_names: HashSet<String> = HashSet::new();
    let mut cache_hit_outcomes = 0usize;
    let mut lines = 0usize;

    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let record = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => {
                errors.push(format!("line {no}: not valid JSON: {e}"));
                continue;
            }
        };
        let kind = match record.get("kind").and_then(Json::as_str) {
            Some(k) => k.to_string(),
            None => {
                errors.push(format!("line {no}: record has no `kind`"));
                continue;
            }
        };
        match kind.as_str() {
            "span_start" => {
                let Some(id) = id_of(&record, "id") else {
                    errors.push(format!("line {no}: span_start has no integer `id`"));
                    continue;
                };
                if !started.insert(id) {
                    errors.push(format!("line {no}: span id {id} started twice"));
                }
                if let Some(name) = record.get("name").and_then(Json::as_str) {
                    span_names.insert(id, name.to_string());
                    if name == "cache.validate" {
                        let fields =
                            record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                        match fields.get("key").and_then(Json::as_str) {
                            Some(key)
                                if key.len() == 32
                                    && key.chars().all(|c| c.is_ascii_hexdigit()) => {}
                            _ => errors.push(format!(
                                "line {no}: cache.validate `key` is not 32 hex digits"
                            )),
                        }
                        match fields.get("strategy").and_then(Json::as_str) {
                            Some(s) if !s.is_empty() => {}
                            _ => errors.push(format!(
                                "line {no}: cache.validate has no non-empty `strategy`"
                            )),
                        }
                        if id_of(&fields, "levels").is_none() {
                            errors.push(format!(
                                "line {no}: cache.validate has no integer `levels`"
                            ));
                        }
                    }
                    if name == "plan.iso" {
                        let fields =
                            record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                        for field in ["classes", "layers"] {
                            match id_of(&fields, field) {
                                Some(v) if v >= 1 => {}
                                _ => errors.push(format!(
                                    "line {no}: plan.iso has no integer `{field}` >= 1"
                                )),
                            }
                        }
                        match fields.get("collapse_ratio").and_then(Json::as_f64) {
                            Some(r) if r > 0.0 && r <= 1.0 => {}
                            _ => errors.push(format!(
                                "line {no}: plan.iso `collapse_ratio` is not in (0, 1]"
                            )),
                        }
                    }
                    if name == "supervise.decide" {
                        let fields =
                            record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                        if id_of(&fields, "events").is_none() {
                            errors.push(format!(
                                "line {no}: supervise.decide has no integer `events`"
                            ));
                        }
                        if fields.get("reconcile").and_then(Json::as_bool).is_none() {
                            errors.push(format!(
                                "line {no}: supervise.decide has no boolean `reconcile`"
                            ));
                        }
                    }
                } else {
                    errors.push(format!("line {no}: span_start has no `name`"));
                }
                if let Some(parent) = id_of(&record, "parent") {
                    if !started.contains(&parent) {
                        errors.push(format!(
                            "line {no}: span {id} references unstarted parent {parent}"
                        ));
                    }
                }
            }
            "span_end" => {
                let Some(id) = id_of(&record, "id") else {
                    errors.push(format!("line {no}: span_end has no integer `id`"));
                    continue;
                };
                if !started.contains(&id) {
                    errors.push(format!("line {no}: span_end for unstarted span {id}"));
                }
                if !ended.insert(id) {
                    errors.push(format!("line {no}: span id {id} ended twice"));
                }
                if id_of(&record, "dur_ns").is_none() {
                    errors.push(format!("line {no}: span_end has no integer `dur_ns`"));
                }
            }
            "event" => {
                let Some(name) = record.get("name").and_then(Json::as_str) else {
                    errors.push(format!("line {no}: event has no `name`"));
                    continue;
                };
                *event_counts.entry(name.to_string()).or_insert(0) += 1;
                if let Some(span) = id_of(&record, "span") {
                    if !started.contains(&span) {
                        errors.push(format!(
                            "line {no}: event `{name}` references unstarted span {span}"
                        ));
                    }
                }
                if name == "plan.decision" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("ptype").and_then(Json::as_str) {
                        Some("Type-I" | "Type-II" | "Type-III") => {}
                        Some(other) => errors.push(format!(
                            "line {no}: plan.decision has unknown ptype `{other}`"
                        )),
                        None => errors
                            .push(format!("line {no}: plan.decision has no string `ptype`")),
                    }
                    for field in ["layer", "node"] {
                        if id_of(&fields, field).is_none() {
                            errors.push(format!(
                                "line {no}: plan.decision has no integer `{field}`"
                            ));
                        }
                    }
                    match fields.get("name").and_then(Json::as_str) {
                        Some(n) if !n.is_empty() => {}
                        _ => errors.push(format!(
                            "line {no}: plan.decision has no non-empty `name`"
                        )),
                    }
                    match fields.get("ratio").and_then(Json::as_f64) {
                        Some(r) if (0.0..=1.0).contains(&r) => {}
                        _ => errors.push(format!(
                            "line {no}: plan.decision `ratio` is not in [0, 1]"
                        )),
                    }
                }
                if name == "cache.validate.outcome" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("result").and_then(Json::as_str) {
                        Some("hit") => {
                            cache_hit_outcomes += 1;
                            match fields.get("cost").and_then(Json::as_f64) {
                                Some(c) if c >= 0.0 => {}
                                _ => errors.push(format!(
                                    "line {no}: a hit outcome has no non-negative `cost`"
                                )),
                            }
                            if fields.get("fresh_sim").and_then(Json::as_bool).is_none() {
                                errors.push(format!(
                                    "line {no}: a hit outcome has no boolean `fresh_sim`"
                                ));
                            }
                        }
                        Some("miss" | "invalid" | "poisoned" | "disabled") => {}
                        Some(other) => errors.push(format!(
                            "line {no}: cache.validate.outcome has unknown result `{other}`"
                        )),
                        None => errors.push(format!(
                            "line {no}: cache.validate.outcome has no string `result`"
                        )),
                    }
                }
                if name == "serve.shed" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("shed_reason").and_then(Json::as_str) {
                        Some("queue-full" | "budget-expiry") => {}
                        Some(other) => errors.push(format!(
                            "line {no}: serve.shed has unknown shed_reason `{other}`"
                        )),
                        None => errors.push(format!(
                            "line {no}: serve.shed has no string `shed_reason`"
                        )),
                    }
                }
                if name == "cache.quarantine" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("reason").and_then(Json::as_str) {
                        Some(r) if !r.is_empty() => {}
                        _ => errors.push(format!(
                            "line {no}: cache.quarantine has no non-empty `reason`"
                        )),
                    }
                    if id_of(&fields, "bytes").is_none() {
                        errors.push(format!(
                            "line {no}: cache.quarantine has no integer `bytes`"
                        ));
                    }
                }
                if name == "cache.degraded" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    for field in ["op", "error"] {
                        match fields.get(field).and_then(Json::as_str) {
                            Some(v) if !v.is_empty() => {}
                            _ => errors.push(format!(
                                "line {no}: cache.degraded has no non-empty `{field}`"
                            )),
                        }
                    }
                }
                if name == "cache.demote" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("strategy").and_then(Json::as_str) {
                        Some(s) if !s.is_empty() => {}
                        _ => errors.push(format!(
                            "line {no}: cache.demote has no non-empty `strategy`"
                        )),
                    }
                    if id_of(&fields, "faults").is_none() {
                        errors.push(format!(
                            "line {no}: cache.demote has no integer `faults`"
                        ));
                    }
                }
                if name == "health.event" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("kind").and_then(Json::as_str) {
                        Some("degrade" | "fail" | "recover" | "bandwidth-jitter") => {}
                        Some(other) => errors.push(format!(
                            "line {no}: health.event has unknown kind `{other}`"
                        )),
                        None => errors
                            .push(format!("line {no}: health.event has no string `kind`")),
                    }
                    if id_of(&fields, "target").is_none() {
                        errors.push(format!(
                            "line {no}: health.event has no integer `target`"
                        ));
                    }
                    match fields.get("at").and_then(Json::as_f64) {
                        Some(at) if at >= 0.0 => {}
                        _ => errors.push(format!(
                            "line {no}: health.event has no numeric `at` >= 0"
                        )),
                    }
                }
                if name == "supervise.decision" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("action").and_then(Json::as_str) {
                        Some("hold" | "adopt" | "keep" | "promote" | "fallback" | "shed") => {}
                        Some(other) => errors.push(format!(
                            "line {no}: supervise.decision has unknown action `{other}`"
                        )),
                        None => errors.push(format!(
                            "line {no}: supervise.decision has no string `action`"
                        )),
                    }
                    if id_of(&fields, "events").is_none() {
                        errors.push(format!(
                            "line {no}: supervise.decision has no integer `events`"
                        ));
                    }
                    match fields.get("at").and_then(Json::as_f64) {
                        Some(at) if at >= 0.0 => {}
                        _ => errors.push(format!(
                            "line {no}: supervise.decision has no numeric `at` >= 0"
                        )),
                    }
                    if fields.get("replanned").and_then(Json::as_bool).is_none() {
                        errors.push(format!(
                            "line {no}: supervise.decision has no boolean `replanned`"
                        ));
                    }
                    // A shed decision's infinite degradation serializes
                    // as null; anything servable must be positive.
                    match fields.get("degradation") {
                        Some(Json::Null) => {}
                        Some(d) if d.as_f64().is_some_and(|d| d > 0.0) => {}
                        _ => errors.push(format!(
                            "line {no}: supervise.decision `degradation` is neither positive nor null"
                        )),
                    }
                }
                if name == "plan.partial" || name == "plan.cancelled" {
                    let fields = record.get("fields").cloned().unwrap_or(Json::obj(vec![]));
                    match fields.get("completeness").and_then(Json::as_f64) {
                        Some(c) if (0.0..=1.0).contains(&c) => {}
                        _ => errors.push(format!(
                            "line {no}: {name} `completeness` is not in [0, 1]"
                        )),
                    }
                    match fields.get("reason").and_then(Json::as_str) {
                        Some("cancelled") => {}
                        Some("deadline" | "node-budget") if name == "plan.partial" => {}
                        Some(other) => errors.push(format!(
                            "line {no}: {name} has invalid reason `{other}`"
                        )),
                        None => {
                            errors.push(format!("line {no}: {name} has no string `reason`"));
                        }
                    }
                    for field in ["solved_levels", "fallback_levels"] {
                        if id_of(&fields, field).is_none() {
                            errors.push(format!("line {no}: {name} has no integer `{field}`"));
                        }
                    }
                    if fields.get("baseline_adopted").and_then(Json::as_bool).is_none() {
                        errors.push(format!(
                            "line {no}: {name} has no boolean `baseline_adopted`"
                        ));
                    }
                }
            }
            "metric" => {
                let name = match record.get("name").and_then(Json::as_str) {
                    Some(name) => {
                        metric_names.insert(name.to_string());
                        name.to_string()
                    }
                    None => {
                        errors.push(format!("line {no}: metric has no `name`"));
                        String::new()
                    }
                };
                let mtype = record.get("type").and_then(Json::as_str).map(str::to_string);
                if mtype.is_none() {
                    errors.push(format!("line {no}: metric has no `type`"));
                }
                // The des.* vocabulary is closed: three counters and two
                // phase timers, each with a fixed payload shape.
                if name.starts_with("des.") {
                    match name.as_str() {
                        "des.sims" | "des.tasks" | "des.dep_edges" => {
                            if mtype.as_deref() != Some("counter") {
                                errors.push(format!("line {no}: `{name}` is not a counter"));
                            }
                            if id_of(&record, "value").is_none() {
                                errors.push(format!(
                                    "line {no}: `{name}` has no non-negative integer `value`"
                                ));
                            }
                        }
                        "des.build_us" | "des.schedule_us" => {
                            if mtype.as_deref() != Some("histogram") {
                                errors.push(format!("line {no}: `{name}` is not a histogram"));
                            }
                            match id_of(&record, "count") {
                                Some(c) if c >= 1 => {}
                                _ => errors.push(format!(
                                    "line {no}: `{name}` has no integer `count` >= 1"
                                )),
                            }
                            match record.get("sum").and_then(Json::as_f64) {
                                Some(s) if s >= 0.0 => {}
                                _ => errors.push(format!(
                                    "line {no}: `{name}` has no numeric `sum` >= 0"
                                )),
                            }
                        }
                        other => errors.push(format!(
                            "line {no}: unknown des.* metric `{other}`"
                        )),
                    }
                }
                // The iso.* vocabulary is closed: two counters and the
                // collapse-ratio gauge, each with a fixed payload shape.
                if name.starts_with("iso.") {
                    match name.as_str() {
                        "iso.classes" | "iso.stamped_rows" => {
                            if mtype.as_deref() != Some("counter") {
                                errors.push(format!("line {no}: `{name}` is not a counter"));
                            }
                            if id_of(&record, "value").is_none() {
                                errors.push(format!(
                                    "line {no}: `{name}` has no non-negative integer `value`"
                                ));
                            }
                        }
                        "iso.collapse_ratio" => {
                            if mtype.as_deref() != Some("gauge") {
                                errors.push(format!("line {no}: `{name}` is not a gauge"));
                            }
                            match record.get("value").and_then(Json::as_f64) {
                                Some(r) if r > 0.0 && r <= 1.0 => {}
                                _ => errors.push(format!(
                                    "line {no}: `{name}` has no numeric `value` in (0, 1]"
                                )),
                            }
                        }
                        other => errors.push(format!(
                            "line {no}: unknown iso.* metric `{other}`"
                        )),
                    }
                }
                // The supervise.* vocabulary is closed: eleven
                // counters, the degradation gauge and the reaction
                // histogram, each with a fixed payload shape.
                if name.starts_with("supervise.") {
                    match name.as_str() {
                        "supervise.events" | "supervise.debounced" | "supervise.decisions"
                        | "supervise.replans" | "supervise.retries" | "supervise.held"
                        | "supervise.adopted" | "supervise.kept" | "supervise.promotions"
                        | "supervise.fallbacks" | "supervise.sheds" => {
                            if mtype.as_deref() != Some("counter") {
                                errors.push(format!("line {no}: `{name}` is not a counter"));
                            }
                            if id_of(&record, "value").is_none() {
                                errors.push(format!(
                                    "line {no}: `{name}` has no non-negative integer `value`"
                                ));
                            }
                        }
                        "supervise.degradation" => {
                            if mtype.as_deref() != Some("gauge") {
                                errors.push(format!("line {no}: `{name}` is not a gauge"));
                            }
                            // Shedding sets the gauge to infinity,
                            // which serializes as null.
                            match record.get("value") {
                                Some(Json::Null) => {}
                                Some(v) if v.as_f64().is_some_and(|v| v > 0.0) => {}
                                _ => errors.push(format!(
                                    "line {no}: `{name}` has no positive-or-null `value`"
                                )),
                            }
                        }
                        "supervise.reaction_ns" => {
                            if mtype.as_deref() != Some("histogram") {
                                errors.push(format!("line {no}: `{name}` is not a histogram"));
                            }
                            match id_of(&record, "count") {
                                Some(c) if c >= 1 => {}
                                _ => errors.push(format!(
                                    "line {no}: `{name}` has no integer `count` >= 1"
                                )),
                            }
                            match record.get("sum").and_then(Json::as_f64) {
                                Some(s) if s >= 0.0 => {}
                                _ => errors.push(format!(
                                    "line {no}: `{name}` has no numeric `sum` >= 0"
                                )),
                            }
                        }
                        other => errors.push(format!(
                            "line {no}: unknown supervise.* metric `{other}`"
                        )),
                    }
                }
            }
            other => errors.push(format!("line {no}: unknown record kind `{other}`")),
        }
    }

    for id in &started {
        if !ended.contains(id) {
            let name = span_names.get(id).map(String::as_str).unwrap_or("?");
            errors.push(format!("span {id} (`{name}`) started but never ended"));
        }
    }

    let spans_named =
        |name: &str| span_names.values().filter(|n| n.as_str() == name).count();
    for required in ["plan", "plan.level"] {
        if spans_named(required) == 0 {
            errors.push(format!("no `{required}` span in trace"));
        }
    }
    for required in ["plan.decision", "plan.cache_stats", "sim.report"] {
        if event_counts.get(required).copied().unwrap_or(0) == 0 {
            errors.push(format!("no `{required}` event in trace"));
        }
    }
    for required in ["cost.cache.hits", "cost.cache.misses", "sim.steps"] {
        if !metric_names.contains(required) {
            errors.push(format!("no `{required}` metric in trace"));
        }
    }
    if expect_partial {
        for required in ["plan.partial", "plan.level_fallback"] {
            if event_counts.get(required).copied().unwrap_or(0) == 0 {
                errors.push(format!(
                    "no `{required}` event in trace (required by --expect-partial)"
                ));
            }
        }
    }
    if expect_cache_hit {
        if spans_named("cache.validate") == 0 {
            errors.push("no `cache.validate` span in trace (required by --expect-cache-hit)".into());
        }
        if cache_hit_outcomes == 0 {
            errors.push(
                "no `cache.validate.outcome` event with result `hit` in trace (required by --expect-cache-hit)"
                    .into(),
            );
        }
        if !metric_names.contains("cache.hit") {
            errors.push("no `cache.hit` metric in trace (required by --expect-cache-hit)".into());
        }
    }
    if expect_des {
        for required in [
            "des.sims",
            "des.tasks",
            "des.dep_edges",
            "des.build_us",
            "des.schedule_us",
        ] {
            if !metric_names.contains(required) {
                errors.push(format!(
                    "no `{required}` metric in trace (required by --expect-des)"
                ));
            }
        }
    }
    if expect_iso {
        if spans_named("plan.iso") == 0 {
            errors.push("no `plan.iso` span in trace (required by --expect-iso)".into());
        }
        for required in ["iso.classes", "iso.stamped_rows", "iso.collapse_ratio"] {
            if !metric_names.contains(required) {
                errors.push(format!(
                    "no `{required}` metric in trace (required by --expect-iso)"
                ));
            }
        }
    }
    if expect_health {
        if spans_named("supervise.decide") == 0 {
            errors.push("no `supervise.decide` span in trace (required by --expect-health)".into());
        }
        for required in ["health.event", "supervise.decision"] {
            if event_counts.get(required).copied().unwrap_or(0) == 0 {
                errors.push(format!(
                    "no `{required}` event in trace (required by --expect-health)"
                ));
            }
        }
        for required in ["supervise.events", "supervise.decisions", "supervise.replans"] {
            if !metric_names.contains(required) {
                errors.push(format!(
                    "no `{required}` metric in trace (required by --expect-health)"
                ));
            }
        }
    }

    if errors.is_empty() {
        println!(
            "trace OK: {lines} records, {} spans, {} decision events, {} metrics",
            started.len(),
            event_counts.get("plan.decision").copied().unwrap_or(0),
            metric_names.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("FAIL: {e}");
        }
        eprintln!("{} violation(s) in {path}", errors.len());
        ExitCode::FAILURE
    }
}
