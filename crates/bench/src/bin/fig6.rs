//! Regenerates Figure 6: speedups of DP / OWT / HyPar / AccPar on the
//! homogeneous array (128 TPU-v3), batch 512.

use accpar_bench::{figure6, render};

fn main() {
    let rows = figure6();
    print!(
        "{}",
        render::speedup_table(
            "Figure 6 — homogeneous array (128x TPU-v3, batch 512)",
            &rows,
            Some([1.00, 2.94, 3.51, 3.86]),
        )
    );
}
