//! Runs the full evaluation: every table and figure, in paper order.
//! `cargo run --release -p accpar-bench --bin experiments`

use accpar_bench::{figure5, figure6, figure7, figure8, render, tables};

fn main() {
    println!("{}", tables::render_table3());
    println!("{}", tables::render_table4());
    println!("{}", tables::render_table5(0.5));
    println!("{}", tables::render_table6());
    println!("{}", tables::render_table7());
    println!(
        "{}",
        render::speedup_table(
            "Figure 5 — heterogeneous array (128x TPU-v2 + 128x TPU-v3, batch 512)",
            &figure5(),
            Some([1.00, 2.98, 3.78, 6.30]),
        )
    );
    println!(
        "{}",
        render::speedup_table(
            "Figure 6 — homogeneous array (128x TPU-v3, batch 512)",
            &figure6(),
            Some([1.00, 2.94, 3.51, 3.86]),
        )
    );
    println!("{}", render::figure7_table(&figure7()));
    println!("{}", render::figure8_table(&figure8()));
}
