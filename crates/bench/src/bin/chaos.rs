//! Chaos harness: replay seeded hardware health timelines through the
//! live-replanning supervisor and report MTTR, availability, replan
//! count, and steady-state degradation per (network, seed).
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin chaos [seed] [events]
//! cargo run --release -p accpar-bench --bin chaos -- 42 200 --json
//! cargo run --release -p accpar-bench --bin chaos -- --networks lenet,alexnet
//! ```
//!
//! Everything is seeded: the same arguments print byte-identical
//! output, and every row asserts terminal convergence (the settled
//! plan equals a direct replan against the terminal fault set).

use accpar_bench::chaos::{chaos_suite, ChaosRow};
use accpar_bench::json::Json;
use accpar_hw::AcceleratorArray;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let networks: Vec<String> = args
        .iter()
        .position(|a| a == "--networks")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || vec!["lenet".into(), "alexnet".into(), "vgg16".into()],
            |list| list.split(',').map(str::to_owned).collect(),
        );
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--networks" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    let seed: u64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xacc9a7);
    let events: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);

    // A small heterogeneous slice of the paper's array: 2 TPU-v2 +
    // 2 TPU-v3 boards, bisected to board granularity.
    let (v2, v3, levels, batch) = (2usize, 2usize, 2usize, 256usize);
    let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
    let names: Vec<&str> = networks.iter().map(String::as_str).collect();
    let rows = match chaos_suite(&names, batch, &array, levels, seed, events, 1) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("chaos suite failed: {e}");
            std::process::exit(1);
        }
    };

    if json {
        print_json(seed, events, &rows);
    } else {
        print_table(v2, v3, seed, events, &rows);
    }
    if rows.iter().any(|r| !r.converged) {
        eprintln!("FAIL: a supervisor's terminal plan diverged from the direct replan");
        std::process::exit(1);
    }
}

fn print_table(v2: usize, v3: usize, seed: u64, events: usize, rows: &[ChaosRow]) {
    println!(
        "=== Chaos: {events} health events on {v2}x TPU-v2 + {v3}x TPU-v3 (seed {seed}) ==="
    );
    println!(
        "{:<12} {:>7} {:>9} {:>8} {:>13} {:>8} {:>9} {:>10}",
        "network", "events", "decisions", "replans", "availability", "mttr", "steady", "converged"
    );
    for row in rows {
        let mttr = row
            .mttr
            .map_or_else(|| format!("{:>8}", "n/a"), |m| format!("{m:>8.3}"));
        println!(
            "{:<12} {:>7} {:>9} {:>8} {:>13.4} {mttr} {:>8.3}x {:>10}",
            row.network,
            row.events,
            row.decisions,
            row.replans,
            row.availability,
            row.steady_degradation,
            if row.converged { "yes" } else { "NO" }
        );
        let (hold, adopt, keep, promote, fallback, shed) = row.rungs;
        println!(
            "{:<12} rungs: hold {hold}, adopt {adopt}, keep {keep}, promote {promote}, \
             fallback {fallback}, shed {shed}",
            ""
        );
    }
}

fn print_json(seed: u64, events: usize, rows: &[ChaosRow]) {
    let rows: Vec<Json> = rows
        .iter()
        .map(|row| {
            let (hold, adopt, keep, promote, fallback, shed) = row.rungs;
            Json::obj(vec![
                ("network", Json::str(&row.network)),
                ("seed", Json::from(row.seed as f64)),
                ("events", Json::from(row.events as f64)),
                ("decisions", Json::from(row.decisions as f64)),
                ("replans", Json::from(row.replans as f64)),
                ("hold", Json::from(hold as f64)),
                ("adopt", Json::from(adopt as f64)),
                ("keep", Json::from(keep as f64)),
                ("promote", Json::from(promote as f64)),
                ("fallback", Json::from(fallback as f64)),
                ("shed", Json::from(shed as f64)),
                ("availability", Json::from(row.availability)),
                ("mttr", row.mttr.map_or(Json::Null, Json::Num)),
                ("steady_degradation", Json::from(row.steady_degradation)),
                ("converged", Json::Bool(row.converged)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("seed", Json::from(seed as f64)),
        ("schedule_events", Json::from(events as f64)),
        ("rows", Json::Arr(rows)),
    ]);
    println!("{}", doc.pretty());
}
