//! Regenerates Figure 8: VGG-19 speedup under hierarchy levels h = 2..=9
//! on the heterogeneous array.

use accpar_bench::{figure8, render};

fn main() {
    print!("{}", render::figure8_table(&figure8()));
}
