//! Regenerates Figure 5: speedups of DP / OWT / HyPar / AccPar on the
//! heterogeneous array (128 TPU-v2 + 128 TPU-v3), batch 512.

use accpar_bench::{figure5, render};

fn main() {
    let rows = figure5();
    print!(
        "{}",
        render::speedup_table(
            "Figure 5 — heterogeneous array (128x TPU-v2 + 128x TPU-v3, batch 512)",
            &rows,
            Some([1.00, 2.98, 3.78, 6.30]),
        )
    );
}
