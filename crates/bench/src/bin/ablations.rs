//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Ratio solver** — the paper's Eq. 10 linear balance versus the
//!    exact balance honoring Table 4's ratio-independent psum term.
//! 2. **HyPar variants** — the faithful baseline versus the strengthened
//!    scale-aware multi-path variant (how much of AccPar's ResNet edge
//!    comes from §5.2 + scale-awareness alone).
//! 3. **Memory model** — roofline versus compute-only phases in the
//!    simulator.
//! 4. **First-layer backward** — including versus eliding the backward
//!    phase of the first layer.
//! 5. **Bulk-synchronous vs discrete-event execution** — how much time
//!    the BSP barriers cost relative to a dependency-driven schedule
//!    with communication/computation overlap.

use accpar_core::baselines::{hypar_multipath_plan, hypar_plan};
use accpar_core::{Planner, Strategy};
use accpar_cost::RatioSolver;
use accpar_dnn::zoo;
use accpar_hw::AcceleratorArray;
use accpar_sim::{simulate_des, MemModel, SimConfig, Simulator};

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);

    println!("=== Ablation 1: ratio solver (AccPar plan quality) ===");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "network", "PaperLinear ms", "BalancedEx ms", "delta"
    );
    for name in ["alexnet", "vgg19", "resnet18"] {
        let net = zoo::by_name(name, 512).unwrap();
        let cost = |solver: RatioSolver| {
            Planner::builder(&net, &array)
                .solver(solver)
                .sim_config(SimConfig::default()).build().unwrap()
                .plan(Strategy::AccPar)
                .unwrap()
                .modeled_cost()
                * 1e3
        };
        let linear = cost(RatioSolver::PaperLinear);
        let exact = cost(RatioSolver::BalancedExact);
        println!(
            "{name:<10} {linear:>14.3} {exact:>14.3} {:>7.1}%",
            (exact / linear - 1.0) * 100.0
        );
    }

    println!("\n=== Ablation 2: HyPar variants on ResNet (step ms) ===");
    for name in ["resnet18", "resnet34", "resnet50"] {
        let net = zoo::by_name(name, 512).unwrap();
        let view = net.train_view().unwrap();
        let tree = GroupTree::bisect(&array, 8).unwrap();
        let sim = Simulator::new(SimConfig::default());
        let faithful = sim
            .simulate(&view, &hypar_plan(&view, &tree).unwrap(), &tree, None)
            .unwrap()
            .total_secs
            * 1e3;
        let strengthened = sim
            .simulate(&view, &hypar_multipath_plan(&view, &tree).unwrap(), &tree, None)
            .unwrap()
            .total_secs
            * 1e3;
        let accpar = Planner::builder(&net, &array)
            .sim_config(SimConfig::default()).build().unwrap()
            .plan(Strategy::AccPar)
            .unwrap()
            .modeled_cost()
            * 1e3;
        println!(
            "{name:<10} faithful {faithful:>9.2}  scale-aware+multipath {strengthened:>9.2}  accpar {accpar:>9.2}"
        );
    }

    println!("\n=== Ablation 3: simulator memory model (AlexNet DP, step ms) ===");
    let net = zoo::alexnet(512).unwrap();
    for (name, mem_model) in [
        ("roofline", MemModel::Roofline),
        ("serial", MemModel::Serial),
        ("compute-only", MemModel::ComputeOnly),
    ] {
        let cost = Planner::builder(&net, &array)
            .sim_config(SimConfig {
                mem_model,
                ..SimConfig::default()
            }).build().unwrap()
            .plan(Strategy::DataParallel)
            .unwrap()
            .modeled_cost()
            * 1e3;
        println!("{name:<14} {cost:>10.3}");
    }

    println!("\n=== Ablation 4: first-layer backward elision (AlexNet AccPar, step ms) ===");
    for (name, skip) in [("full backward", false), ("skip layer-0 backward", true)] {
        let cost = Planner::builder(&net, &array)
            .sim_config(SimConfig {
                skip_first_backward: skip,
                ..SimConfig::default()
            }).build().unwrap()
            .plan(Strategy::AccPar)
            .unwrap()
            .modeled_cost()
            * 1e3;
        println!("{name:<24} {cost:>10.3}");
    }

    println!("\n=== Ablation 5: BSP barriers vs discrete-event overlap (step ms) ===");
    use accpar_core::baselines::data_parallel_plan;
    use accpar_hw::GroupTree;

    let sim_config = SimConfig::default();
    for name in ["alexnet", "resnet18"] {
        let net = zoo::by_name(name, 512).unwrap();
        let view = net.train_view().unwrap();
        let tree = GroupTree::bisect(&array, 8).unwrap();
        let plan = data_parallel_plan(&view, 8);
        let bsp = Simulator::new(sim_config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs
            * 1e3;
        let des = simulate_des(&sim_config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs
            * 1e3;
        println!(
            "{name:<10} bsp {bsp:>9.3}  des {des:>9.3}  barrier cost {:>5.1}%",
            (bsp / des - 1.0) * 100.0
        );
    }
}
