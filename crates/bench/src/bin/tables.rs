//! Renders Tables 3-7 of the paper from the implementation.

use accpar_bench::tables;

fn main() {
    println!("{}", tables::render_table3());
    println!("{}", tables::render_table4());
    println!("{}", tables::render_table5(0.5));
    println!("{}", tables::render_table6());
    println!("{}", tables::render_table7());
}
