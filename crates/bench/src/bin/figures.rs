//! Writes SVG renderings of Figures 5-8 into `figures/`.
//!
//! ```sh
//! cargo run --release -p accpar-bench --bin figures
//! ```

use accpar_bench::{figure5, figure6, figure7, figure8, svg};
use std::fs;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("figures")?;
    fs::write(
        "figures/fig5_heterogeneous.svg",
        svg::speedup_bars(
            "Figure 5 — heterogeneous array (128x TPU-v2 + 128x TPU-v3, batch 512)",
            &figure5(),
        ),
    )?;
    fs::write(
        "figures/fig6_homogeneous.svg",
        svg::speedup_bars(
            "Figure 6 — homogeneous array (128x TPU-v3, batch 512)",
            &figure6(),
        ),
    )?;
    fs::write(
        "figures/fig7_alexnet_types.svg",
        svg::type_histogram(
            "Figure 7 — AccPar partition types per AlexNet layer (h=7, batch 128)",
            &figure7(),
        ),
    )?;
    fs::write(
        "figures/fig8_hierarchy.svg",
        svg::hierarchy_lines(
            "Figure 8 — VGG-19 speedup vs hierarchy level (heterogeneous array)",
            &figure8(),
        ),
    )?;
    println!("wrote figures/fig5_heterogeneous.svg");
    println!("wrote figures/fig6_homogeneous.svg");
    println!("wrote figures/fig7_alexnet_types.svg");
    println!("wrote figures/fig8_hierarchy.svg");
    Ok(())
}
