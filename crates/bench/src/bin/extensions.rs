//! Experiments beyond the paper's evaluation — extensions the paper
//! motivates but does not report:
//!
//! 1. GoogLeNet (four-way `Concat` inception blocks) under all schemes;
//! 2. a Figure-7-style partition-type census for every zoo model;
//! 3. per-scheme training memory footprints (the §2.3 motivation: big
//!    models must be partitioned to fit);
//! 4. a batch-size sweep showing how the best scheme shifts with the
//!    compute-to-model ratio;
//! 5. a straggler-robustness study: within-type heterogeneity (a
//!    throttled board) that the group-aggregate cost model cannot see.

use accpar_core::{Planner, Strategy};
use accpar_dnn::zoo;
use accpar_hw::{AcceleratorArray, AcceleratorSpec, GroupTree};
use accpar_sim::{memory_report, Optimizer, SimConfig};

fn main() {
    let array = AcceleratorArray::heterogeneous_tpu(128, 128);

    println!("=== Extension 1: GoogLeNet (inception/Concat blocks) ===");
    let net = zoo::googlenet(512).expect("googlenet builds");
    let planner = Planner::builder(&net, &array).sim_config(SimConfig::default()).build().unwrap();
    let mut dp_ms = 0.0;
    for (i, s) in Strategy::ALL.iter().enumerate() {
        let ms = planner.plan(*s).expect("plans").modeled_cost() * 1e3;
        if i == 0 {
            dp_ms = ms;
        }
        println!("  {:>6}: {ms:8.2} ms/step ({:.2}x)", s.to_string(), dp_ms / ms);
    }

    println!("\n=== Extension 2: partition-type census (AccPar, all levels) ===");
    println!(
        "{:<10} {:>7} {:>8} {:>9}   layers mostly using model partitioning",
        "network", "Type-I", "Type-II", "Type-III"
    );
    for name in zoo::EVALUATION_NAMES.iter().chain(["googlenet"].iter()) {
        let net = zoo::by_name(name, 512).expect("zoo network");
        let planned = Planner::builder(&net, &array)
            .sim_config(SimConfig::default()).build().unwrap()
            .plan(Strategy::AccPar)
            .expect("plans");
        let counts = planned.plan().per_layer_type_counts();
        let totals = counts.iter().fold([0usize; 3], |mut acc, c| {
            for i in 0..3 {
                acc[i] += c[i];
            }
            acc
        });
        let model_heavy = counts
            .iter()
            .filter(|c| c[1] + c[2] > c[0])
            .count();
        println!(
            "{name:<10} {:>7} {:>8} {:>9}   {model_heavy}/{}",
            totals[0],
            totals[1],
            totals[2],
            counts.len()
        );
    }

    println!("\n=== Extension 3: training memory per leaf (Adam, 16-board array) ===");
    let small = AcceleratorArray::heterogeneous_tpu(8, 8);
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "network", "DP GB/leaf", "AccPar GB/leaf", "saving"
    );
    for name in ["alexnet", "vgg16", "resnet50", "googlenet"] {
        let net = zoo::by_name(name, 512).expect("zoo network");
        let view = net.train_view().expect("weighted layers");
        let planner = Planner::builder(&net, &small).sim_config(SimConfig::default()).build().unwrap();
        let gb = |strategy| {
            let planned = planner.plan(strategy).expect("plans");
            let tree = GroupTree::bisect(&small, planned.plan().depth()).expect("bisects");
            memory_report(&view, planned.plan(), &tree, &SimConfig::default(), Optimizer::Adam)
                .expect("reports")
                .peak_bytes()
                / 1e9
        };
        let dp = gb(Strategy::DataParallel);
        let accpar = gb(Strategy::AccPar);
        println!(
            "{name:<10} {dp:>12.2} {accpar:>12.2} {:>9.1}%",
            (1.0 - accpar / dp) * 100.0
        );
    }

    println!("\n=== Extension 4: batch-size sweep (AlexNet, AccPar speedup over DP) ===");
    println!("{:<8} {:>10} {:>10}", "batch", "DP ms", "AccPar x");
    for batch in [64usize, 128, 256, 512, 1024] {
        let net = zoo::alexnet(batch).expect("alexnet builds");
        let planner = Planner::builder(&net, &array).sim_config(SimConfig::default()).build().unwrap();
        let dp = planner.plan(Strategy::DataParallel).expect("plans").modeled_cost();
        let accpar = planner.plan(Strategy::AccPar).expect("plans").modeled_cost();
        println!("{batch:<8} {:>10.2} {:>9.2}x", dp * 1e3, dp / accpar);
    }

    println!("\n=== Extension 5: straggler robustness (AlexNet, 8+8 boards) ===");
    // One TPU-v3 board is thermally throttled to half its rates: a
    // within-type heterogeneity the paper never considers. The planner
    // only sees group aggregates; the simulator's per-board leaves feel
    // the straggler directly.
    let throttled = AcceleratorSpec::new(
        "tpu-v3-throttled",
        210e12,
        128 << 30,
        2400e9,
        1e9,
        8,
        100e9,
    )
    .expect("valid spec");
    let mut boards = vec![AcceleratorSpec::tpu_v2(); 8];
    boards.extend(vec![AcceleratorSpec::tpu_v3(); 7]);
    boards.push(throttled);
    let degraded = AcceleratorArray::new(boards);
    let healthy = AcceleratorArray::heterogeneous_tpu(8, 8);
    let net = zoo::alexnet(512).unwrap();
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "strategy", "healthy ms", "degraded ms", "slowdown"
    );
    for s in [Strategy::DataParallel, Strategy::AccPar] {
        let ms = |array: &AcceleratorArray| {
            Planner::builder(&net, array)
                .sim_config(SimConfig::default()).build().unwrap()
                .plan(s)
                .unwrap()
                .modeled_cost()
                * 1e3
        };
        let h = ms(&healthy);
        let d = ms(&degraded);
        println!(
            "{:<10} {h:>12.2} {d:>12.2} {:>9.1}%",
            s.to_string(),
            (d / h - 1.0) * 100.0
        );
    }
}
