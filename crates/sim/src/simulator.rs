use crate::config::SimConfig;
use crate::error::SimError;
use crate::machine::segments_secs;
use crate::trace::phase_segments;
use accpar_cost::comm::{attn_stage_elems, inter_conversion_split, intra_psum_elems};
use accpar_dnn::{TrainEdge, TrainLayer, TrainView};
use accpar_hw::{FaultModel, GroupCaps, GroupTree};
use accpar_obs::Obs;
use accpar_partition::{LayerPlan, Phase, PlanTree, ShardScales};
use std::fmt;

use crate::geometry::{layer_geom, LayerGeom};

/// Per-layer timing breakdown of a simulated training step, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerBreakdown {
    /// Compute time across the three phases (bulk-synchronous max over
    /// leaves, summed over phases).
    pub compute_secs: f64,
    /// Partial-sum exchange time (Table 4 traffic, all levels).
    pub psum_secs: f64,
    /// Inter-layer conversion time charged to this layer's phases
    /// (Table 5 traffic, all levels).
    pub conversion_secs: f64,
}

impl LayerBreakdown {
    /// Total time attributed to the layer.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute_secs + self.psum_secs + self.conversion_secs
    }
}

/// The result of simulating one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end step time.
    pub total_secs: f64,
    /// Sum of per-phase compute makespans.
    pub compute_secs: f64,
    /// Sum of partial-sum exchange times.
    pub psum_secs: f64,
    /// Sum of inter-layer conversion times.
    pub conversion_secs: f64,
    /// Optimizer weight-update time (zero unless `SimConfig::update` is
    /// set).
    pub update_secs: f64,
    /// Per weighted layer breakdown.
    pub per_layer: Vec<LayerBreakdown>,
    /// Per-leaf compute-busy seconds (for utilization analysis).
    pub leaf_busy_secs: Vec<f64>,
}

impl SimReport {
    /// Training throughput in steps per second, or `None` when the
    /// simulated step time is not positive (an empty network, or a
    /// degenerate config that priced every phase at zero).
    #[must_use]
    pub fn steps_per_sec(&self) -> Option<f64> {
        (self.total_secs > 0.0).then(|| 1.0 / self.total_secs)
    }

    /// Mean leaf compute utilization: busy time over step time. Low
    /// values indicate the idle-time effect §6.2 attributes to equal
    /// partitioning on heterogeneous hardware.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.leaf_busy_secs.is_empty() || self.total_secs == 0.0 {
            return 0.0;
        }
        let mean_busy =
            self.leaf_busy_secs.iter().sum::<f64>() / self.leaf_busy_secs.len() as f64;
        mean_busy / self.total_secs
    }

    /// Fraction of the step spent communicating.
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        if self.total_secs == 0.0 {
            return 0.0;
        }
        (self.psum_secs + self.conversion_secs) / self.total_secs
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {:.3} ms (compute {:.3} ms, psum {:.3} ms, conversion {:.3} ms, update {:.3} ms, util {:.1}%)",
            self.total_secs * 1e3,
            self.compute_secs * 1e3,
            self.psum_secs * 1e3,
            self.conversion_secs * 1e3,
            self.update_secs * 1e3,
            self.mean_utilization() * 100.0
        )
    }
}

/// The trace-based array simulator.
///
/// Executes one training step — forward sweep over the weighted layers,
/// then a backward + gradient sweep in reverse — in bulk-synchronous
/// order: each phase's compute is priced per leaf group from its trace
/// segments, partial-sum exchanges are charged on the cut links of every
/// hierarchy level whose partition type requires them (deepest first),
/// and inter-layer tensor conversions are charged when the consuming
/// phase begins.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
    obs: Obs,
}

impl Simulator {
    /// Creates a simulator.
    #[must_use]
    pub const fn new(config: SimConfig) -> Self {
        Self {
            config,
            obs: Obs::off(),
        }
    }

    /// Attaches an observability handle: every simulated step opens a
    /// `sim.step` span, feeds the `sim.step_ns` histogram, and emits a
    /// `sim.report` event with the per-phase timing breakdown.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The simulator's configuration.
    #[must_use]
    pub const fn config(&self) -> SimConfig {
        self.config
    }

    /// Simulates one training step of `view` partitioned by `plan` over
    /// `tree`, entirely driven by the simulator's [`SimConfig`].
    ///
    /// With `faults` set, compute slowdowns and cut-bandwidth
    /// degradations are folded into a degraded copy of `tree`, and each
    /// leaf's transient stall window is charged at the start of the step
    /// (its first forward phase). The report's `leaf_busy_secs` counts
    /// compute only — stall windows lengthen the step but are idle time,
    /// so a stalled straggler shows up as *lower* utilization.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DepthMismatch`] /
    /// [`SimError::LayerCountMismatch`] when the plan does not match the
    /// tree or the network. With `faults` set, additionally
    /// [`SimError::FaultLeafOutOfRange`] /
    /// [`SimError::FaultCutOutOfRange`] when a fault targets a leaf or
    /// cut the tree does not have, and [`SimError::DroppedLeaf`] when the
    /// fault model dropped a leaf the plan still assigns work to — re-plan
    /// on the reduced array (see `accpar-core`) before simulating.
    pub fn simulate(
        &self,
        view: &TrainView,
        plan: &PlanTree,
        tree: &GroupTree,
        faults: Option<&FaultModel>,
    ) -> Result<SimReport, SimError> {
        match faults {
            None => self.simulate_with(view, plan, tree, None),
            Some(faults) => {
                let (degraded, stalls) = crate::faults::prepare(tree, faults)?;
                if self.obs.enabled() {
                    self.obs
                        .counter("sim.fault_activations")
                        .add(faults.faults().len() as u64);
                }
                self.simulate_with(view, plan, &degraded, Some(&stalls))
            }
        }
    }

    fn simulate_with(
        &self,
        view: &TrainView,
        plan: &PlanTree,
        tree: &GroupTree,
        stalls: Option<&[f64]>,
    ) -> Result<SimReport, SimError> {
        if plan.depth() != tree.levels() {
            return Err(SimError::DepthMismatch {
                plan: plan.depth(),
                tree: tree.levels(),
            });
        }
        let n_layers = view.weighted_len();
        validate_layer_counts(plan, n_layers, 0)?;
        let span = self.obs.span(
            "sim.step",
            &[
                ("layers", n_layers.into()),
                ("levels", tree.levels().into()),
                ("faulted", stalls.is_some().into()),
            ],
        );
        let _step_timer = self.obs.timer("sim.step_ns");

        let mut layers: Vec<&TrainLayer> = view.layers().collect();
        layers.sort_by_key(|l| l.index());
        let edges = view.conversion_edges();

        // Per-layer geometry (shard scales at every node and leaf).
        let geoms: Vec<LayerGeom> = (0..n_layers)
            .map(|l| layer_geom(tree.root(), plan, l))
            .collect();
        let n_leaves = geoms.first().map_or(1, |g| g.leaves.len());

        let mut report = SimReport {
            total_secs: 0.0,
            compute_secs: 0.0,
            psum_secs: 0.0,
            conversion_secs: 0.0,
            update_secs: 0.0,
            per_layer: vec![LayerBreakdown::default(); n_layers],
            leaf_busy_secs: vec![0.0; n_leaves],
        };

        // Forward sweep. Transient stall windows delay each leaf at the
        // start of the step, i.e. during the first forward phase.
        for l in 0..n_layers {
            if self.config.interlayer {
                let conv = self.conversion_secs(&edges, &geoms, l, Phase::Forward);
                report.per_layer[l].conversion_secs += conv;
                report.conversion_secs += conv;
            }
            let phase_stalls = if l == 0 { stalls } else { None };
            self.run_phase(layers[l], &geoms[l], Phase::Forward, l, phase_stalls, &mut report);
        }
        // Backward + gradient sweep.
        for l in (0..n_layers).rev() {
            let skip_backward = self.config.skip_first_backward && l == 0;
            if self.config.interlayer {
                let conv = self.conversion_secs(&edges, &geoms, l, Phase::Backward);
                report.per_layer[l].conversion_secs += conv;
                report.conversion_secs += conv;
            }
            if !skip_backward {
                self.run_phase(layers[l], &geoms[l], Phase::Backward, l, None, &mut report);
            }
            self.run_phase(layers[l], &geoms[l], Phase::Gradient, l, None, &mut report);
        }

        // Optional optimizer update phase: each leaf updates its weight
        // shards in place (element-wise; no communication — gradients are
        // already combined by the psum exchanges).
        if let Some(optimizer) = self.config.update {
            let mut makespan: f64 = 0.0;
            let bytes_per_elem = self.config.format.bytes_per_element() as f64;
            // Touched per parameter: read gradient, read+write weight,
            // read+write each optimizer state copy.
            let accesses = 3.0 + 2.0 * optimizer.state_copies() as f64;
            for idx in 0..n_leaves {
                let mut elems = 0.0;
                for (l, layer) in layers.iter().enumerate() {
                    let (_, scales) = geoms[l].leaves[idx];
                    elems += layer.weight().size() as f64 * scales.weight;
                }
                let (caps, _) = geoms.first().expect("layers exist").leaves[idx];
                let compute =
                    elems * optimizer.update_flops_per_param() as f64 / caps.flops;
                let mem = elems * accesses * bytes_per_elem / caps.mem_bw;
                let secs = match self.config.mem_model {
                    crate::config::MemModel::Roofline => compute.max(mem),
                    crate::config::MemModel::Serial => compute + mem,
                    crate::config::MemModel::ComputeOnly => compute,
                };
                report.leaf_busy_secs[idx] += secs;
                makespan = makespan.max(secs);
            }
            report.update_secs = makespan;
        }

        report.total_secs = report.compute_secs
            + report.psum_secs
            + report.conversion_secs
            + report.update_secs;
        if self.obs.enabled() {
            self.obs.counter("sim.steps").inc();
            for (l, lb) in report.per_layer.iter().enumerate() {
                span.event(
                    "sim.layer",
                    &[
                        ("layer", l.into()),
                        ("compute_ms", (lb.compute_secs * 1e3).into()),
                        ("psum_ms", (lb.psum_secs * 1e3).into()),
                        ("conversion_ms", (lb.conversion_secs * 1e3).into()),
                    ],
                );
            }
            span.event(
                "sim.report",
                &[
                    ("total_ms", (report.total_secs * 1e3).into()),
                    ("compute_ms", (report.compute_secs * 1e3).into()),
                    ("psum_ms", (report.psum_secs * 1e3).into()),
                    ("conversion_ms", (report.conversion_secs * 1e3).into()),
                    ("update_ms", (report.update_secs * 1e3).into()),
                    ("utilization", report.mean_utilization().into()),
                ],
            );
        }
        Ok(report)
    }

    /// Compute + psum of one phase, accumulated into the report. `stalls`
    /// (set only for the step's first phase) delays each leaf without
    /// counting as busy time.
    fn run_phase(
        &self,
        layer: &TrainLayer,
        geom: &LayerGeom,
        phase: Phase,
        l: usize,
        stalls: Option<&[f64]>,
        report: &mut SimReport,
    ) {
        // Bulk-synchronous compute: the phase ends when the slowest leaf
        // finishes its shard. Sibling leaves under an equal split hold
        // bitwise-identical (caps, scales) pairs and the pricing is a
        // pure function of them, so the previous leaf's time is reused
        // verbatim — same `f64`, no re-trace.
        let mut makespan: f64 = 0.0;
        let mut prev: Option<(&GroupCaps, &ShardScales, f64)> = None;
        for (idx, (caps, scales)) in geom.leaves.iter().enumerate() {
            let secs = match prev {
                Some((c, s, v)) if c == caps && s == scales => v,
                _ => {
                    let segs = phase_segments(layer, phase, *scales);
                    segments_secs(&segs, caps, &self.config)
                }
            };
            prev = Some((caps, scales, secs));
            let stall = stalls.map_or(0.0, |s| s.get(idx).copied().unwrap_or(0.0));
            report.leaf_busy_secs[idx] += secs;
            makespan = makespan.max(secs + stall);
        }
        report.compute_secs += makespan;
        report.per_layer[l].compute_secs += makespan;

        // Partial-sum exchanges, deepest level first: partial results
        // combine bottom-up. Nodes at the same depth exchange
        // concurrently. Each forward phase additionally carries the
        // attention-stage K/V exchange of a lowered `o` projection (each
        // side sends its own token slice, so the sides scale by their
        // respective input-feature shares).
        let max_depth = geom.nodes.iter().map(|n| n.depth).max();
        if let Some(max_depth) = max_depth {
            for depth in (0..=max_depth).rev() {
                let mut level_secs: f64 = 0.0;
                for node in geom.nodes.iter().filter(|n| n.depth == depth) {
                    let psum = if node.entry.ptype.psum_phase() == phase {
                        intra_psum_elems(node.entry.ptype, layer) as f64
                            * node.scales.psum_scale(node.entry.ptype)
                    } else {
                        0.0
                    };
                    let (stage_a, stage_b) = if phase == Phase::Forward {
                        let full = attn_stage_elems(node.entry.ptype, layer) as f64;
                        let alpha = node.entry.ratio.value();
                        (
                            full * node.scales.shrink(node.entry.ptype, alpha).f_in,
                            full * node.scales.shrink(node.entry.ptype, 1.0 - alpha).f_in,
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    if psum == 0.0 && stage_a == 0.0 && stage_b == 0.0 {
                        continue;
                    }
                    let t = (self.config.format.bytes_f64(psum + stage_a) / node.link_a)
                        .max(self.config.format.bytes_f64(psum + stage_b) / node.link_b);
                    level_secs = level_secs.max(t);
                }
                report.psum_secs += level_secs;
                report.per_layer[l].psum_secs += level_secs;
            }
        }
    }

    /// Inter-layer conversion time charged when layer `l` begins `phase`:
    /// the `F` conversions of its incoming edges before its forward
    /// phase, and the `E` conversions of its outgoing edges before its
    /// backward phase.
    fn conversion_secs(
        &self,
        edges: &[TrainEdge],
        geoms: &[LayerGeom],
        l: usize,
        phase: Phase,
    ) -> f64 {
        let mut total = 0.0;
        for edge in edges {
            let forward = phase == Phase::Forward && edge.to == l;
            let backward = phase == Phase::Backward && edge.from == l;
            if !forward && !backward {
                continue;
            }
            // The boundary tensor's shard scale follows the *consumer*'s
            // input feature map (an approximation when the two layers'
            // types disagree; documented in DESIGN.md).
            let consumer_geom = &geoms[edge.to];
            let max_depth = consumer_geom.nodes.iter().map(|n| n.depth).max();
            let Some(max_depth) = max_depth else {
                continue;
            };
            for depth in 0..=max_depth {
                let mut level_secs: f64 = 0.0;
                // Nodes at one depth arrive in walk order, so the nodes of
                // a homogeneous, evenly split half are consecutive and
                // bitwise-identical in every pricing input; the split is a
                // pure function of them, so the previous node's time is
                // reused verbatim.
                let mut memo: Option<(LayerPlan, LayerPlan, u64, f64, f64, f64)> = None;
                for node in consumer_geom.nodes.iter().filter(|n| n.depth == depth) {
                    let prev = node.plan.layer(edge.from);
                    let next = node.plan.layer(edge.to);
                    let boundary =
                        (edge.boundary_elems as f64 * node.scales.f_in).round() as u64;
                    let t = match memo {
                        Some((p, n, b, la, lb, v))
                            if p == prev
                                && n == next
                                && b == boundary
                                && la == node.link_a
                                && lb == node.link_b =>
                        {
                            v
                        }
                        _ => {
                            let (f, e) = inter_conversion_split(
                                prev.ptype,
                                prev.ratio.value(),
                                next.ptype,
                                next.ratio.value(),
                                boundary,
                                boundary,
                            );
                            let (a_elems, b_elems) = if forward { f } else { e };
                            (self.config.format.bytes_f64(a_elems) / node.link_a)
                                .max(self.config.format.bytes_f64(b_elems) / node.link_b)
                        }
                    };
                    memo = Some((prev, next, boundary, node.link_a, node.link_b, t));
                    level_secs = level_secs.max(t);
                }
                total += level_secs;
            }
        }
        total
    }
}

fn validate_layer_counts(plan: &PlanTree, n_layers: usize, level: usize) -> Result<(), SimError> {
    if plan.plan().len() != n_layers {
        return Err(SimError::LayerCountMismatch {
            level,
            plan: plan.plan().len(),
            network: n_layers,
        });
    }
    if let Some((a, b)) = plan.children() {
        validate_layer_counts(a, n_layers, level + 1)?;
        validate_layer_counts(b, n_layers, level + 1)?;
    }
    Ok(())
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemModel;
    use accpar_cost::{CostConfig, CostModel, PairEnv};
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::AcceleratorArray;
    use accpar_partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, Ratio, ShardScales};
    use accpar_tensor::FeatureShape;

    fn fc_view(batch: usize, dims: &[usize]) -> TrainView {
        let mut b = NetworkBuilder::new("t", FeatureShape::fc(batch, dims[0]));
        for (i, pair) in dims.windows(2).enumerate() {
            b = b.linear(format!("fc{i}"), pair[0], pair[1]);
        }
        b.build().unwrap().train_view().unwrap()
    }

    fn dp_plan(n: usize, levels: usize) -> PlanTree {
        HierPlan::new(vec![
            NetworkPlan::uniform(n, LayerPlan::data_parallel());
            levels
        ])
        .to_tree()
    }

    #[test]
    fn single_layer_matches_cost_model_on_homogeneous_pair() {
        let view = fc_view(64, &[128, 256]);
        let layer = view.layers().next().unwrap().clone();
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();

        let plan = dp_plan(1, 1);
        let sim = Simulator::new(SimConfig::cost_model_aligned());
        let report = sim.simulate(&view, &plan, &tree, None).unwrap();

        let model = CostModel::new(CostConfig::default());
        let expected = model
            .layer_cost(
                &layer,
                PartitionType::TypeI,
                Ratio::EQUAL,
                &env,
                ShardScales::full(),
            )
            .makespan();
        assert!(
            (report.total_secs - expected).abs() / expected < 1e-9,
            "sim {} vs model {}",
            report.total_secs,
            expected
        );
    }

    #[test]
    fn heterogeneous_sim_never_exceeds_cost_model_bound() {
        // The model charges each group compute+comm before taking the
        // max; the sim takes per-stage maxima, so sim ≤ model.
        let view = fc_view(64, &[128, 256]);
        let layer = view.layers().next().unwrap().clone();
        let array = AcceleratorArray::heterogeneous_tpu(1, 1);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();

        let sim = Simulator::new(SimConfig::cost_model_aligned());
        let report = sim.simulate(&view, &dp_plan(1, 1), &tree, None).unwrap();
        let model = CostModel::new(CostConfig::default());
        let bound = model
            .layer_cost(
                &layer,
                PartitionType::TypeI,
                Ratio::EQUAL,
                &env,
                ShardScales::full(),
            )
            .makespan();
        assert!(report.total_secs <= bound * (1.0 + 1e-9));
        assert!(report.total_secs > 0.5 * bound);
    }

    #[test]
    fn plan_validation_errors() {
        let view = fc_view(8, &[4, 4, 4]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let sim = Simulator::default();
        let err = sim.simulate(&view, &dp_plan(2, 2), &tree, None).unwrap_err();
        assert!(matches!(err, SimError::DepthMismatch { .. }));
        let err = sim.simulate(&view, &dp_plan(3, 1), &tree, None).unwrap_err();
        assert!(matches!(err, SimError::LayerCountMismatch { .. }));
    }

    #[test]
    fn unbalanced_ratio_on_heterogeneous_pair_beats_equal_split() {
        let view = fc_view(512, &[1024, 1024, 1024]);
        let n = view.weighted_len();
        let array = AcceleratorArray::heterogeneous_tpu(1, 1);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let sim = Simulator::new(SimConfig::default());

        let equal = sim.simulate(&view, &dp_plan(n, 1), &tree, None).unwrap();
        // v2 gets 30% (its compute share), v3 gets 70%.
        let tilted = PlanTree::leaf(NetworkPlan::uniform(
            n,
            LayerPlan::new(PartitionType::TypeI, Ratio::new(0.3).unwrap()),
        ));
        let better = sim.simulate(&view, &tilted, &tree, None).unwrap();
        assert!(better.total_secs < equal.total_secs);
        // With the tilt matching the compute shares, per-phase compute is
        // balanced and strictly faster than the equal split, where the
        // v2 board is the straggler.
        assert!(better.compute_secs < equal.compute_secs);
    }

    #[test]
    fn free_conversions_cost_nothing() {
        // II -> III conversions are free (Table 5).
        let view = fc_view(64, &[128, 128, 128]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let sim = Simulator::new(SimConfig::default());
        let plan = PlanTree::leaf(NetworkPlan::new(vec![
            LayerPlan::new(PartitionType::TypeII, Ratio::EQUAL),
            LayerPlan::new(PartitionType::TypeIII, Ratio::EQUAL),
        ]));
        let report = sim.simulate(&view, &plan, &tree, None).unwrap();
        assert_eq!(report.conversion_secs, 0.0);
        // Psum traffic exists for both types though.
        assert!(report.psum_secs > 0.0);
    }

    #[test]
    fn compute_time_is_invariant_under_deeper_bisection() {
        // On a homogeneous array with equal data-parallel splits,
        // bisecting once into aggregate pairs or twice into single boards
        // yields identical compute makespans: a pair at 2× FLOPS doing
        // 2× the shard equals one board doing its own shard. Only
        // communication differs between hierarchy depths.
        let view = fc_view(512, &[1024, 1024]);
        let n = view.weighted_len();
        let sim = Simulator::new(SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        });
        let a4 = AcceleratorArray::homogeneous_tpu_v3(4);
        let t1 = GroupTree::bisect(&a4, 1).unwrap();
        let t2 = GroupTree::bisect(&a4, 2).unwrap();
        let r1 = sim.simulate(&view, &dp_plan(n, 1), &t1, None).unwrap();
        let r2 = sim.simulate(&view, &dp_plan(n, 2), &t2, None).unwrap();
        assert!(
            (r2.compute_secs - r1.compute_secs).abs() / r2.compute_secs < 1e-9,
            "{} vs {}",
            r2.compute_secs,
            r1.compute_secs
        );
        // The deeper hierarchy adds a second level of psum exchanges.
        assert!(r2.psum_secs > r1.psum_secs);
    }

    #[test]
    fn asymmetric_plan_trees_are_honored() {
        // Different sub-plans inside the two halves: Type-II inside the
        // left half, Type-III inside the right. Both are exercised.
        let view = fc_view(64, &[128, 128]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(4), 2).unwrap();
        let top = NetworkPlan::uniform(1, LayerPlan::data_parallel());
        let left = NetworkPlan::uniform(1, LayerPlan::new(PartitionType::TypeII, Ratio::EQUAL));
        let right = NetworkPlan::uniform(1, LayerPlan::new(PartitionType::TypeIII, Ratio::EQUAL));
        let plan = PlanTree::branch(top, PlanTree::leaf(left), PlanTree::leaf(right));
        let report = Simulator::default().simulate(&view, &plan, &tree, None).unwrap();
        assert!(report.total_secs > 0.0);
        // Compare with a uniform Type-II inner plan: costs differ because
        // Type-II and Type-III psum different tensors (F_{l+1} vs E_l)
        // of different sizes would be equal here (128 = 128)… so compare
        // against an inner Type-I plan instead, whose psum tensor (the
        // weight) is much larger.
        let inner_i = NetworkPlan::uniform(1, LayerPlan::data_parallel());
        let uniform = PlanTree::branch(
            NetworkPlan::uniform(1, LayerPlan::data_parallel()),
            PlanTree::leaf(inner_i.clone()),
            PlanTree::leaf(inner_i),
        );
        let report_i = Simulator::default().simulate(&view, &uniform, &tree, None).unwrap();
        assert!(report.psum_secs != report_i.psum_secs);
    }

    #[test]
    fn faulted_step_is_deterministic_and_slower() {
        let view = fc_view(128, &[512, 512, 512]);
        let n = view.weighted_len();
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let plan = dp_plan(n, 2);
        // Compute-only pricing so the straggler's lost FLOP/s is visible
        // (FC shards on Table 7 hardware are memory-bound under the
        // roofline model, where a compute slowdown can hide entirely).
        let sim = Simulator::new(SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        });
        let clean = sim.simulate(&view, &plan, &tree, None).unwrap();

        // One TPU-v2 leaf at half compute, one cut at quarter bandwidth —
        // the acceptance scenario of the robustness issue.
        let faults = FaultModel::with_seed(42)
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(1, 0.25)
            .unwrap();
        let a = sim.simulate(&view, &plan, &tree, Some(&faults)).unwrap();
        let b = sim.simulate(&view, &plan, &tree, Some(&faults)).unwrap();
        assert_eq!(a, b, "seeded fault scenario must be bit-reproducible");
        assert!(a.total_secs > clean.total_secs);
        assert!(a.compute_secs > clean.compute_secs);
        assert!(a.psum_secs > clean.psum_secs);

        // An empty fault model is a no-op.
        let none = sim
            .simulate(&view, &plan, &tree, Some(&FaultModel::new()))
            .unwrap();
        assert_eq!(none, clean);
    }

    #[test]
    fn faulted_equals_simulating_the_degraded_tree() {
        let view = fc_view(64, &[256, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(4), 2).unwrap();
        let plan = dp_plan(view.weighted_len(), 2);
        let faults = FaultModel::new()
            .slow_leaf(2, 0.7)
            .unwrap()
            .degrade_cut(0, 0.5)
            .unwrap();
        let sim = Simulator::default();
        let faulted = sim.simulate(&view, &plan, &tree, Some(&faults)).unwrap();
        let direct = sim
            .simulate(&view, &plan, &tree.degraded(&faults).unwrap(), None)
            .unwrap();
        assert_eq!(faulted, direct);
    }

    #[test]
    fn transient_stall_lengthens_step_without_busy_time() {
        let view = fc_view(64, &[256, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let sim = Simulator::default();
        let clean = sim.simulate(&view, &plan, &tree, None).unwrap();
        let stall = 1e-3;
        let faults = FaultModel::new().stall_leaf(0, stall).unwrap();
        let stalled = sim.simulate(&view, &plan, &tree, Some(&faults)).unwrap();
        assert!((stalled.total_secs - clean.total_secs - stall).abs() < 1e-12);
        assert_eq!(stalled.leaf_busy_secs, clean.leaf_busy_secs);
        assert!(stalled.mean_utilization() < clean.mean_utilization());
    }

    #[test]
    fn fault_validation_errors() {
        let view = fc_view(8, &[4, 4]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let sim = Simulator::default();
        let err = sim
            .simulate(&view, &plan, &tree, Some(&FaultModel::new().slow_leaf(9, 0.5).unwrap()))
            .unwrap_err();
        assert_eq!(err, SimError::FaultLeafOutOfRange { leaf: 9, leaves: 2 });
        let err = sim
            .simulate(&view, &plan, &tree, Some(&FaultModel::new().degrade_cut(1, 0.5).unwrap()))
            .unwrap_err();
        assert_eq!(err, SimError::FaultCutOutOfRange { cut: 1, cuts: 1 });
        let err = sim
            .simulate(&view, &plan, &tree, Some(&FaultModel::new().drop_leaf(1)))
            .unwrap_err();
        assert_eq!(err, SimError::DroppedLeaf { leaf: 1 });
    }

    #[test]
    fn update_phase_is_charged_when_enabled() {
        use crate::config::Optimizer;
        let view = fc_view(64, &[1024, 1024]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let base = Simulator::default()
            .simulate(&view, &dp_plan(1, 1), &tree, None)
            .unwrap();
        assert_eq!(base.update_secs, 0.0);
        for (opt, worse) in [
            (Optimizer::Sgd, 1.0),
            (Optimizer::Momentum, 1.0),
            (Optimizer::Adam, 1.0),
        ] {
            let _ = worse;
            let with = Simulator::new(SimConfig {
                update: Some(opt),
                ..SimConfig::default()
            })
            .simulate(&view, &dp_plan(1, 1), &tree, None)
            .unwrap();
            assert!(with.update_secs > 0.0, "{opt}");
            assert!(
                (with.total_secs - base.total_secs - with.update_secs).abs() < 1e-15,
                "{opt}"
            );
        }
        // Heavier optimizers cost more.
        let t = |opt| {
            Simulator::new(SimConfig {
                update: Some(opt),
                ..SimConfig::default()
            })
            .simulate(&view, &dp_plan(1, 1), &tree, None)
            .unwrap()
            .update_secs
        };
        assert!(t(Optimizer::Adam) > t(Optimizer::Sgd));
    }

    #[test]
    fn report_accessors() {
        let view = fc_view(64, &[128, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let report = Simulator::default()
            .simulate(&view, &dp_plan(1, 1), &tree, None)
            .unwrap();
        assert!(report.steps_per_sec().is_some_and(|s| s > 0.0));
        assert_eq!(SimReport { total_secs: 0.0, ..report.clone() }.steps_per_sec(), None);
        assert!(report.mean_utilization() > 0.0 && report.mean_utilization() <= 1.0);
        assert!(report.comm_fraction() >= 0.0 && report.comm_fraction() < 1.0);
        assert!(report.to_string().contains("step"));
        let total_from_layers: f64 = report.per_layer.iter().map(LayerBreakdown::total).sum();
        assert!((total_from_layers - report.total_secs).abs() < 1e-12);
    }
}
