use accpar_tensor::DataFormat;
use std::fmt;

/// The optimizer whose per-parameter state the footprint accounts for
/// (§2.1 lists SGD variants, Momentum and Adam as the flows the three
/// tensor phases capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Optimizer {
    /// Plain (mini-batch) SGD: no extra state.
    #[default]
    Sgd,
    /// Momentum: one velocity tensor per weight tensor.
    Momentum,
    /// Adam: first and second moment tensors per weight tensor.
    Adam,
}

impl Optimizer {
    /// Extra per-parameter state tensors beyond weights and gradients.
    #[must_use]
    pub const fn state_copies(self) -> u64 {
        match self {
            Optimizer::Sgd => 0,
            Optimizer::Momentum => 1,
            Optimizer::Adam => 2,
        }
    }

    /// Approximate FLOPs per parameter of the update rule.
    #[must_use]
    pub const fn update_flops_per_param(self) -> u64 {
        match self {
            // w -= lr · g
            Optimizer::Sgd => 2,
            // v = γ·v + lr·g; w -= v
            Optimizer::Momentum => 4,
            // two moment updates, bias correction, sqrt, divide
            Optimizer::Adam => 10,
        }
    }
}

impl fmt::Display for Optimizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Optimizer::Sgd => "sgd",
            Optimizer::Momentum => "momentum",
            Optimizer::Adam => "adam",
        };
        f.write_str(s)
    }
}

/// How the machine model combines compute time and HBM traffic time
/// within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemModel {
    /// Phase time is `max(compute, memory)` — a perfectly pipelined
    /// (roofline) accelerator. The paper's simulator "calculate\[s\] the
    /// time consuming for the computation and data accessing", which this
    /// models with overlap.
    #[default]
    Roofline,
    /// Phase time is `compute + memory` — no overlap between the MXU and
    /// the HBM channel (pessimistic ablation).
    Serial,
    /// Ignore memory traffic entirely (matches the analytic cost model's
    /// Eq. 8; used by the cross-validation tests).
    ComputeOnly,
}

/// Configuration of a [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Training data format; the paper uses bf16.
    pub format: DataFormat,
    /// Compute/memory combination within a phase.
    pub mem_model: MemModel,
    /// Charge inter-layer tensor conversions (Table 5 traffic). Disabled
    /// only by diagnostics.
    pub interlayer: bool,
    /// Skip the backward phase of weighted layer 0 (no error propagates
    /// to the raw input). Kept consistent with
    /// `CostConfig::skip_first_backward`.
    pub skip_first_backward: bool,
    /// Charge an optimizer weight-update phase at the end of the step
    /// (`None` matches the paper's three-phase model).
    pub update: Option<Optimizer>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            format: DataFormat::Bf16,
            mem_model: MemModel::default(),
            interlayer: true,
            skip_first_backward: false,
            update: None,
        }
    }
}

impl SimConfig {
    /// A configuration aligned with the analytic cost model: pure-compute
    /// phases, conversions on. Used by cross-validation tests.
    #[must_use]
    pub fn cost_model_aligned() -> Self {
        Self {
            mem_model: MemModel::ComputeOnly,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.format, DataFormat::Bf16);
        assert_eq!(c.mem_model, MemModel::Roofline);
        assert!(c.interlayer);
        assert!(!c.skip_first_backward);
        assert_eq!(c.update, None);
    }

    #[test]
    fn optimizer_metadata() {
        assert_eq!(Optimizer::Sgd.state_copies(), 0);
        assert_eq!(Optimizer::Adam.state_copies(), 2);
        assert!(
            Optimizer::Adam.update_flops_per_param()
                > Optimizer::Sgd.update_flops_per_param()
        );
        assert_eq!(Optimizer::Momentum.to_string(), "momentum");
        assert_eq!(Optimizer::default(), Optimizer::Sgd);
    }

    #[test]
    fn aligned_config_disables_memory() {
        assert_eq!(
            SimConfig::cost_model_aligned().mem_model,
            MemModel::ComputeOnly
        );
    }
}
