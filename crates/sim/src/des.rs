//! A discrete-event alternative to the bulk-synchronous simulator.
//!
//! The default [`Simulator`](crate::Simulator) executes phases in
//! lockstep: every leaf waits at a global barrier after each phase. Real
//! arrays overlap more: a residual block's branches are data-independent
//! and can compute concurrently, a layer's gradient can overlap a
//! neighbour's conversion, and exchanges on different cuts proceed in
//! parallel. This module builds the training step's full **task graph**
//! — per-leaf compute tasks, per-cut partial-sum exchanges and boundary
//! conversions, with true data dependencies — and schedules it with a
//! deterministic non-preemptive list scheduler over the array's
//! resources (one compute unit per leaf, one link per tree cut).
//!
//! The gap between the two backends bounds the cost of the
//! bulk-synchronous assumption; the `des_vs_bsp` ablation (run by
//! `--bin ablations` counterparts in `accpar-bench`) reports it.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::geometry::{layer_geom, LayerGeom};
use crate::machine::segments_secs;
use crate::trace::phase_segments;
use accpar_cost::comm::{attn_stage_elems, inter_conversion_split, intra_psum_elems};
use accpar_dnn::{TrainLayer, TrainView};
use accpar_hw::{FaultModel, GroupTree};
use accpar_partition::{Phase, PlanTree};
use std::fmt;

/// Resource identifier: leaves first, then one link resource per internal
/// tree node (both directions of a cut share the physical link).
type Resource = usize;

/// A node of the task graph.
struct Task {
    duration: f64,
    deps: Vec<usize>,
    resource: Option<Resource>,
}

/// The result of a discrete-event simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Makespan of the scheduled task graph.
    pub total_secs: f64,
    /// Busy seconds per leaf compute resource.
    pub leaf_busy_secs: Vec<f64>,
    /// Busy seconds per cut link resource.
    pub link_busy_secs: Vec<f64>,
    /// Number of scheduled tasks.
    pub tasks: usize,
}

impl DesReport {
    /// Mean leaf compute utilization.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.leaf_busy_secs.is_empty() || self.total_secs == 0.0 {
            return 0.0;
        }
        self.leaf_busy_secs.iter().sum::<f64>()
            / self.leaf_busy_secs.len() as f64
            / self.total_secs
    }
}

impl fmt::Display for DesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "des step {:.3} ms ({} tasks, util {:.1}%)",
            self.total_secs * 1e3,
            self.tasks,
            self.mean_utilization() * 100.0
        )
    }
}

/// Builds and schedules the training step's task graph, entirely driven
/// by `config`.
///
/// With `faults` set, rate faults are folded into a degraded copy of
/// `tree`, and each leaf's transient stall window delays its first
/// forward task. Unlike the bulk-synchronous report, `leaf_busy_secs`
/// here includes the stall window (the leaf's compute resource is
/// occupied while it stalls, delaying everything queued behind it).
///
/// # Errors
///
/// Returns the same validation and fault errors as
/// [`Simulator::simulate`](crate::Simulator::simulate).
pub fn simulate_des(
    config: &SimConfig,
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    faults: Option<&FaultModel>,
) -> Result<DesReport, SimError> {
    match faults {
        None => simulate_des_with(config, view, plan, tree, None),
        Some(faults) => {
            let (degraded, stalls) = crate::faults::prepare(tree, faults)?;
            simulate_des_with(config, view, plan, &degraded, Some(&stalls))
        }
    }
}

fn simulate_des_with(
    config: &SimConfig,
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    stalls: Option<&[f64]>,
) -> Result<DesReport, SimError> {
    if plan.depth() != tree.levels() {
        return Err(SimError::DepthMismatch {
            plan: plan.depth(),
            tree: tree.levels(),
        });
    }
    let n_layers = view.weighted_len();
    if plan.plan().len() != n_layers {
        return Err(SimError::LayerCountMismatch {
            level: 0,
            plan: plan.plan().len(),
            network: n_layers,
        });
    }

    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    let edges = view.conversion_edges();
    let geoms: Vec<LayerGeom> = (0..n_layers)
        .map(|l| layer_geom(tree.root(), plan, l))
        .collect();
    let n_leaves = geoms.first().map_or(1, |g| g.leaves.len());
    let n_nodes = geoms.first().map_or(0, |g| g.nodes.len());

    let mut builder = GraphBuilder {
        tasks: Vec::new(),
        config,
    };

    // Forward sweep tasks.
    // done_forward[l] = tasks whose completion makes F_{l+1} available.
    let mut done_forward: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
    // conv_f_in[l] = conversion tasks feeding layer l's forward input.
    let mut conv_f_in: Vec<Vec<usize>> = vec![Vec::new(); n_layers];

    for l in 0..n_layers {
        // Conversions feeding this layer (F direction).
        if config.interlayer {
            for edge in edges.iter().filter(|e| e.to == l) {
                for (node_idx, node) in geoms[l].nodes.iter().enumerate() {
                    let prev = node.plan.layer(edge.from);
                    let next = node.plan.layer(edge.to);
                    let boundary = edge.boundary_elems as f64 * node.scales.f_in;
                    let (f, _e) = inter_conversion_split(
                        prev.ptype,
                        prev.ratio.value(),
                        next.ptype,
                        next.ratio.value(),
                        boundary.round() as u64,
                        boundary.round() as u64,
                    );
                    let secs = (config.format.bytes_f64(f.0) / node.link_a)
                        .max(config.format.bytes_f64(f.1) / node.link_b);
                    let deps = done_forward[edge.from].clone();
                    let t = builder.push(secs, deps, Some(n_leaves + node_idx));
                    conv_f_in[l].push(t);
                }
            }
        }
        // Leaf compute. Transient stall windows occupy each leaf at the
        // start of the step, so they lengthen its first forward task.
        let mut completion: Vec<usize> = Vec::new();
        let mut leaf_tasks: Vec<usize> = Vec::new();
        for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
            let segs = phase_segments(layers[l], Phase::Forward, *scales);
            let mut secs = segments_secs(&segs, caps, config);
            if l == 0 {
                secs += stalls.map_or(0.0, |s| s.get(leaf_idx).copied().unwrap_or(0.0));
            }
            let t = builder.push(secs, conv_f_in[l].clone(), Some(leaf_idx));
            leaf_tasks.push(t);
        }
        completion.extend(leaf_tasks.iter().copied());
        // Psum exchanges, deepest first; a shallower exchange depends on
        // the deeper ones on the same cut path.
        let psums = builder.psum_tasks(&geoms[l], layers[l], Phase::Forward, n_leaves, &leaf_tasks);
        completion.extend(psums);
        done_forward[l] = completion;
    }

    // Backward + gradient sweep.
    // done_backward[l] = tasks completing E_l (layer l's output error).
    let mut done_backward: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
    let mut final_tasks: Vec<usize> = Vec::new();

    for l in (0..n_layers).rev() {
        // Conversions of the incoming error (E direction): from each
        // consumer layer c of layer l's output.
        let mut conv_e: Vec<usize> = Vec::new();
        if config.interlayer {
            for edge in edges.iter().filter(|e| e.from == l) {
                for (node_idx, node) in geoms[edge.to].nodes.iter().enumerate() {
                    let prev = node.plan.layer(edge.from);
                    let next = node.plan.layer(edge.to);
                    let boundary = edge.boundary_elems as f64 * node.scales.f_in;
                    let (_f, e) = inter_conversion_split(
                        prev.ptype,
                        prev.ratio.value(),
                        next.ptype,
                        next.ratio.value(),
                        boundary.round() as u64,
                        boundary.round() as u64,
                    );
                    let secs = (config.format.bytes_f64(e.0) / node.link_a)
                        .max(config.format.bytes_f64(e.1) / node.link_b);
                    // The consumer's backward must have produced E.
                    let deps = if done_backward[edge.to].is_empty() {
                        // The loss gradient: available once the whole
                        // forward pass reaches the output.
                        done_forward[n_layers - 1].clone()
                    } else {
                        done_backward[edge.to].clone()
                    };
                    let t = builder.push(secs, deps, Some(n_leaves + node_idx));
                    conv_e.push(t);
                }
            }
        }
        // The last layer consumes the loss directly.
        let e_ready = if conv_e.is_empty() && l == n_layers - 1 {
            done_forward[n_layers - 1].clone()
        } else {
            conv_e.clone()
        };

        // Backward compute + psum (produces E_l).
        let skip_backward = config.skip_first_backward && l == 0;
        if !skip_backward {
            let mut leaf_tasks = Vec::new();
            for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
                let segs = phase_segments(layers[l], Phase::Backward, *scales);
                let secs = segments_secs(&segs, caps, config);
                let t = builder.push(secs, e_ready.clone(), Some(leaf_idx));
                leaf_tasks.push(t);
            }
            let mut completion = leaf_tasks.clone();
            completion.extend(builder.psum_tasks(
                &geoms[l],
                layers[l],
                Phase::Backward,
                n_leaves,
                &leaf_tasks,
            ));
            done_backward[l] = completion;
        }

        // Gradient compute + psum (independent of the backward result).
        let mut leaf_tasks = Vec::new();
        for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
            let segs = phase_segments(layers[l], Phase::Gradient, *scales);
            let secs = segments_secs(&segs, caps, config);
            let t = builder.push(secs, e_ready.clone(), Some(leaf_idx));
            leaf_tasks.push(t);
        }
        final_tasks.extend(leaf_tasks.iter().copied());
        final_tasks.extend(builder.psum_tasks(
            &geoms[l],
            layers[l],
            Phase::Gradient,
            n_leaves,
            &leaf_tasks,
        ));
        final_tasks.extend(done_backward[l].iter().copied());
    }

    let report = builder.schedule(n_leaves, n_nodes, &final_tasks);
    // The free function has no handle to thread through; DES event
    // counts go to the process-wide handle when one is installed.
    let obs = accpar_obs::global();
    if obs.enabled() {
        obs.counter("des.sims").inc();
        obs.counter("des.tasks").add(report.tasks as u64);
    }
    Ok(report)
}

struct GraphBuilder<'c> {
    tasks: Vec<Task>,
    config: &'c SimConfig,
}

impl GraphBuilder<'_> {
    fn push(&mut self, duration: f64, deps: Vec<usize>, resource: Option<Resource>) -> usize {
        // A zero-duration task carries dependencies but must not occupy
        // (and thus queue on) a physical resource: a free conversion is
        // not a barrier.
        let resource = if duration > 0.0 { resource } else { None };
        self.tasks.push(Task {
            duration,
            deps,
            resource,
        });
        self.tasks.len() - 1
    }

    /// Creates the psum exchange tasks of one layer phase, deepest level
    /// first, chaining shallower exchanges after deeper ones. Forward
    /// phases additionally carry the attention-stage K/V exchange of a
    /// lowered `o` projection on the same cut links (each side sends its
    /// own token slice), mirroring the bulk-synchronous simulator and the
    /// analytic model. Returns the created task ids.
    fn psum_tasks(
        &mut self,
        geom: &LayerGeom,
        layer: &TrainLayer,
        phase: Phase,
        n_leaves: usize,
        leaf_tasks: &[usize],
    ) -> Vec<usize> {
        let mut created = Vec::new();
        let max_depth = geom.nodes.iter().map(|n| n.depth).max();
        let Some(max_depth) = max_depth else {
            return created;
        };
        let mut prev_level: Vec<usize> = Vec::new();
        for depth in (0..=max_depth).rev() {
            let mut this_level = Vec::new();
            for (node_idx, node) in geom.nodes.iter().enumerate() {
                if node.depth != depth {
                    continue;
                }
                let psum = if node.entry.ptype.psum_phase() == phase {
                    intra_psum_elems(node.entry.ptype, layer) as f64
                        * node.scales.psum_scale(node.entry.ptype)
                } else {
                    0.0
                };
                let (stage_a, stage_b) = if phase == Phase::Forward {
                    let full = attn_stage_elems(node.entry.ptype, layer) as f64;
                    let alpha = node.entry.ratio.value();
                    (
                        full * node.scales.shrink(node.entry.ptype, alpha).f_in,
                        full * node.scales.shrink(node.entry.ptype, 1.0 - alpha).f_in,
                    )
                } else {
                    (0.0, 0.0)
                };
                if psum == 0.0 && stage_a == 0.0 && stage_b == 0.0 {
                    continue;
                }
                let secs = (self.config.format.bytes_f64(psum + stage_a) / node.link_a)
                    .max(self.config.format.bytes_f64(psum + stage_b) / node.link_b);
                let mut deps: Vec<usize> = leaf_tasks.to_vec();
                deps.extend(prev_level.iter().copied());
                let t = self.push(secs, deps, Some(n_leaves + node_idx));
                this_level.push(t);
                created.push(t);
            }
            if !this_level.is_empty() {
                prev_level = this_level;
            }
        }
        created
    }

    /// Deterministic non-preemptive list scheduling in task-creation
    /// (topological) order.
    fn schedule(self, n_leaves: usize, n_nodes: usize, final_tasks: &[usize]) -> DesReport {
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut resource_free = vec![0.0f64; n_leaves + n_nodes];
        let mut busy = vec![0.0f64; n_leaves + n_nodes];
        for (i, task) in self.tasks.iter().enumerate() {
            let dep_ready = task
                .deps
                .iter()
                .map(|&d| finish[d])
                .fold(0.0f64, f64::max);
            let start = match task.resource {
                Some(r) => dep_ready.max(resource_free[r]),
                None => dep_ready,
            };
            finish[i] = start + task.duration;
            if let Some(r) = task.resource {
                resource_free[r] = finish[i];
                busy[r] += task.duration;
            }
        }
        let total = final_tasks
            .iter()
            .map(|&t| finish[t])
            .fold(0.0f64, f64::max);
        DesReport {
            total_secs: total,
            leaf_busy_secs: busy[..n_leaves].to_vec(),
            link_busy_secs: busy[n_leaves..].to_vec(),
            tasks: self.tasks.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemModel;
    use crate::Simulator;
    use accpar_dnn::{Layer, NetworkBuilder};
    use accpar_hw::AcceleratorArray;
    use accpar_partition::{HierPlan, LayerPlan, NetworkPlan};
    use accpar_tensor::{ConvGeometry, FeatureShape};

    fn fc_view(batch: usize, dims: &[usize]) -> TrainView {
        let mut b = NetworkBuilder::new("t", FeatureShape::fc(batch, dims[0]));
        for (i, pair) in dims.windows(2).enumerate() {
            b = b.linear(format!("fc{i}"), pair[0], pair[1]);
        }
        b.build().unwrap().train_view().unwrap()
    }

    fn dp_plan(n: usize, levels: usize) -> PlanTree {
        HierPlan::new(vec![
            NetworkPlan::uniform(n, LayerPlan::data_parallel());
            levels
        ])
        .to_tree()
    }

    #[test]
    fn des_never_exceeds_bsp() {
        // Same durations, strictly fewer synchronization constraints: the
        // DES schedule is never slower than the bulk-synchronous one.
        let config = SimConfig::default();
        for dims in [vec![256, 512, 128], vec![64, 64, 64, 64]] {
            let view = fc_view(128, &dims);
            let n = view.weighted_len();
            for boards in [2usize, 4] {
                let array = AcceleratorArray::heterogeneous_tpu(boards / 2, boards / 2);
                let levels = boards.trailing_zeros() as usize;
                let tree = GroupTree::bisect(&array, levels).unwrap();
                let plan = dp_plan(n, levels);
                let bsp = Simulator::new(config)
                    .simulate(&view, &plan, &tree, None)
                    .unwrap()
                    .total_secs;
                let des = simulate_des(&config, &view, &plan, &tree, None)
                    .unwrap()
                    .total_secs;
                assert!(
                    des <= bsp * (1.0 + 1e-9),
                    "dims {dims:?} boards {boards}: des {des} vs bsp {bsp}"
                );
                assert!(des > 0.2 * bsp, "des suspiciously fast: {des} vs {bsp}");
            }
        }
    }

    #[test]
    fn single_layer_single_level_matches_bsp_exactly() {
        // One layer, one cut: there is nothing to overlap, so the two
        // backends agree exactly.
        let config = SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        };
        let view = fc_view(64, &[128, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(1, 1);
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        let des = simulate_des(&config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        assert!((des - bsp).abs() / bsp < 1e-9, "des {des} vs bsp {bsp}");
    }

    #[test]
    fn des_overlaps_compute_with_communication() {
        // On hardware where per-layer compute and psum traffic are of the
        // same order, the DES overlaps one layer's gradient exchange with
        // the next layer's compute — the BSP barriers cannot. On Table 7
        // hardware the arrays are so network-bound that the two backends
        // coincide (an honest finding the `des_vs_bsp` bench reports), so
        // this test balances the rates explicitly.
        use accpar_hw::AcceleratorSpec;
        let spec =
            AcceleratorSpec::new("balanced", 1e9, 1 << 30, 100e9, 1e9, 2, 10e9).unwrap();
        let array = AcceleratorArray::homogeneous(spec, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let view = fc_view(512, &[512, 512, 512, 512, 512]);
        let plan = dp_plan(view.weighted_len(), 1);
        let config = SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        };
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        let des = simulate_des(&config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        // The DES hides all but the last gradient psum behind the next
        // layer's compute: with 4 weighted layers, exactly 3 exchanges of
        // A(W)·2 bytes at 1 GB/s disappear from the critical path.
        let psum_secs = (512.0 * 512.0 * 2.0) / 1e9;
        let expected_gap = 3.0 * psum_secs;
        let gap = bsp - des;
        assert!(
            (gap - expected_gap).abs() < 1e-9,
            "overlap gap {gap} vs expected {expected_gap} (des {des}, bsp {bsp})"
        );
    }

    #[test]
    fn residual_branches_are_handled() {
        // A two-branch Add block end to end through the DES backend.
        let view = NetworkBuilder::new("r", FeatureShape::conv(64, 32, 8, 8))
            .conv2d("stem", 32, 32, ConvGeometry::same(3))
            .block(
                accpar_dnn::JoinOp::Add,
                vec![
                    vec![Layer::conv2d("p1", 32, 32, ConvGeometry::same(3))],
                    vec![Layer::conv2d("p2", 32, 32, ConvGeometry::same(3))],
                ],
            )
            .flatten("f")
            .linear("fc", 32 * 64, 10)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let config = SimConfig::default();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(1, 1), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        let des = simulate_des(&config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        // Everything is bound by the single link here, so no overlap win
        // is available — but the DES must not be slower.
        assert!(des <= bsp * (1.0 + 1e-9), "des {des} vs bsp {bsp}");
    }

    #[test]
    fn validation_errors_match_simulator() {
        let view = fc_view(8, &[4, 4, 4]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let config = SimConfig::default();
        assert!(matches!(
            simulate_des(&config, &view, &dp_plan(2, 2), &tree, None),
            Err(SimError::DepthMismatch { .. })
        ));
        assert!(matches!(
            simulate_des(&config, &view, &dp_plan(3, 1), &tree, None),
            Err(SimError::LayerCountMismatch { .. })
        ));
    }

    #[test]
    fn faulted_des_is_deterministic_and_matches_degraded_tree() {
        let view = fc_view(128, &[512, 512, 512]);
        let n = view.weighted_len();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 2).unwrap();
        let plan = dp_plan(n, 2);
        let config = SimConfig::default();
        let clean = simulate_des(&config, &view, &plan, &tree, None).unwrap();
        let faults = FaultModel::with_seed(42)
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(1, 0.25)
            .unwrap();
        let a = simulate_des(&config, &view, &plan, &tree, Some(&faults)).unwrap();
        let b = simulate_des(&config, &view, &plan, &tree, Some(&faults)).unwrap();
        assert_eq!(a, b, "seeded fault scenario must be bit-reproducible");
        assert!(a.total_secs > clean.total_secs);
        // Rate faults alone are exactly a simulation of the degraded tree.
        let direct =
            simulate_des(&config, &view, &plan, &tree.degraded(&faults).unwrap(), None).unwrap();
        assert_eq!(a, direct);
        // Faults never make the DES slower than the faulted BSP barrier
        // schedule.
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, Some(&faults))
            .unwrap();
        assert!(a.total_secs <= bsp.total_secs * (1.0 + 1e-9));
    }

    #[test]
    fn des_stall_delays_the_step() {
        let view = fc_view(64, &[256, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let config = SimConfig::default();
        let clean = simulate_des(&config, &view, &plan, &tree, None).unwrap();
        let stall = 1e-3;
        let faults = FaultModel::new().stall_leaf(1, stall).unwrap();
        let stalled = simulate_des(&config, &view, &plan, &tree, Some(&faults)).unwrap();
        // With symmetric leaves the whole stall lands on the critical path.
        assert!((stalled.total_secs - clean.total_secs - stall).abs() < 1e-12);
    }

    #[test]
    fn des_fault_validation_errors() {
        let view = fc_view(8, &[4, 4]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let config = SimConfig::default();
        assert!(matches!(
            simulate_des(
                &config,
                &view,
                &plan,
                &tree, Some(&FaultModel::new().slow_leaf(9, 0.5).unwrap())),
            Err(SimError::FaultLeafOutOfRange { leaf: 9, leaves: 2 })
        ));
        assert!(matches!(
            simulate_des(&config, &view, &plan, &tree, Some(&FaultModel::new().drop_leaf(0))),
            Err(SimError::DroppedLeaf { leaf: 0 })
        ));
    }

    #[test]
    fn report_accessors() {
        let view = fc_view(32, &[64, 64]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let report = simulate_des(&SimConfig::default(), &view, &dp_plan(1, 1), &tree, None).unwrap();
        assert!(report.total_secs > 0.0);
        assert!(report.tasks > 0);
        assert!(report.mean_utilization() > 0.0 && report.mean_utilization() <= 1.0);
        assert_eq!(report.leaf_busy_secs.len(), 2);
        assert_eq!(report.link_busy_secs.len(), 1);
        assert!(report.to_string().contains("des step"));
    }
}
