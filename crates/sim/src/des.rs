//! A discrete-event alternative to the bulk-synchronous simulator.
//!
//! The default [`Simulator`](crate::Simulator) executes phases in
//! lockstep: every leaf waits at a global barrier after each phase. Real
//! arrays overlap more: a residual block's branches are data-independent
//! and can compute concurrently, a layer's gradient can overlap a
//! neighbour's conversion, and exchanges on different cuts proceed in
//! parallel. This module builds the training step's full **task graph**
//! — per-leaf compute tasks, per-cut partial-sum exchanges and boundary
//! conversions, with true data dependencies — and schedules it with a
//! deterministic non-preemptive list scheduler over the array's
//! resources (one compute unit per leaf, one link per tree cut).
//!
//! # Engine layout
//!
//! The task graph lives in a [`DesArena`]: struct-of-arrays task storage
//! (duration, resource, dependency range) with every dependency list
//! stored as an `(offset, len)` range into one shared flat pool — no
//! per-task `Vec`, nothing cloned during graph building. Dense fan-ins
//! (every psum exchange waiting on every leaf of a layer, every
//! conversion waiting on the whole previous layer) are collapsed through
//! synthetic zero-duration **join tasks**: one barrier task depends on
//! the `n` producers once, and the `m` consumers each depend on the
//! single barrier, turning `n·m` edges into `n + m`. Join tasks occupy
//! no resource and carry zero duration, so under the max-plus schedule
//! recurrence they are exact: `finish` times, busy vectors and the
//! makespan are bit-identical to the naive expansion (kept as a hidden
//! [`simulate_des_naive`] reference, which the differential test battery
//! replays).
//!
//! The arena is reusable: [`simulate_des_in`] recycles one arena's
//! buffers across calls, which plan sweeps (fault-sensitivity scans,
//! replanning, serving) use to run DES-grade validation without paying
//! an allocation storm per simulation.
//!
//! The gap between the two backends bounds the cost of the
//! bulk-synchronous assumption; the `des_vs_bsp` ablation (run by
//! `--bin ablations` counterparts in `accpar-bench`) reports it.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::geometry::{layer_geom, LayerGeom};
use crate::machine::segments_secs;
use crate::trace::phase_segments;
use accpar_cost::comm::{attn_stage_elems, inter_conversion_split, intra_psum_elems};
use accpar_dnn::{TrainLayer, TrainView};
use accpar_hw::{FaultModel, GroupTree};
use accpar_partition::{Phase, PlanTree};
use std::fmt;
use std::time::Instant;

#[doc(hidden)]
pub use naive::simulate_des_naive;

/// Sentinel for "no resource": the task carries dependencies but never
/// queues on a compute unit or link.
const NO_RESOURCE: u32 = u32::MAX;

/// Sentinel for "no task" in per-layer barrier tables.
const NO_TASK: u32 = u32::MAX;

/// The result of a discrete-event simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Makespan of the scheduled task graph.
    pub total_secs: f64,
    /// Busy seconds per leaf compute resource.
    pub leaf_busy_secs: Vec<f64>,
    /// Busy seconds per cut link resource.
    pub link_busy_secs: Vec<f64>,
    /// Number of scheduled tasks (compute, exchange and conversion
    /// tasks; synthetic join barriers are bookkeeping, not work, and are
    /// not counted).
    pub tasks: usize,
}

impl DesReport {
    /// Mean leaf compute utilization.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.leaf_busy_secs.is_empty() || self.total_secs == 0.0 {
            return 0.0;
        }
        self.leaf_busy_secs.iter().sum::<f64>()
            / self.leaf_busy_secs.len() as f64
            / self.total_secs
    }
}

impl fmt::Display for DesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "des step {:.3} ms ({} tasks, util {:.1}%)",
            self.total_secs * 1e3,
            self.tasks,
            self.mean_utilization() * 100.0
        )
    }
}

/// Preallocated, reusable storage for one discrete-event simulation:
/// struct-of-arrays task tables, the shared flat dependency pool, the
/// scheduler's `finish` / resource-availability vectors, and the id
/// scratch lists the graph builder threads between layers.
///
/// One arena serves any number of [`simulate_des_in`] calls; buffers are
/// cleared (capacity kept) between simulations, so steady-state sweeps
/// run allocation-free. An arena is cheap when unused — `Default`
/// allocates nothing.
#[derive(Debug, Default)]
pub struct DesArena {
    // Task tables, indexed by task id.
    duration: Vec<f64>,
    resource: Vec<u32>,
    dep_off: Vec<u32>,
    dep_len: Vec<u32>,
    /// The shared dependency pool every task's `(dep_off, dep_len)`
    /// range points into.
    deps: Vec<u32>,
    /// Scheduled (non-synthetic) tasks.
    real_tasks: usize,
    // Scheduler state.
    finish: Vec<f64>,
    resource_free: Vec<f64>,
    busy: Vec<f64>,
    // Graph-builder scratch: per-layer id lists and barrier tables.
    conv_ids: Vec<u32>,
    leaf_ids: Vec<u32>,
    psum_ids: Vec<u32>,
    level_ids: Vec<u32>,
    final_ids: Vec<u32>,
    fwd_done: Vec<u32>,
    bwd_done: Vec<u32>,
}

impl DesArena {
    /// An empty arena. Allocates nothing until its first simulation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Dependency edges recorded by the most recent simulation
    /// (including the edges into and out of synthetic join tasks).
    #[must_use]
    pub fn dep_edges(&self) -> usize {
        self.deps.len()
    }

    /// Clears every buffer, keeping capacity.
    fn reset(&mut self) {
        self.duration.clear();
        self.resource.clear();
        self.dep_off.clear();
        self.dep_len.clear();
        self.deps.clear();
        self.real_tasks = 0;
        self.conv_ids.clear();
        self.leaf_ids.clear();
        self.psum_ids.clear();
        self.level_ids.clear();
        self.final_ids.clear();
        self.fwd_done.clear();
        self.bwd_done.clear();
    }

    /// Appends a scheduled task with `deps` copied into the shared pool.
    /// A zero-duration task carries dependencies but must not occupy
    /// (and thus queue on) a physical resource: a free conversion is not
    /// a barrier.
    fn push(&mut self, duration: f64, deps: &[u32], resource: u32) -> u32 {
        let resource = if duration > 0.0 { resource } else { NO_RESOURCE };
        self.real_tasks += 1;
        self.push_raw(duration, deps, resource)
    }

    /// Collapses a dense fan-in: returns a task id whose finish time is
    /// exactly `max(finish[deps])`. For zero or one producer no task is
    /// needed; otherwise a synthetic zero-duration, resource-free join
    /// task is appended (not counted in [`DesReport::tasks`]). `f64::max`
    /// over non-NaN values is exact, so routing a dependency set through
    /// a join changes no finish time by even one ulp.
    fn join(&mut self, deps: &[u32]) -> Option<u32> {
        match deps {
            [] => None,
            [single] => Some(*single),
            many => Some(self.push_raw(0.0, many, NO_RESOURCE)),
        }
    }

    fn push_raw(&mut self, duration: f64, deps: &[u32], resource: u32) -> u32 {
        self.duration.push(duration);
        self.resource.push(resource);
        self.dep_off.push(self.deps.len() as u32);
        self.dep_len.push(deps.len() as u32);
        self.deps.extend_from_slice(deps);
        (self.duration.len() - 1) as u32
    }

    /// Deterministic non-preemptive list scheduling in task-creation
    /// (topological) order over the flat tables.
    fn schedule(&mut self, n_leaves: usize, n_nodes: usize) -> DesReport {
        let n = self.duration.len();
        self.finish.clear();
        self.finish.resize(n, 0.0);
        self.resource_free.clear();
        self.resource_free.resize(n_leaves + n_nodes, 0.0);
        self.busy.clear();
        self.busy.resize(n_leaves + n_nodes, 0.0);
        for i in 0..n {
            let off = self.dep_off[i] as usize;
            let len = self.dep_len[i] as usize;
            let mut dep_ready = 0.0f64;
            for &d in &self.deps[off..off + len] {
                dep_ready = dep_ready.max(self.finish[d as usize]);
            }
            let r = self.resource[i];
            let start = if r == NO_RESOURCE {
                dep_ready
            } else {
                dep_ready.max(self.resource_free[r as usize])
            };
            let f = start + self.duration[i];
            self.finish[i] = f;
            if r != NO_RESOURCE {
                self.resource_free[r as usize] = f;
                self.busy[r as usize] += self.duration[i];
            }
        }
        let total = self
            .final_ids
            .iter()
            .map(|&t| self.finish[t as usize])
            .fold(0.0f64, f64::max);
        DesReport {
            total_secs: total,
            leaf_busy_secs: self.busy[..n_leaves].to_vec(),
            link_busy_secs: self.busy[n_leaves..].to_vec(),
            tasks: self.real_tasks,
        }
    }
}

/// Builds and schedules the training step's task graph, entirely driven
/// by `config`.
///
/// With `faults` set, rate faults are folded into a degraded copy of
/// `tree`, and each leaf's transient stall window delays its first
/// forward task. Unlike the bulk-synchronous report, `leaf_busy_secs`
/// here includes the stall window (the leaf's compute resource is
/// occupied while it stalls, delaying everything queued behind it).
///
/// Allocates a fresh [`DesArena`] per call; sweeps that simulate many
/// scenarios should hold one arena and call [`simulate_des_in`].
///
/// # Errors
///
/// Returns the same validation and fault errors as
/// [`Simulator::simulate`](crate::Simulator::simulate).
pub fn simulate_des(
    config: &SimConfig,
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    faults: Option<&FaultModel>,
) -> Result<DesReport, SimError> {
    let mut arena = DesArena::new();
    simulate_des_in(&mut arena, config, view, plan, tree, faults)
}

/// [`simulate_des`] recycling the caller's [`DesArena`]: identical
/// results, but graph storage, the dependency pool and the scheduler
/// vectors are reused across calls, so repeated simulations (replan
/// sweeps, fault-sensitivity scans, cache admission cross-checks) run
/// allocation-free in steady state.
///
/// # Errors
///
/// As [`simulate_des`].
pub fn simulate_des_in(
    arena: &mut DesArena,
    config: &SimConfig,
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    faults: Option<&FaultModel>,
) -> Result<DesReport, SimError> {
    match faults {
        None => simulate_des_with(arena, config, view, plan, tree, None),
        Some(faults) => {
            let (degraded, stalls) = crate::faults::prepare(tree, faults)?;
            simulate_des_with(arena, config, view, plan, &degraded, Some(&stalls))
        }
    }
}

fn simulate_des_with(
    arena: &mut DesArena,
    config: &SimConfig,
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    stalls: Option<&[f64]>,
) -> Result<DesReport, SimError> {
    if plan.depth() != tree.levels() {
        return Err(SimError::DepthMismatch {
            plan: plan.depth(),
            tree: tree.levels(),
        });
    }
    let n_layers = view.weighted_len();
    if plan.plan().len() != n_layers {
        return Err(SimError::LayerCountMismatch {
            level: 0,
            plan: plan.plan().len(),
            network: n_layers,
        });
    }

    // The free function has no handle to thread through; DES timings
    // and counts go to the process-wide handle when one is installed.
    // Clocks are only read when a subscriber is listening.
    let obs = accpar_obs::global();
    let t_start = obs.enabled().then(Instant::now);

    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    let edges = view.conversion_edges();
    let geoms: Vec<LayerGeom> = (0..n_layers)
        .map(|l| layer_geom(tree.root(), plan, l))
        .collect();
    let n_leaves = geoms.first().map_or(1, |g| g.leaves.len());
    let n_nodes = geoms.first().map_or(0, |g| g.nodes.len());

    arena.reset();
    arena.fwd_done.resize(n_layers, NO_TASK);
    arena.bwd_done.resize(n_layers, NO_TASK);
    let mut conv_ids = std::mem::take(&mut arena.conv_ids);
    let mut leaf_ids = std::mem::take(&mut arena.leaf_ids);
    let mut psum_ids = std::mem::take(&mut arena.psum_ids);
    let mut final_ids = std::mem::take(&mut arena.final_ids);

    // Forward sweep. fwd_done[l] is a single barrier task whose finish
    // time equals the completion of everything producing F_{l+1}
    // (leaf compute plus forward psum exchanges) — the join-task
    // equivalent of the naive engine's per-layer completion *list*.
    for l in 0..n_layers {
        // Conversions feeding this layer (F direction): each depends on
        // the producer layer's single completion barrier, not on every
        // one of its tasks.
        conv_ids.clear();
        if config.interlayer {
            for edge in edges.iter().filter(|e| e.to == l) {
                let producer_done = arena.fwd_done[edge.from];
                let dep_buf = [producer_done];
                let deps: &[u32] = if producer_done == NO_TASK { &[] } else { &dep_buf };
                for (node_idx, node) in geoms[l].nodes.iter().enumerate() {
                    let prev = node.plan.layer(edge.from);
                    let next = node.plan.layer(edge.to);
                    let boundary = edge.boundary_elems as f64 * node.scales.f_in;
                    let (f, _e) = inter_conversion_split(
                        prev.ptype,
                        prev.ratio.value(),
                        next.ptype,
                        next.ratio.value(),
                        boundary.round() as u64,
                        boundary.round() as u64,
                    );
                    let secs = (config.format.bytes_f64(f.0) / node.link_a)
                        .max(config.format.bytes_f64(f.1) / node.link_b);
                    let t = arena.push(secs, deps, (n_leaves + node_idx) as u32);
                    conv_ids.push(t);
                }
            }
        }
        // One barrier over all conversions feeding this layer; every
        // leaf waits on it instead of on the full conversion list.
        let conv_ready = arena.join(&conv_ids);
        // Leaf compute. Transient stall windows occupy each leaf at the
        // start of the step, so they lengthen its first forward task.
        leaf_ids.clear();
        for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
            let segs = phase_segments(layers[l], Phase::Forward, *scales);
            let mut secs = segments_secs(&segs, caps, config);
            if l == 0 {
                secs += stalls.map_or(0.0, |s| s.get(leaf_idx).copied().unwrap_or(0.0));
            }
            let deps = conv_ready.as_slice();
            let t = arena.push(secs, deps, leaf_idx as u32);
            leaf_ids.push(t);
        }
        // Psum exchanges, deepest first; a shallower exchange depends on
        // the deeper ones on the same cut path.
        psum_ids.clear();
        psum_tasks(
            arena,
            config,
            &geoms[l],
            layers[l],
            Phase::Forward,
            n_leaves,
            &leaf_ids,
            &mut psum_ids,
        );
        // The layer's completion barrier: leaves plus psum exchanges.
        leaf_ids.extend_from_slice(&psum_ids);
        let done = arena.join(&leaf_ids).expect("a layer has at least one leaf");
        arena.fwd_done[l] = done;
    }

    // Backward + gradient sweep. bwd_done[l] is the barrier completing
    // E_l (layer l's output error), NO_TASK when the backward pass was
    // skipped for this layer.
    final_ids.clear();
    for l in (0..n_layers).rev() {
        // Conversions of the incoming error (E direction): from each
        // consumer layer c of layer l's output.
        conv_ids.clear();
        if config.interlayer {
            for edge in edges.iter().filter(|e| e.from == l) {
                // The consumer's backward must have produced E; when it
                // has not, the loss gradient is available once the whole
                // forward pass reaches the output.
                let producer = if arena.bwd_done[edge.to] == NO_TASK {
                    arena.fwd_done[n_layers - 1]
                } else {
                    arena.bwd_done[edge.to]
                };
                for (node_idx, node) in geoms[edge.to].nodes.iter().enumerate() {
                    let prev = node.plan.layer(edge.from);
                    let next = node.plan.layer(edge.to);
                    let boundary = edge.boundary_elems as f64 * node.scales.f_in;
                    let (_f, e) = inter_conversion_split(
                        prev.ptype,
                        prev.ratio.value(),
                        next.ptype,
                        next.ratio.value(),
                        boundary.round() as u64,
                        boundary.round() as u64,
                    );
                    let secs = (config.format.bytes_f64(e.0) / node.link_a)
                        .max(config.format.bytes_f64(e.1) / node.link_b);
                    let t = arena.push(secs, &[producer], (n_leaves + node_idx) as u32);
                    conv_ids.push(t);
                }
            }
        }
        // The last layer consumes the loss directly.
        let e_ready = if conv_ids.is_empty() && l == n_layers - 1 {
            Some(arena.fwd_done[n_layers - 1])
        } else {
            arena.join(&conv_ids)
        };
        let e_buf = [e_ready.unwrap_or(NO_TASK)];
        let e_deps: &[u32] = if e_ready.is_some() { &e_buf } else { &[] };

        // Backward compute + psum (produces E_l).
        let skip_backward = config.skip_first_backward && l == 0;
        if !skip_backward {
            leaf_ids.clear();
            for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
                let segs = phase_segments(layers[l], Phase::Backward, *scales);
                let secs = segments_secs(&segs, caps, config);
                let t = arena.push(secs, e_deps, leaf_idx as u32);
                leaf_ids.push(t);
            }
            psum_ids.clear();
            psum_tasks(
                arena,
                config,
                &geoms[l],
                layers[l],
                Phase::Backward,
                n_leaves,
                &leaf_ids,
                &mut psum_ids,
            );
            leaf_ids.extend_from_slice(&psum_ids);
            let done = arena.join(&leaf_ids).expect("a layer has at least one leaf");
            arena.bwd_done[l] = done;
        }

        // Gradient compute + psum (independent of the backward result).
        leaf_ids.clear();
        for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
            let segs = phase_segments(layers[l], Phase::Gradient, *scales);
            let secs = segments_secs(&segs, caps, config);
            let t = arena.push(secs, e_deps, leaf_idx as u32);
            leaf_ids.push(t);
        }
        final_ids.extend_from_slice(&leaf_ids);
        psum_ids.clear();
        psum_tasks(
            arena,
            config,
            &geoms[l],
            layers[l],
            Phase::Gradient,
            n_leaves,
            &leaf_ids,
            &mut psum_ids,
        );
        final_ids.extend_from_slice(&psum_ids);
        if arena.bwd_done[l] != NO_TASK {
            final_ids.push(arena.bwd_done[l]);
        }
    }

    arena.final_ids = final_ids;
    let t_built = obs.enabled().then(Instant::now);
    let report = arena.schedule(n_leaves, n_nodes);
    if obs.enabled() {
        if let (Some(start), Some(built)) = (t_start, t_built) {
            let build_us = built.duration_since(start).as_micros() as u64;
            let schedule_us = built.elapsed().as_micros() as u64;
            obs.histogram("des.build_us").record(build_us);
            obs.histogram("des.schedule_us").record(schedule_us);
        }
        obs.counter("des.sims").inc();
        obs.counter("des.tasks").add(report.tasks as u64);
        obs.counter("des.dep_edges").add(arena.deps.len() as u64);
    }
    arena.conv_ids = conv_ids;
    arena.leaf_ids = leaf_ids;
    arena.psum_ids = psum_ids;
    Ok(report)
}

/// Creates the psum exchange tasks of one layer phase, deepest level
/// first, chaining shallower exchanges after deeper ones. Forward phases
/// additionally carry the attention-stage K/V exchange of a lowered `o`
/// projection on the same cut links (each side sends its own token
/// slice), mirroring the bulk-synchronous simulator and the analytic
/// model.
///
/// Fan-ins are barrier-collapsed: every exchange of a layer phase waits
/// on one join over the phase's leaf tasks (instead of on all `n`
/// leaves), and each shallower level waits on one join over the previous
/// deeper level (instead of on each of its exchanges) — `O(leaves)`
/// edges where the naive expansion pays `O(leaves · cuts)`.
///
/// Appends the created (scheduled) task ids to `created`.
#[allow(clippy::too_many_arguments)]
fn psum_tasks(
    arena: &mut DesArena,
    config: &SimConfig,
    geom: &LayerGeom,
    layer: &TrainLayer,
    phase: Phase,
    n_leaves: usize,
    leaf_tasks: &[u32],
    created: &mut Vec<u32>,
) {
    let Some(max_depth) = geom.nodes.iter().map(|n| n.depth).max() else {
        return;
    };
    // Lazily created: layers whose phase carries no exchange at all
    // must not leave a stray join task behind.
    let mut leaf_join: Option<u32> = None;
    let mut prev_join: Option<u32> = None;
    let mut this_level = std::mem::take(&mut arena.level_ids);
    for depth in (0..=max_depth).rev() {
        this_level.clear();
        for (node_idx, node) in geom.nodes.iter().enumerate() {
            if node.depth != depth {
                continue;
            }
            let psum = if node.entry.ptype.psum_phase() == phase {
                intra_psum_elems(node.entry.ptype, layer) as f64
                    * node.scales.psum_scale(node.entry.ptype)
            } else {
                0.0
            };
            let (stage_a, stage_b) = if phase == Phase::Forward {
                let full = attn_stage_elems(node.entry.ptype, layer) as f64;
                let alpha = node.entry.ratio.value();
                (
                    full * node.scales.shrink(node.entry.ptype, alpha).f_in,
                    full * node.scales.shrink(node.entry.ptype, 1.0 - alpha).f_in,
                )
            } else {
                (0.0, 0.0)
            };
            if psum == 0.0 && stage_a == 0.0 && stage_b == 0.0 {
                continue;
            }
            let secs = (config.format.bytes_f64(psum + stage_a) / node.link_a)
                .max(config.format.bytes_f64(psum + stage_b) / node.link_b);
            let leaves_done = *leaf_join.get_or_insert_with(|| {
                arena
                    .join(leaf_tasks)
                    .expect("a layer has at least one leaf")
            });
            let mut deps = [leaves_done, 0];
            let deps: &[u32] = match prev_join {
                Some(p) => {
                    deps[1] = p;
                    &deps
                }
                None => &deps[..1],
            };
            let t = arena.push(secs, deps, (n_leaves + node_idx) as u32);
            this_level.push(t);
            created.push(t);
        }
        if !this_level.is_empty() {
            prev_join = arena.join(&this_level);
        }
    }
    arena.level_ids = this_level;
}

/// The pre-overhaul DES engine, kept verbatim as the differential
/// reference: per-task `Vec` dependency lists, fully expanded fan-ins
/// (every psum exchange depends on every leaf, every conversion on the
/// producer layer's complete completion list). The arena engine must
/// produce bit-identical reports; `tests/des_identity.rs` and the
/// property battery assert it.
mod naive {
    use super::*;

    struct Task {
        duration: f64,
        deps: Vec<usize>,
        resource: Option<usize>,
    }

    /// The naive (pre-overhaul) reference implementation of
    /// [`simulate_des`]. Asymptotically quadratic in leaves × cuts —
    /// test reference only.
    ///
    /// # Errors
    ///
    /// As [`simulate_des`].
    #[doc(hidden)]
    pub fn simulate_des_naive(
        config: &SimConfig,
        view: &TrainView,
        plan: &PlanTree,
        tree: &GroupTree,
        faults: Option<&FaultModel>,
    ) -> Result<DesReport, SimError> {
        match faults {
            None => simulate_naive_with(config, view, plan, tree, None),
            Some(faults) => {
                let (degraded, stalls) = crate::faults::prepare(tree, faults)?;
                simulate_naive_with(config, view, plan, &degraded, Some(&stalls))
            }
        }
    }

    fn simulate_naive_with(
        config: &SimConfig,
        view: &TrainView,
        plan: &PlanTree,
        tree: &GroupTree,
        stalls: Option<&[f64]>,
    ) -> Result<DesReport, SimError> {
        if plan.depth() != tree.levels() {
            return Err(SimError::DepthMismatch {
                plan: plan.depth(),
                tree: tree.levels(),
            });
        }
        let n_layers = view.weighted_len();
        if plan.plan().len() != n_layers {
            return Err(SimError::LayerCountMismatch {
                level: 0,
                plan: plan.plan().len(),
                network: n_layers,
            });
        }

        let mut layers: Vec<&TrainLayer> = view.layers().collect();
        layers.sort_by_key(|l| l.index());
        let edges = view.conversion_edges();
        let geoms: Vec<LayerGeom> = (0..n_layers)
            .map(|l| layer_geom(tree.root(), plan, l))
            .collect();
        let n_leaves = geoms.first().map_or(1, |g| g.leaves.len());
        let n_nodes = geoms.first().map_or(0, |g| g.nodes.len());

        let mut builder = GraphBuilder {
            tasks: Vec::new(),
            config,
        };

        // Forward sweep tasks.
        let mut done_forward: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
        let mut conv_f_in: Vec<Vec<usize>> = vec![Vec::new(); n_layers];

        for l in 0..n_layers {
            if config.interlayer {
                for edge in edges.iter().filter(|e| e.to == l) {
                    for (node_idx, node) in geoms[l].nodes.iter().enumerate() {
                        let prev = node.plan.layer(edge.from);
                        let next = node.plan.layer(edge.to);
                        let boundary = edge.boundary_elems as f64 * node.scales.f_in;
                        let (f, _e) = inter_conversion_split(
                            prev.ptype,
                            prev.ratio.value(),
                            next.ptype,
                            next.ratio.value(),
                            boundary.round() as u64,
                            boundary.round() as u64,
                        );
                        let secs = (config.format.bytes_f64(f.0) / node.link_a)
                            .max(config.format.bytes_f64(f.1) / node.link_b);
                        let deps = done_forward[edge.from].clone();
                        let t = builder.push(secs, deps, Some(n_leaves + node_idx));
                        conv_f_in[l].push(t);
                    }
                }
            }
            let mut completion: Vec<usize> = Vec::new();
            let mut leaf_tasks: Vec<usize> = Vec::new();
            for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
                let segs = phase_segments(layers[l], Phase::Forward, *scales);
                let mut secs = segments_secs(&segs, caps, config);
                if l == 0 {
                    secs += stalls.map_or(0.0, |s| s.get(leaf_idx).copied().unwrap_or(0.0));
                }
                let t = builder.push(secs, conv_f_in[l].clone(), Some(leaf_idx));
                leaf_tasks.push(t);
            }
            completion.extend(leaf_tasks.iter().copied());
            let psums =
                builder.psum_tasks(&geoms[l], layers[l], Phase::Forward, n_leaves, &leaf_tasks);
            completion.extend(psums);
            done_forward[l] = completion;
        }

        // Backward + gradient sweep.
        let mut done_backward: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
        let mut final_tasks: Vec<usize> = Vec::new();

        for l in (0..n_layers).rev() {
            let mut conv_e: Vec<usize> = Vec::new();
            if config.interlayer {
                for edge in edges.iter().filter(|e| e.from == l) {
                    for (node_idx, node) in geoms[edge.to].nodes.iter().enumerate() {
                        let prev = node.plan.layer(edge.from);
                        let next = node.plan.layer(edge.to);
                        let boundary = edge.boundary_elems as f64 * node.scales.f_in;
                        let (_f, e) = inter_conversion_split(
                            prev.ptype,
                            prev.ratio.value(),
                            next.ptype,
                            next.ratio.value(),
                            boundary.round() as u64,
                            boundary.round() as u64,
                        );
                        let secs = (config.format.bytes_f64(e.0) / node.link_a)
                            .max(config.format.bytes_f64(e.1) / node.link_b);
                        let deps = if done_backward[edge.to].is_empty() {
                            done_forward[n_layers - 1].clone()
                        } else {
                            done_backward[edge.to].clone()
                        };
                        let t = builder.push(secs, deps, Some(n_leaves + node_idx));
                        conv_e.push(t);
                    }
                }
            }
            let e_ready = if conv_e.is_empty() && l == n_layers - 1 {
                done_forward[n_layers - 1].clone()
            } else {
                conv_e.clone()
            };

            let skip_backward = config.skip_first_backward && l == 0;
            if !skip_backward {
                let mut leaf_tasks = Vec::new();
                for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
                    let segs = phase_segments(layers[l], Phase::Backward, *scales);
                    let secs = segments_secs(&segs, caps, config);
                    let t = builder.push(secs, e_ready.clone(), Some(leaf_idx));
                    leaf_tasks.push(t);
                }
                let mut completion = leaf_tasks.clone();
                completion.extend(builder.psum_tasks(
                    &geoms[l],
                    layers[l],
                    Phase::Backward,
                    n_leaves,
                    &leaf_tasks,
                ));
                done_backward[l] = completion;
            }

            let mut leaf_tasks = Vec::new();
            for (leaf_idx, (caps, scales)) in geoms[l].leaves.iter().enumerate() {
                let segs = phase_segments(layers[l], Phase::Gradient, *scales);
                let secs = segments_secs(&segs, caps, config);
                let t = builder.push(secs, e_ready.clone(), Some(leaf_idx));
                leaf_tasks.push(t);
            }
            final_tasks.extend(leaf_tasks.iter().copied());
            final_tasks.extend(builder.psum_tasks(
                &geoms[l],
                layers[l],
                Phase::Gradient,
                n_leaves,
                &leaf_tasks,
            ));
            final_tasks.extend(done_backward[l].iter().copied());
        }

        Ok(builder.schedule(n_leaves, n_nodes, &final_tasks))
    }

    struct GraphBuilder<'c> {
        tasks: Vec<Task>,
        config: &'c SimConfig,
    }

    impl GraphBuilder<'_> {
        fn push(&mut self, duration: f64, deps: Vec<usize>, resource: Option<usize>) -> usize {
            let resource = if duration > 0.0 { resource } else { None };
            self.tasks.push(Task {
                duration,
                deps,
                resource,
            });
            self.tasks.len() - 1
        }

        fn psum_tasks(
            &mut self,
            geom: &LayerGeom,
            layer: &TrainLayer,
            phase: Phase,
            n_leaves: usize,
            leaf_tasks: &[usize],
        ) -> Vec<usize> {
            let mut created = Vec::new();
            let max_depth = geom.nodes.iter().map(|n| n.depth).max();
            let Some(max_depth) = max_depth else {
                return created;
            };
            let mut prev_level: Vec<usize> = Vec::new();
            for depth in (0..=max_depth).rev() {
                let mut this_level = Vec::new();
                for (node_idx, node) in geom.nodes.iter().enumerate() {
                    if node.depth != depth {
                        continue;
                    }
                    let psum = if node.entry.ptype.psum_phase() == phase {
                        intra_psum_elems(node.entry.ptype, layer) as f64
                            * node.scales.psum_scale(node.entry.ptype)
                    } else {
                        0.0
                    };
                    let (stage_a, stage_b) = if phase == Phase::Forward {
                        let full = attn_stage_elems(node.entry.ptype, layer) as f64;
                        let alpha = node.entry.ratio.value();
                        (
                            full * node.scales.shrink(node.entry.ptype, alpha).f_in,
                            full * node.scales.shrink(node.entry.ptype, 1.0 - alpha).f_in,
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    if psum == 0.0 && stage_a == 0.0 && stage_b == 0.0 {
                        continue;
                    }
                    let secs = (self.config.format.bytes_f64(psum + stage_a) / node.link_a)
                        .max(self.config.format.bytes_f64(psum + stage_b) / node.link_b);
                    let mut deps: Vec<usize> = leaf_tasks.to_vec();
                    deps.extend(prev_level.iter().copied());
                    let t = self.push(secs, deps, Some(n_leaves + node_idx));
                    this_level.push(t);
                    created.push(t);
                }
                if !this_level.is_empty() {
                    prev_level = this_level;
                }
            }
            created
        }

        fn schedule(self, n_leaves: usize, n_nodes: usize, final_tasks: &[usize]) -> DesReport {
            let mut finish = vec![0.0f64; self.tasks.len()];
            let mut resource_free = vec![0.0f64; n_leaves + n_nodes];
            let mut busy = vec![0.0f64; n_leaves + n_nodes];
            for (i, task) in self.tasks.iter().enumerate() {
                let dep_ready = task
                    .deps
                    .iter()
                    .map(|&d| finish[d])
                    .fold(0.0f64, f64::max);
                let start = match task.resource {
                    Some(r) => dep_ready.max(resource_free[r]),
                    None => dep_ready,
                };
                finish[i] = start + task.duration;
                if let Some(r) = task.resource {
                    resource_free[r] = finish[i];
                    busy[r] += task.duration;
                }
            }
            let total = final_tasks
                .iter()
                .map(|&t| finish[t])
                .fold(0.0f64, f64::max);
            DesReport {
                total_secs: total,
                leaf_busy_secs: busy[..n_leaves].to_vec(),
                link_busy_secs: busy[n_leaves..].to_vec(),
                tasks: self.tasks.len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemModel;
    use crate::Simulator;
    use accpar_dnn::{Layer, NetworkBuilder};
    use accpar_hw::AcceleratorArray;
    use accpar_partition::{HierPlan, LayerPlan, NetworkPlan};
    use accpar_tensor::{ConvGeometry, FeatureShape};

    fn fc_view(batch: usize, dims: &[usize]) -> TrainView {
        let mut b = NetworkBuilder::new("t", FeatureShape::fc(batch, dims[0]));
        for (i, pair) in dims.windows(2).enumerate() {
            b = b.linear(format!("fc{i}"), pair[0], pair[1]);
        }
        b.build().unwrap().train_view().unwrap()
    }

    fn dp_plan(n: usize, levels: usize) -> PlanTree {
        HierPlan::new(vec![
            NetworkPlan::uniform(n, LayerPlan::data_parallel());
            levels
        ])
        .to_tree()
    }

    #[test]
    fn des_never_exceeds_bsp() {
        // Same durations, strictly fewer synchronization constraints: the
        // DES schedule is never slower than the bulk-synchronous one.
        let config = SimConfig::default();
        for dims in [vec![256, 512, 128], vec![64, 64, 64, 64]] {
            let view = fc_view(128, &dims);
            let n = view.weighted_len();
            for boards in [2usize, 4] {
                let array = AcceleratorArray::heterogeneous_tpu(boards / 2, boards / 2);
                let levels = boards.trailing_zeros() as usize;
                let tree = GroupTree::bisect(&array, levels).unwrap();
                let plan = dp_plan(n, levels);
                let bsp = Simulator::new(config)
                    .simulate(&view, &plan, &tree, None)
                    .unwrap()
                    .total_secs;
                let des = simulate_des(&config, &view, &plan, &tree, None)
                    .unwrap()
                    .total_secs;
                assert!(
                    des <= bsp * (1.0 + 1e-9),
                    "dims {dims:?} boards {boards}: des {des} vs bsp {bsp}"
                );
                assert!(des > 0.2 * bsp, "des suspiciously fast: {des} vs {bsp}");
            }
        }
    }

    #[test]
    fn single_layer_single_level_matches_bsp_exactly() {
        // One layer, one cut: there is nothing to overlap, so the two
        // backends agree exactly.
        let config = SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        };
        let view = fc_view(64, &[128, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(1, 1);
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        let des = simulate_des(&config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        assert!((des - bsp).abs() / bsp < 1e-9, "des {des} vs bsp {bsp}");
    }

    #[test]
    fn des_overlaps_compute_with_communication() {
        // On hardware where per-layer compute and psum traffic are of the
        // same order, the DES overlaps one layer's gradient exchange with
        // the next layer's compute — the BSP barriers cannot. On Table 7
        // hardware the arrays are so network-bound that the two backends
        // coincide (an honest finding the `des_vs_bsp` bench reports), so
        // this test balances the rates explicitly.
        use accpar_hw::AcceleratorSpec;
        let spec =
            AcceleratorSpec::new("balanced", 1e9, 1 << 30, 100e9, 1e9, 2, 10e9).unwrap();
        let array = AcceleratorArray::homogeneous(spec, 2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let view = fc_view(512, &[512, 512, 512, 512, 512]);
        let plan = dp_plan(view.weighted_len(), 1);
        let config = SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        };
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        let des = simulate_des(&config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        // The DES hides all but the last gradient psum behind the next
        // layer's compute: with 4 weighted layers, exactly 3 exchanges of
        // A(W)·2 bytes at 1 GB/s disappear from the critical path.
        let psum_secs = (512.0 * 512.0 * 2.0) / 1e9;
        let expected_gap = 3.0 * psum_secs;
        let gap = bsp - des;
        assert!(
            (gap - expected_gap).abs() < 1e-9,
            "overlap gap {gap} vs expected {expected_gap} (des {des}, bsp {bsp})"
        );
    }

    #[test]
    fn residual_branches_are_handled() {
        // A two-branch Add block end to end through the DES backend.
        let view = NetworkBuilder::new("r", FeatureShape::conv(64, 32, 8, 8))
            .conv2d("stem", 32, 32, ConvGeometry::same(3))
            .block(
                accpar_dnn::JoinOp::Add,
                vec![
                    vec![Layer::conv2d("p1", 32, 32, ConvGeometry::same(3))],
                    vec![Layer::conv2d("p2", 32, 32, ConvGeometry::same(3))],
                ],
            )
            .flatten("f")
            .linear("fc", 32 * 64, 10)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let config = SimConfig::default();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(1, 1), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        let des = simulate_des(&config, &view, &plan, &tree, None)
            .unwrap()
            .total_secs;
        // Everything is bound by the single link here, so no overlap win
        // is available — but the DES must not be slower.
        assert!(des <= bsp * (1.0 + 1e-9), "des {des} vs bsp {bsp}");
    }

    #[test]
    fn validation_errors_match_simulator() {
        let view = fc_view(8, &[4, 4, 4]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let config = SimConfig::default();
        assert!(matches!(
            simulate_des(&config, &view, &dp_plan(2, 2), &tree, None),
            Err(SimError::DepthMismatch { .. })
        ));
        assert!(matches!(
            simulate_des(&config, &view, &dp_plan(3, 1), &tree, None),
            Err(SimError::LayerCountMismatch { .. })
        ));
    }

    #[test]
    fn faulted_des_is_deterministic_and_matches_degraded_tree() {
        let view = fc_view(128, &[512, 512, 512]);
        let n = view.weighted_len();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 2).unwrap();
        let plan = dp_plan(n, 2);
        let config = SimConfig::default();
        let clean = simulate_des(&config, &view, &plan, &tree, None).unwrap();
        let faults = FaultModel::with_seed(42)
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(1, 0.25)
            .unwrap();
        let a = simulate_des(&config, &view, &plan, &tree, Some(&faults)).unwrap();
        let b = simulate_des(&config, &view, &plan, &tree, Some(&faults)).unwrap();
        assert_eq!(a, b, "seeded fault scenario must be bit-reproducible");
        assert!(a.total_secs > clean.total_secs);
        // Rate faults alone are exactly a simulation of the degraded tree.
        let direct =
            simulate_des(&config, &view, &plan, &tree.degraded(&faults).unwrap(), None).unwrap();
        assert_eq!(a, direct);
        // Faults never make the DES slower than the faulted BSP barrier
        // schedule.
        let bsp = Simulator::new(config)
            .simulate(&view, &plan, &tree, Some(&faults))
            .unwrap();
        assert!(a.total_secs <= bsp.total_secs * (1.0 + 1e-9));
    }

    #[test]
    fn des_stall_delays_the_step() {
        let view = fc_view(64, &[256, 256]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let config = SimConfig::default();
        let clean = simulate_des(&config, &view, &plan, &tree, None).unwrap();
        let stall = 1e-3;
        let faults = FaultModel::new().stall_leaf(1, stall).unwrap();
        let stalled = simulate_des(&config, &view, &plan, &tree, Some(&faults)).unwrap();
        // With symmetric leaves the whole stall lands on the critical path.
        assert!((stalled.total_secs - clean.total_secs - stall).abs() < 1e-12);
    }

    #[test]
    fn des_fault_validation_errors() {
        let view = fc_view(8, &[4, 4]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let plan = dp_plan(view.weighted_len(), 1);
        let config = SimConfig::default();
        assert!(matches!(
            simulate_des(
                &config,
                &view,
                &plan,
                &tree, Some(&FaultModel::new().slow_leaf(9, 0.5).unwrap())),
            Err(SimError::FaultLeafOutOfRange { leaf: 9, leaves: 2 })
        ));
        assert!(matches!(
            simulate_des(&config, &view, &plan, &tree, Some(&FaultModel::new().drop_leaf(0))),
            Err(SimError::DroppedLeaf { leaf: 0 })
        ));
    }

    #[test]
    fn report_accessors() {
        let view = fc_view(32, &[64, 64]);
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let report = simulate_des(&SimConfig::default(), &view, &dp_plan(1, 1), &tree, None).unwrap();
        assert!(report.total_secs > 0.0);
        assert!(report.tasks > 0);
        assert!(report.mean_utilization() > 0.0 && report.mean_utilization() <= 1.0);
        assert_eq!(report.leaf_busy_secs.len(), 2);
        assert_eq!(report.link_busy_secs.len(), 1);
        assert!(report.to_string().contains("des step"));
    }

    #[test]
    fn arena_engine_matches_naive_reference_bitwise() {
        // The barrier-collapsed arena graph must reproduce the naive
        // expansion's report exactly — total, busy vectors *and* the
        // scheduled-task count (joins are bookkeeping, not work).
        let config = SimConfig::default();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 3).unwrap();
        for dims in [vec![256, 512, 128], vec![64, 64, 64, 64, 64]] {
            let view = fc_view(128, &dims);
            let plan = dp_plan(view.weighted_len(), 3);
            let fast = simulate_des(&config, &view, &plan, &tree, None).unwrap();
            let naive = simulate_des_naive(&config, &view, &plan, &tree, None).unwrap();
            assert_eq!(fast, naive, "dims {dims:?}");
            assert_eq!(fast.total_secs.to_bits(), naive.total_secs.to_bits());
        }
    }

    #[test]
    fn arena_reuse_is_bit_identical_and_allocation_stable() {
        // One arena across scenarios: every recycled simulation matches
        // a fresh-arena run bitwise, and the dependency pool stops
        // growing after the first (largest) scenario.
        let config = SimConfig::default();
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 2).unwrap();
        let view = fc_view(128, &[512, 256, 384]);
        let plan = dp_plan(view.weighted_len(), 2);
        let mut arena = DesArena::new();
        let mut edge_counts = Vec::new();
        for round in 0..3 {
            let fresh = simulate_des(&config, &view, &plan, &tree, None).unwrap();
            let reused = simulate_des_in(&mut arena, &config, &view, &plan, &tree, None).unwrap();
            assert_eq!(fresh, reused, "round {round}");
            edge_counts.push(arena.dep_edges());
        }
        assert!(edge_counts.windows(2).all(|w| w[0] == w[1]));
        // Error paths leave the arena reusable too.
        assert!(matches!(
            simulate_des_in(&mut arena, &config, &view, &dp_plan(2, 1), &tree, None),
            Err(SimError::DepthMismatch { .. })
        ));
        let after_err =
            simulate_des_in(&mut arena, &config, &view, &plan, &tree, None).unwrap();
        assert_eq!(after_err, simulate_des(&config, &view, &plan, &tree, None).unwrap());
    }

    #[test]
    fn join_collapses_quadratic_fanin() {
        // On a deep tree the arena's dependency pool must stay linear in
        // leaves where the naive expansion is quadratic: with 16 leaves
        // and 15 cuts, the gradient psum fan-in alone would be
        // 16 leaves × 15 cuts = 240 edges per layer naively.
        let config = SimConfig::default();
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(16), 4).unwrap();
        let view = fc_view(64, &[256, 256, 256]);
        let plan = dp_plan(view.weighted_len(), 4);
        let mut arena = DesArena::new();
        let report = simulate_des_in(&mut arena, &config, &view, &plan, &tree, None).unwrap();
        // Naive edge count for comparison: every psum task carries all
        // 16 leaves plus the previous level; every leaf carries the full
        // conversion list; conversions carry the whole previous layer.
        let naive_edges: usize = {
            // leaves per layer + conversions (15 per edge) etc. — just
            // bound it: each of the 15 psum tasks alone would carry ≥16
            // leaf deps, per weighted layer.
            15 * 16 * view.weighted_len()
        };
        assert!(
            arena.dep_edges() < naive_edges,
            "flat pool {} edges vs naive lower bound {naive_edges}",
            arena.dep_edges()
        );
        assert_eq!(
            report,
            simulate_des_naive(&config, &view, &plan, &tree, None).unwrap()
        );
    }
}
