//! Training memory-footprint analysis.
//!
//! The paper's motivation (§2.3) includes models whose "computation and
//! memory requirement … typically cannot be satisfied by a single
//! accelerator". A partition plan determines what each leaf group must
//! hold:
//!
//! * its shard of every layer's weights, gradients and optimizer state
//!   (replicated in full under Type-I);
//! * its shard of every layer's input activations (`F_l`), retained from
//!   the forward sweep for the backward and gradient phases;
//! * a transient error buffer for the largest `E` tensor it touches.
//!
//! [`memory_report`] computes these per leaf from the same tree geometry
//! the simulator uses, and compares them against each leaf's HBM
//! capacity.

use crate::config::{Optimizer, SimConfig};
use crate::error::SimError;
use crate::geometry::layer_geom;
use accpar_dnn::{TrainLayer, TrainView};
use accpar_hw::GroupTree;
use accpar_partition::PlanTree;
use std::fmt;

/// Per-leaf training memory footprint of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Bytes each leaf group must hold.
    pub per_leaf_bytes: Vec<f64>,
    /// Each leaf's HBM capacity in bytes.
    pub per_leaf_capacity: Vec<f64>,
    /// The worst leaf's occupancy (bytes / capacity).
    pub peak_occupancy: f64,
}

impl MemoryReport {
    /// Whether every leaf's footprint fits its HBM.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.peak_occupancy <= 1.0
    }

    /// The largest single-leaf footprint in bytes.
    #[must_use]
    pub fn peak_bytes(&self) -> f64 {
        self.per_leaf_bytes.iter().copied().fold(0.0, f64::max)
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peak {:.2} GB / leaf ({:.1}% of HBM, {})",
            self.peak_bytes() / 1e9,
            self.peak_occupancy * 100.0,
            if self.fits() { "fits" } else { "DOES NOT FIT" }
        )
    }
}

/// Computes the per-leaf training memory footprint of `plan` over `tree`.
///
/// # Errors
///
/// Returns the same validation errors as
/// [`Simulator::simulate`](crate::Simulator::simulate).
pub fn memory_report(
    view: &TrainView,
    plan: &PlanTree,
    tree: &GroupTree,
    config: &SimConfig,
    optimizer: Optimizer,
) -> Result<MemoryReport, SimError> {
    if plan.depth() != tree.levels() {
        return Err(SimError::DepthMismatch {
            plan: plan.depth(),
            tree: tree.levels(),
        });
    }
    let n_layers = view.weighted_len();
    let mut layers: Vec<&TrainLayer> = view.layers().collect();
    layers.sort_by_key(|l| l.index());
    if plan.plan().len() != n_layers {
        return Err(SimError::LayerCountMismatch {
            level: 0,
            plan: plan.plan().len(),
            network: n_layers,
        });
    }

    let bytes_per_elem = config.format.bytes_per_element() as f64;
    // Weights + gradients + optimizer state copies.
    let weight_copies = (2 + optimizer.state_copies()) as f64;

    let mut per_leaf_bytes: Vec<f64> = Vec::new();
    let mut per_leaf_capacity: Vec<f64> = Vec::new();
    let mut transient_e: Vec<f64> = Vec::new();

    for (l, layer) in layers.iter().enumerate() {
        let geom = layer_geom(tree.root(), plan, l);
        if per_leaf_bytes.is_empty() {
            per_leaf_bytes = vec![0.0; geom.leaves.len()];
            transient_e = vec![0.0; geom.leaves.len()];
            per_leaf_capacity = geom.leaves.iter().map(|(caps, _)| caps.hbm_bytes).collect();
        }
        for (idx, (_, scales)) in geom.leaves.iter().enumerate() {
            let w = layer.weight().size() as f64 * scales.weight;
            let f_in = layer.in_fmap().size() as f64 * scales.f_in;
            per_leaf_bytes[idx] += (w * weight_copies + f_in) * bytes_per_elem;
            // Transient error buffer: the largest E tensor this leaf
            // holds at any point of the backward sweep.
            let e = (layer.out_fmap().size() as f64 * scales.f_out)
                .max(layer.in_fmap().size() as f64 * scales.f_in);
            transient_e[idx] = transient_e[idx].max(e * bytes_per_elem);
        }
    }
    for (bytes, e) in per_leaf_bytes.iter_mut().zip(&transient_e) {
        *bytes += e;
    }

    let peak_occupancy = per_leaf_bytes
        .iter()
        .zip(&per_leaf_capacity)
        .map(|(b, c)| b / c)
        .fold(0.0, f64::max);

    Ok(MemoryReport {
        per_leaf_bytes,
        per_leaf_capacity,
        peak_occupancy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::AcceleratorArray;
    use accpar_partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, Ratio};
    use accpar_tensor::FeatureShape;

    fn view(batch: usize, d: usize) -> accpar_dnn::TrainView {
        NetworkBuilder::new("t", FeatureShape::fc(batch, d))
            .linear("fc", d, d)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
    }

    fn plan(n: usize, t: PartitionType, levels: usize) -> PlanTree {
        HierPlan::new(vec![
            NetworkPlan::uniform(n, LayerPlan::new(t, Ratio::EQUAL));
            levels
        ])
        .to_tree()
    }

    #[test]
    fn type_i_replicates_weights_in_every_leaf() {
        let view = view(64, 1000);
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let config = SimConfig::default();
        let dp = memory_report(&view, &plan(1, PartitionType::TypeI, 1), &tree, &config, Optimizer::Sgd)
            .unwrap();
        let mp = memory_report(&view, &plan(1, PartitionType::TypeII, 1), &tree, &config, Optimizer::Sgd)
            .unwrap();
        // Weights dominate (1M params vs 64k activations): the
        // model-parallel footprint is roughly half the data-parallel one.
        assert!(mp.peak_bytes() < 0.6 * dp.peak_bytes());
        assert!(dp.fits() && mp.fits());
    }

    #[test]
    fn optimizer_state_grows_the_footprint() {
        let view = view(64, 1000);
        let tree =
            GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(2), 1).unwrap();
        let config = SimConfig::default();
        let p = plan(1, PartitionType::TypeI, 1);
        let sgd = memory_report(&view, &p, &tree, &config, Optimizer::Sgd).unwrap();
        let momentum = memory_report(&view, &p, &tree, &config, Optimizer::Momentum).unwrap();
        let adam = memory_report(&view, &p, &tree, &config, Optimizer::Adam).unwrap();
        assert!(sgd.peak_bytes() < momentum.peak_bytes());
        assert!(momentum.peak_bytes() < adam.peak_bytes());
        // Weight-related state: 2 copies -> 3 -> 4.
        let w_bytes = 1000.0 * 1000.0 * 2.0;
        assert!((momentum.peak_bytes() - sgd.peak_bytes() - w_bytes).abs() < 1.0);
    }

    #[test]
    fn infeasible_plans_are_reported() {
        // A tiny accelerator cannot replicate a large model.
        let view = view(64, 4096);
        let tiny = accpar_hw::AcceleratorSpec::new(
            "tiny", 1e12, 16 << 20, /* 16 MiB */ 100e9, 1e9, 2, 10e9,
        )
        .unwrap();
        let tree =
            GroupTree::bisect(&AcceleratorArray::homogeneous(tiny, 2), 1).unwrap();
        let config = SimConfig::default();
        let report = memory_report(
            &view,
            &plan(1, PartitionType::TypeI, 1),
            &tree,
            &config,
            Optimizer::Adam,
        )
        .unwrap();
        assert!(!report.fits());
        assert!(report.peak_occupancy > 1.0);
        assert!(report.to_string().contains("DOES NOT FIT"));
    }

    #[test]
    fn depth_mismatch_is_rejected() {
        let view = view(8, 8);
        let tree =
            GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(4), 2).unwrap();
        let err = memory_report(
            &view,
            &plan(1, PartitionType::TypeI, 1),
            &tree,
            &SimConfig::default(),
            Optimizer::Sgd,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::DepthMismatch { .. }));
    }

}
