//! The machine model: prices a trace-segment stream on one accelerator
//! group's compute pipeline and HBM channel.

use crate::config::{MemModel, SimConfig};
use crate::trace::{total_flops, total_mem_elems, TraceSegment};
use accpar_hw::GroupCaps;

/// Seconds one group needs to execute a segment stream.
///
/// Arithmetic segments (MULT/ADD) run on the compute pipeline at the
/// group's aggregate peak FLOPS; memory segments (LOAD/STORE) run on the
/// HBM channel at the aggregate memory bandwidth. The
/// [`MemModel`] decides whether the two overlap (roofline), serialize, or
/// whether memory is ignored.
///
/// # Example
///
/// ```
/// use accpar_hw::{AcceleratorArray, GroupTree};
/// use accpar_sim::machine::segments_secs;
/// use accpar_sim::trace::{TraceOp, TraceSegment};
/// use accpar_sim::SimConfig;
///
/// let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(1), 0)?;
/// let caps = tree.root().caps();
/// let segs = [TraceSegment { op: TraceOp::Mult, units: 420_000, unit_elems: 1 }];
/// let secs = segments_secs(&segs, &caps, &SimConfig::default());
/// // 420k FLOPs on a 420 TFLOPS board: one nanosecond.
/// assert!((secs - 1e-9).abs() < 1e-15);
/// # Ok::<(), accpar_hw::HwError>(())
/// ```
#[must_use]
pub fn segments_secs(segments: &[TraceSegment], caps: &GroupCaps, config: &SimConfig) -> f64 {
    let compute = total_flops(segments) as f64 / caps.flops;
    let mem = config.format.bytes(total_mem_elems(segments)) as f64 / caps.mem_bw;
    match config.mem_model {
        MemModel::Roofline => compute.max(mem),
        MemModel::Serial => compute + mem,
        MemModel::ComputeOnly => compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp;
    use accpar_hw::{AcceleratorArray, GroupTree};

    fn v3_caps() -> GroupCaps {
        GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(1), 0)
            .unwrap()
            .root()
            .caps()
    }

    fn segs(flop_units: u64, mem_units: u64) -> Vec<TraceSegment> {
        vec![
            TraceSegment {
                op: TraceOp::Mult,
                units: flop_units,
                unit_elems: 1,
            },
            TraceSegment {
                op: TraceOp::Load,
                units: mem_units,
                unit_elems: 1,
            },
        ]
    }

    #[test]
    fn roofline_takes_the_max() {
        let caps = v3_caps();
        let config = SimConfig::default();
        // Heavy memory, light compute.
        let t = segments_secs(&segs(1, 1_000_000_000), &caps, &config);
        let mem_only = 2.0e9 / caps.mem_bw;
        assert!((t - mem_only).abs() / mem_only < 1e-9);
    }

    #[test]
    fn serial_adds_the_two() {
        let caps = v3_caps();
        let config = SimConfig {
            mem_model: MemModel::Serial,
            ..SimConfig::default()
        };
        let both = segments_secs(&segs(1000, 1000), &caps, &config);
        let compute = 1000.0 / caps.flops;
        let mem = 2000.0 / caps.mem_bw;
        assert!((both - (compute + mem)).abs() < 1e-18);
    }

    #[test]
    fn compute_only_ignores_memory() {
        let caps = v3_caps();
        let config = SimConfig {
            mem_model: MemModel::ComputeOnly,
            ..SimConfig::default()
        };
        let t = segments_secs(&segs(1000, u64::MAX / 4), &caps, &config);
        assert!((t - 1000.0 / caps.flops).abs() < 1e-18);
    }

    #[test]
    fn empty_stream_is_free() {
        assert_eq!(segments_secs(&[], &v3_caps(), &SimConfig::default()), 0.0);
    }
}
